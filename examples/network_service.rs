//! SPADE over the wire: a TCP server, two tenants, a pipelined client.
//!
//! Demonstrates the network front door end to end: a
//! [`spade::server::QueryService`] wrapped by a [`spade::net::NetServer`]
//! on a loopback port, a tenant namespace with its own catalog, quota and
//! auth token, and a [`spade::client::Client`] pipelining a burst of
//! requests whose frames coalesce into shared socket writes.
//!
//! ```text
//! cargo run --release --example network_service
//! ```

use spade::client::{Client, ClientConfig};
use spade::engine::dataset::{Dataset, DatasetKind, IndexedDataset};
use spade::engine::query::SelectQuery;
use spade::engine::EngineConfig;
use spade::geometry::{BBox, Point};
use spade::index::GridIndex;
use spade::net::{NetServer, NetServerConfig};
use spade::server::{NamespaceConfig, QueryRequest, QueryService, ServiceConfig};
use std::sync::Arc;
use std::time::Instant;

fn indexed(name: &str, n: usize, seed: u64) -> IndexedDataset {
    let unit = spade::datagen::spider::uniform_points(n, seed);
    let pts = spade::datagen::spider::scale_points(
        &unit,
        &BBox::new(Point::ZERO, Point::new(100.0, 100.0)),
    );
    let d = Dataset::from_points(name, pts);
    let grid = GridIndex::build(None, &d.objects, 25.0).expect("grid build");
    IndexedDataset::new(name, DatasetKind::Points, grid)
}

fn range(lo: f64, hi: f64) -> QueryRequest {
    QueryRequest::Select {
        dataset: "pts".into(),
        query: SelectQuery::Range(BBox::new(Point::new(lo, lo), Point::new(hi, hi))),
    }
}

fn main() {
    // 1. A service with a default-namespace dataset and a gated tenant.
    let service = Arc::new(QueryService::new(ServiceConfig {
        engine: EngineConfig::test_small(),
        workers: 4,
        fairness_cap: 8,
        wal_dir: None,
    }));
    service.register_indexed("pts", indexed("pts", 20_000, 7));
    service
        .create_namespace(
            "acme",
            NamespaceConfig {
                quota_bytes: Some(64 << 20),
                token: Some("s3cret".into()),
            },
        )
        .expect("create namespace");
    service
        .register_indexed_in("acme", "pts", indexed("pts", 5_000, 13))
        .expect("register tenant dataset");

    // 2. Serve it on an ephemeral loopback port.
    let server = NetServer::serve(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("bind");
    println!("serving on {}", server.addr());

    // 3. The default tenant, one pipelined burst: submit everything, then
    //    wait — replies correlate by request id, not arrival order.
    let client = Client::connect(server.addr(), ClientConfig::default()).expect("connect");
    let t0 = Instant::now();
    let pending: Vec<_> = (0..64)
        .map(|i| {
            let lo = (i % 10) as f64 * 5.0;
            client.submit(&range(lo, lo + 40.0)).expect("submit")
        })
        .collect();
    let mut rows = 0u64;
    for p in pending {
        rows += p.wait().expect("reply").stats.result_count;
    }
    let (frames, flushes) = client.batching_stats();
    println!(
        "default tenant: 64 pipelined queries, {rows} rows in {:?} \
         ({frames} frames in {flushes} socket flushes)",
        t0.elapsed()
    );

    // 4. The gated tenant: same dataset name, different catalog, token
    //    required at the handshake.
    let acme = Client::connect(
        server.addr(),
        ClientConfig {
            namespace: "acme".into(),
            token: Some("s3cret".into()),
            ..Default::default()
        },
    )
    .expect("tenant connect");
    let resp = acme.query(&range(10.0, 60.0)).expect("tenant query");
    println!(
        "acme tenant:    same query, its own catalog: {} rows",
        resp.stats.result_count
    );

    // 5. Per-tenant observability, then a graceful stop (drains in-flight
    //    work before closing sockets).
    for line in service
        .metrics_text()
        .lines()
        .filter(|l| l.contains("tenant="))
        .take(6)
    {
        println!("  {line}");
    }
    server.stop();
    println!("stopped cleanly");
}
