//! Urban analytics scenario: the workload class that motivates the paper —
//! interactive analysis of city-scale taxi data against neighborhood
//! boundaries (§1).
//!
//! ```text
//! cargo run --release --example taxi_analysis
//! ```

use spade::datagen::urban;
use spade::engine::dataset::Dataset;
use spade::engine::distance::DistanceConstraint;
use spade::engine::{aggregate, distance, select, EngineConfig, Spade};
use spade::geometry::{BBox, Point};

fn main() {
    let engine = Spade::new(EngineConfig::default());

    // Synthetic stand-ins for the paper's NYC data (Table 1): clustered
    // pickup points plus an admin-boundary tessellation.
    let nyc = BBox::new(Point::new(-74.3, 40.5), Point::new(-73.7, 40.95));
    let pickups = Dataset::from_points("pickups", urban::clustered_points(200_000, &nyc, 8, 42));
    let hoods = Dataset::from_polygons("neighborhoods", urban::admin_polygons(40, &nyc, 64, 7));
    println!(
        "data: {} pickups, {} neighborhoods",
        pickups.len(),
        hoods.len()
    );

    // 1. Spatial selection: pickups inside one neighborhood.
    let (first_id, first) = {
        let polys = hoods.as_polygons();
        (polys[12].0, polys[12].1.clone())
    };
    let sel = select::select(&engine, &pickups, &first);
    println!(
        "\nselection: neighborhood #{first_id} contains {} pickups ({})",
        sel.result.len(),
        sel.stats.breakdown()
    );

    // 2. Spatial aggregation: pickups per neighborhood, using the
    //    point-optimized plan (§5.2) — no join materialization.
    let agg = aggregate::aggregate_points(&engine, &hoods, &pickups);
    let mut ranked = agg.result.clone();
    ranked.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("\ntop 5 neighborhoods by pickups:");
    for (id, count) in ranked.iter().take(5) {
        println!("  neighborhood #{id}: {count} pickups");
    }
    let total: u64 = agg.result.iter().map(|(_, c)| c).sum();
    println!(
        "  (total matched: {total}, stats: {})",
        agg.stats.breakdown()
    );

    // 3. Distance query: pickups within ~300 m of a point of interest
    //    (0.003° ≈ 300 m at this latitude). SPADE answers this accurately
    //    through a circle canvas plus distance boundary entries.
    let poi = Point::new(-73.99, 40.75);
    let near = distance::distance_select(&engine, &pickups, &DistanceConstraint::Point(poi), 0.003);
    println!(
        "\ndistance: {} pickups within ~300m of the POI ({})",
        near.result.len(),
        near.stats.breakdown()
    );
}
