//! kNN and distance-join workloads (§5.2): nearest stations for pickup
//! hotspots, in projected meters.
//!
//! ```text
//! cargo run --release --example knn_hotspots
//! ```

use spade::datagen::urban;
use spade::engine::dataset::Dataset;
use spade::engine::{distance, knn, EngineConfig, Spade};
use spade::geometry::project::lonlat_to_mercator;
use spade::geometry::{BBox, Point};

fn main() {
    let engine = Spade::new(EngineConfig::default());

    // Pickups in lon/lat, projected to EPSG:3857 meters — the projection
    // SPADE's vertex shaders apply for distance and kNN queries (§4.2).
    let nyc = BBox::new(Point::new(-74.3, 40.5), Point::new(-73.7, 40.95));
    let pickups_ll = urban::clustered_points(100_000, &nyc, 8, 42);
    let pickups = Dataset::from_points(
        "pickups-3857",
        pickups_ll.iter().map(|&p| lonlat_to_mercator(p)).collect(),
    );
    // A handful of "station" locations.
    let stations_ll = urban::clustered_points(12, &nyc, 4, 17);
    let stations = Dataset::from_points(
        "stations-3857",
        stations_ll.iter().map(|&p| lonlat_to_mercator(p)).collect(),
    );

    // 1. kNN selection: the 5 pickups nearest to the first station. The
    //    plan draws log-spaced circles, aggregates, then refines (§5.2).
    let q = stations.as_points()[0].1;
    let out = knn::knn_select(&engine, &pickups, q, 5);
    println!("5 nearest pickups to station 0:");
    for (id, d) in &out.result {
        println!("  pickup #{id} at {d:.1} m");
    }

    // 2. kNN join: the 3 nearest pickups for every station.
    let join = knn::knn_join(&engine, &stations, &pickups, 3);
    println!("\nkNN join (k=3): {} result triples", join.result.len());
    for (sid, pid, d) in join.result.iter().take(6) {
        println!("  station #{sid} ↔ pickup #{pid}: {d:.1} m");
    }

    // 3. Distance join: all (station, pickup) pairs within 250 m — the
    //    on-the-fly circle layers keep per-pixel attribution exact.
    let dj = distance::distance_join(&engine, &stations, &pickups, 250.0);
    println!(
        "\ndistance join (250 m): {} pairs across {} stations ({})",
        dj.result.len(),
        stations.len(),
        dj.stats.breakdown()
    );
}
