//! Quickstart: run a spatial selection on the SPADE engine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spade::engine::{select, Dataset, EngineConfig, Spade};
use spade::geometry::{Point, Polygon};

fn main() {
    // 1. An engine: the software graphics pipeline plus a simulated device.
    let engine = Spade::new(EngineConfig::default());

    // 2. A point data set (a small deterministic scatter).
    let points: Vec<Point> = (0..10_000)
        .map(|i| {
            let t = i as f64 * 0.61803398875;
            Point::new((t * 97.0) % 100.0, (t * 57.0) % 100.0)
        })
        .collect();
    let data = Dataset::from_points("scatter", points);

    // 3. A polygonal constraint: a hexagon around the center.
    let constraint = Polygon::circle(Point::new(50.0, 50.0), 20.0, 6);

    // 4. Run the selection: the constraint is rasterized into a canvas,
    //    the points are drawn through the fused blend+mask+map pass, and
    //    the boundary index resolves pixels the rasterization cannot.
    let out = select::select(&engine, &data, &constraint);

    println!("selected {} of {} points", out.result.len(), data.len());
    println!("first ids: {:?}", &out.result[..out.result.len().min(8)]);
    println!("stats: {}", out.stats.breakdown());
}
