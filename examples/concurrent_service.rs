//! Sixteen concurrent sessions against one shared engine.
//!
//! Demonstrates the service layer: a [`spade::server::QueryService`] wraps
//! one `Spade` instance behind a worker pool; sessions submit a mixed
//! select / kNN / join workload, some with deadlines, and the service
//! admits queries against the device-memory ledger instead of letting them
//! thrash residency (§5.4: the host–device bus is the bottleneck).
//!
//! ```text
//! cargo run --release --example concurrent_service
//! ```

use spade::engine::dataset::{Dataset, DatasetKind, IndexedDataset};
use spade::engine::query::{JoinQuery, SelectQuery};
use spade::engine::EngineConfig;
use spade::geometry::{BBox, Point, Polygon};
use spade::index::GridIndex;
use spade::server::{QueryRequest, QueryService, ServiceConfig, ServiceError};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn indexed(name: &str, d: &Dataset, kind: DatasetKind, cell: f64) -> IndexedDataset {
    let grid = GridIndex::build(None, &d.objects, cell).expect("grid build");
    IndexedDataset::new(name, kind, grid)
}

fn main() {
    let service = QueryService::new(ServiceConfig {
        engine: EngineConfig::default(),
        workers: 4,
        fairness_cap: 2,
        wal_dir: None,
    });

    // One shared catalog: taxi-like clustered pickups and an admin-polygon
    // overlay, both grid-indexed for out-of-core streaming.
    let extent = BBox::new(Point::ZERO, Point::new(1_000.0, 1_000.0));
    let pickups = Dataset::from_points(
        "pickups",
        spade::datagen::urban::clustered_points(20_000, &extent, 12, 42),
    );
    let districts = Dataset::from_polygons(
        "districts",
        spade::datagen::urban::admin_polygons(16, &extent, 12, 7),
    );
    service.register_indexed(
        "pickups",
        indexed("pickups", &pickups, DatasetKind::Points, 250.0),
    );
    service.register_indexed(
        "districts",
        indexed("districts", &districts, DatasetKind::Polygons, 500.0),
    );

    let hotspot = Polygon::new(vec![
        Point::new(200.0, 150.0),
        Point::new(820.0, 240.0),
        Point::new(700.0, 860.0),
        Point::new(180.0, 700.0),
    ]);

    // Sixteen sessions, each submitting a mixed workload. Even-numbered
    // sessions put a deadline on their (expensive) aggregate; under full
    // load those expire cleanly — `DeadlineExceeded` at the next grid-cell
    // boundary, ledger balanced — while the odd sessions wait it out.
    let service = Arc::new(service);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for sid in 0..16u64 {
            let service = Arc::clone(&service);
            let hotspot = hotspot.clone();
            s.spawn(move || {
                let session = service.session();
                let workload = [
                    QueryRequest::Select {
                        dataset: "pickups".into(),
                        query: SelectQuery::Intersects(hotspot.clone()),
                    },
                    QueryRequest::Select {
                        dataset: "pickups".into(),
                        query: SelectQuery::Knn(
                            Point::new(37.0 * (sid + 1) as f64, 53.0 * (sid + 1) as f64),
                            8,
                        ),
                    },
                    QueryRequest::Join {
                        left: "districts".into(),
                        right: "pickups".into(),
                        query: JoinQuery::CountPoints,
                    },
                ];
                for (i, req) in workload.into_iter().enumerate() {
                    let class = req.class();
                    let ticket = if i % 3 == 2 && sid % 2 == 0 {
                        session.submit_with_deadline(req, Duration::from_secs(5))
                    } else {
                        session.submit(req)
                    };
                    match ticket.wait() {
                        Ok(resp) => println!(
                            "session {sid:2} {class:9} ok: queued {:5.1} ms, ran {:6.1} ms",
                            resp.queue_wait.as_secs_f64() * 1e3,
                            resp.exec_time.as_secs_f64() * 1e3,
                        ),
                        Err(ServiceError::DeadlineExceeded) => {
                            println!("session {sid:2} {class:9} missed its 5 s deadline")
                        }
                        Err(e) => println!("session {sid:2} {class:9} failed: {e}"),
                    }
                }
            });
        }
    });

    let snap = service.stats();
    println!(
        "\n{} queries in {:.2} s",
        snap.submitted,
        t0.elapsed().as_secs_f64()
    );
    println!(
        "admitted {}, completed {}, cancelled/expired {}, rejected {}",
        snap.admitted, snap.completed, snap.cancelled, snap.rejected
    );
    println!(
        "wall split: {:.2} s queued vs {:.2} s executing (workers overlap)",
        snap.total_queue_wait.as_secs_f64(),
        snap.total_exec.as_secs_f64()
    );
    println!(
        "latency p50 {:.1} ms, p95 {:.1} ms",
        snap.p50_latency.as_secs_f64() * 1e3,
        snap.p95_latency.as_secs_f64() * 1e3
    );
    println!(
        "device: {} B used after drain (ledger balanced), peak {} B",
        service.engine().device.used(),
        service.engine().device.peak()
    );

    // The same counters, as a Prometheus text snapshot a scrape endpoint
    // would serve.
    println!("\n--- metrics_text() ---");
    print!("{}", service.metrics_text());
}
