//! SPADE scaled out: three loopback workers, a scatter-gather
//! coordinator, and a WAL-shipping read replica.
//!
//! Demonstrates the cluster layer end to end: three [`spade::net`]
//! workers each holding the complete data, a
//! [`spade::cluster::ClusterClient`] that shards query *execution* across
//! them by grid-cell range (and routes join cell pairs to the cheaper
//! side), and a [`spade::cluster::Replica`] following the first worker's
//! WAL to serve bounded-staleness reads.
//!
//! ```text
//! cargo run --release --example cluster
//! ```

use spade::client::ClientConfig;
use spade::cluster::{ClusterClient, ClusterConfig, Replica, ReplicaConfig};
use spade::engine::dataset::{Dataset, DatasetKind, IndexedDataset};
use spade::engine::query::{JoinQuery, SelectQuery};
use spade::engine::EngineConfig;
use spade::geometry::{BBox, Geometry, Point, Polygon};
use spade::index::GridIndex;
use spade::net::{NetServer, NetServerConfig};
use spade::server::{QueryRequest, QueryService, ResponsePayload, ServiceConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn indexed_points(name: &str, n: usize, seed: u64) -> IndexedDataset {
    let unit = spade::datagen::spider::uniform_points(n, seed);
    let pts = spade::datagen::spider::scale_points(
        &unit,
        &BBox::new(Point::ZERO, Point::new(100.0, 100.0)),
    );
    let d = Dataset::from_points(name, pts);
    let grid = GridIndex::build(None, &d.objects, 25.0).expect("grid build");
    IndexedDataset::new(name, DatasetKind::Points, grid)
}

fn indexed_polys(name: &str) -> IndexedDataset {
    let scaled: Vec<(u32, Geometry)> = spade::datagen::spider::uniform_boxes(300, 0.06, 23)
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let stretched = Polygon::new(
                p.exterior
                    .points
                    .iter()
                    .map(|q| Point::new(q.x * 100.0, q.y * 100.0))
                    .collect(),
            );
            (i as u32, Geometry::Polygon(stretched))
        })
        .collect();
    let grid = GridIndex::build(None, &scaled, 25.0).expect("grid build");
    IndexedDataset::new(name, DatasetKind::Polygons, grid)
}

/// Every worker holds the complete data — sharding partitions execution,
/// not storage — so each gets an identically-built service.
fn make_service(wal_dir: Option<PathBuf>) -> Arc<QueryService> {
    let svc = Arc::new(QueryService::new(ServiceConfig {
        engine: EngineConfig::test_small(),
        workers: 4,
        fairness_cap: 8,
        wal_dir,
    }));
    svc.register_indexed("pts", indexed_points("pts", 50_000, 7));
    svc.register_indexed("polys", indexed_polys("polys"));
    svc
}

fn main() {
    // 1. Three workers on loopback ports. Worker 0 keeps a WAL so it can
    //    lead a replica below.
    let wal_dir = std::env::temp_dir().join(format!("spade-cluster-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("wal dir");
    let workers: Vec<NetServer> = (0..3)
        .map(|i| {
            let dir = (i == 0).then(|| wal_dir.clone());
            NetServer::serve(make_service(dir), "127.0.0.1:0", NetServerConfig::default())
                .expect("bind worker")
        })
        .collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.addr()).collect();
    println!("workers on {addrs:?}");

    // 2. The coordinator: pull per-cell stats from one worker, cut the
    //    cell ids into byte-balanced ranges, one per worker.
    let cluster = ClusterClient::connect(&addrs, ClusterConfig::default()).expect("connect");
    cluster.refresh_shard_map("pts").expect("shard map");
    cluster.refresh_shard_map("polys").expect("shard map");
    let map = cluster.shard_map("pts").expect("cached");
    for i in 0..map.shards() {
        let (lo, hi) = map.range(i);
        println!(
            "  shard {i}: cells [{lo}, {})",
            if hi == u32::MAX {
                "∞".into()
            } else {
                hi.to_string()
            }
        );
    }

    // 3. Scatter-gather a selection and a join; the merged results are
    //    byte-identical to a single node's.
    let select = QueryRequest::Select {
        dataset: "pts".into(),
        query: SelectQuery::Range(BBox::new(Point::new(20.0, 20.0), Point::new(80.0, 70.0))),
    };
    let t0 = Instant::now();
    let scattered = cluster.query(&select).expect("scatter select");
    println!(
        "scatter select: {} rows over 3 shards in {:?}",
        scattered.stats.result_count,
        t0.elapsed()
    );
    let join = QueryRequest::Join {
        left: "polys".into(),
        right: "pts".into(),
        query: JoinQuery::Intersects,
    };
    let t0 = Instant::now();
    let joined = cluster.query(&join).expect("scatter join");
    println!(
        "scatter join:   {} pairs in {:?}",
        joined.stats.result_count,
        t0.elapsed()
    );

    // 4. EXPLAIN ANALYZE shows the pair routing: co-located pairs run on
    //    their owner, cross-shard pairs on the cheaper side.
    let explain = cluster
        .query(&QueryRequest::Explain {
            analyze: true,
            request: Box::new(join),
        })
        .expect("explain");
    if let ResponsePayload::Explain(text) = &explain.payload {
        for line in text
            .lines()
            .filter(|l| l.contains("cluster") || l.contains("shard"))
        {
            println!("  {line}");
        }
    }

    // 5. A read replica follows worker 0's WAL: writes broadcast through
    //    the coordinator land in the leader's log and ship to the
    //    follower, which serves them at a bounded-staleness watermark.
    let follower = make_service(None);
    let replica = Replica::start(
        addrs[0],
        Arc::clone(&follower),
        ReplicaConfig {
            poll_interval: Duration::from_millis(5),
            client: ClientConfig::default(),
            ..ReplicaConfig::default()
        },
    );
    for n in 0..500u32 {
        let f = n as f64;
        cluster
            .query(&QueryRequest::Insert {
                dataset: "pts".into(),
                id: 1_000_000 + n,
                geometry: Geometry::Point(Point::new((f * 7.3) % 100.0, (f * 3.7) % 100.0)),
            })
            .expect("broadcast insert");
    }
    cluster
        .query(&QueryRequest::Flush {
            dataset: "pts".into(),
        })
        .expect("broadcast flush");
    // 500 inserts + 1 checkpoint on the leader's WAL.
    let caught_up = replica.wait_for(501, Duration::from_secs(10));
    println!(
        "replica: applied seq {} (lag {}), caught up: {caught_up}",
        replica.applied_seq(),
        replica.lag()
    );
    let whole = QueryRequest::Select {
        dataset: "pts".into(),
        query: SelectQuery::Range(BBox::new(Point::new(-1.0, -1.0), Point::new(101.0, 101.0))),
    };
    let on_follower = follower
        .session()
        .submit(whole)
        .wait()
        .expect("follower read");
    println!(
        "follower read:  {} rows (50000 seeded + 500 replicated)",
        on_follower.stats.result_count
    );

    // 6. Cluster observability, then a clean stop.
    for line in cluster
        .metrics_text()
        .lines()
        .chain(replica.metrics_text().lines())
        .filter(|l| !l.starts_with('#'))
        .take(12)
    {
        println!("  {line}");
    }
    replica.stop();
    for w in workers {
        w.stop();
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
    println!("stopped cleanly");
}
