//! Out-of-core queries: data larger than (simulated) GPU memory, served
//! from a disk-backed clustered grid index (§5.3).
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use spade::datagen::spider;
use spade::engine::dataset::{Dataset, DatasetKind, IndexedDataset};
use spade::engine::{select, EngineConfig, Spade};
use spade::geometry::{BBox, Point, Polygon};
use spade::index::GridIndex;

fn main() {
    // A deliberately tiny device so the data cannot fit at once.
    let engine = Spade::new(EngineConfig {
        device_memory: 4 << 20,  // 4 MiB "GPU"
        max_cell_bytes: 1 << 20, // ≤ 1 MiB per grid cell (§6.1 rule)
        ..EngineConfig::default()
    });

    // 500K points over the unit square: ~12 MB — 3× device memory.
    let pts = spider::uniform_points(500_000, 99);
    let data = Dataset::from_points("big", pts);
    println!(
        "data: {} points, ~{} KiB (device: {} KiB)",
        data.len(),
        data.byte_size() / 1024,
        engine.device.capacity() / 1024
    );

    // Build the clustered grid index on disk: one block file per cell,
    // each cell bounded by the convex hull of its contents.
    let dir = std::env::temp_dir().join("spade-out-of-core-example");
    let cell_size = GridIndex::cell_size_for_budget(
        &data.extent,
        data.byte_size() as u64,
        engine.config.max_cell_bytes,
    );
    let grid = GridIndex::build(Some(dir.clone()), &data.objects, cell_size).expect("grid");
    println!(
        "grid index: {} cells of ≈{} KiB, on disk at {}",
        grid.num_cells(),
        grid.total_bytes() / grid.num_cells() as u64 / 1024,
        dir.display()
    );
    let indexed = IndexedDataset::new("big", DatasetKind::Points, grid);

    // A polygonal selection: the filter stage runs a GPU selection over
    // the cells' hull polygons, then only matching blocks stream through
    // device memory.
    let constraint = Polygon::circle(Point::new(0.3, 0.6), 0.2, 24);
    let out = select::select_indexed(&engine, &indexed, &constraint).expect("indexed select");
    println!("\nselection: {} points in constraint", out.result.len());
    println!(
        "cells loaded: {} of {} (hull filter pruned the rest)",
        out.stats.cells_loaded,
        indexed.grid().num_cells()
    );
    println!(
        "I/O: {} KiB from disk, {} KiB to device, breakdown: {}",
        out.stats.bytes_from_disk / 1024,
        out.stats.bytes_to_device / 1024,
        out.stats.breakdown()
    );

    // A second, smaller query touches fewer cells.
    let small = Polygon::rect(BBox::new(Point::new(0.8, 0.8), Point::new(0.9, 0.9)));
    let out2 = select::select_indexed(&engine, &indexed, &small).expect("indexed select");
    println!(
        "\nsmall query: {} points, {} cells loaded, {} KiB moved",
        out2.result.len(),
        out2.stats.cells_loaded,
        out2.stats.bytes_to_device / 1024
    );

    std::fs::remove_dir_all(&dir).ok();
}
