//! Relational integration (§3): spatial data lives in relational tables,
//! loaded and stored with SQL, and spatial query results link back to
//! relational attributes — the combination the paper designs SPADE around.
//!
//! ```text
//! cargo run --release --example sql_integration
//! ```

use spade::engine::dataset::{Dataset, DatasetKind};
use spade::engine::{select, EngineConfig, Spade};
use spade::geometry::{Geometry, Point, Polygon};
use spade::storage::geom::{geometry_table, read_geometry_table};
use spade::storage::sql::{execute, SqlResult};
use spade::storage::Database;

fn main() {
    let db = Database::in_memory();

    // 1. Relational side: restaurant attributes via plain SQL.
    execute(
        &db,
        "CREATE TABLE restaurants (id INT, name TEXT, rating FLOAT)",
    )
    .unwrap();
    execute(
        &db,
        "INSERT INTO restaurants VALUES \
         (0, 'Blue Bottle', 4.5), (1, 'Joe''s Pizza', 4.8), (2, 'Shake Shack', 4.1), \
         (3, 'Katz Deli', 4.7), (4, 'Grey Dog', 3.9), (5, 'Le Bernardin', 4.9)",
    )
    .unwrap();

    // 2. Spatial side: locations stored as a geometry table (id + bbox
    //    columns + WKB-like blob), the canonical layout of §3.
    let locations: Vec<(u32, Geometry)> = vec![
        (0, Geometry::Point(Point::new(1.0, 1.0))),
        (1, Geometry::Point(Point::new(2.5, 2.0))),
        (2, Geometry::Point(Point::new(8.0, 8.0))),
        (3, Geometry::Point(Point::new(3.0, 3.5))),
        (4, Geometry::Point(Point::new(9.0, 1.0))),
        (5, Geometry::Point(Point::new(2.0, 3.0))),
    ];
    db.put_table(geometry_table("locations", &locations).unwrap());

    // 3. Spatial query: restaurants inside a downtown polygon.
    let engine = Spade::new(EngineConfig::test_small());
    let spatial = db
        .with_table("locations", read_geometry_table)
        .unwrap()
        .unwrap();
    let data = Dataset::from_objects("locations", DatasetKind::Points, spatial);
    let downtown = Polygon::circle(Point::new(2.5, 2.5), 2.0, 16);
    let hits = select::select(&engine, &data, &downtown);
    println!("restaurants downtown (spatial ids): {:?}", hits.result);

    // 4. Link back to relational attributes: for each spatial hit, a SQL
    //    lookup with a relational predicate (rating ≥ 4.5).
    println!("\nhighly rated downtown restaurants:");
    for id in &hits.result {
        let rows = match execute(
            &db,
            &format!("SELECT name, rating FROM restaurants WHERE id = {id} AND rating >= 4.5"),
        )
        .unwrap()
        {
            SqlResult::Rows(t) => t,
            _ => unreachable!(),
        };
        for r in 0..rows.num_rows() {
            println!(
                "  {} ({})",
                rows.column("name").unwrap().get_str(r).unwrap(),
                rows.column("rating").unwrap().get_float(r).unwrap()
            );
        }
    }

    // 5. EXPLAIN ANALYZE: the SQL layer prints the plan it would run —
    //    outermost operator first — and, with ANALYZE, the measured row
    //    count and wall time of the actual execution.
    println!("\nEXPLAIN ANALYZE SELECT name FROM restaurants WHERE rating >= 4.5 LIMIT 3:");
    let plan = match execute(
        &db,
        "EXPLAIN ANALYZE SELECT name FROM restaurants WHERE rating >= 4.5 LIMIT 3",
    )
    .unwrap()
    {
        SqlResult::Rows(t) => t,
        _ => unreachable!(),
    };
    for r in 0..plan.num_rows() {
        println!("  {}", plan.column("plan").unwrap().get_str(r).unwrap());
    }
}
