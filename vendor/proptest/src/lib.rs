//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build must work fully offline, so the workspace vendors the small
//! slice of the proptest API its test suites use: `prop_compose!`,
//! `proptest!` with `ProptestConfig::with_cases`, range and tuple
//! strategies, `prop::collection::vec`, and the `prop_assert*` family.
//!
//! Semantics deliberately kept from the real crate:
//! * deterministic generation — every case derives its RNG from the fully
//!   qualified test name plus the case index, so failures reproduce;
//! * `prop_assume!` rejects a case without failing the test;
//! * assertion macros return an `Err` through the case closure (so cleanup
//!   runs) and the runner panics with the formatted message.
//!
//! Shrinking is intentionally not implemented: a failing case prints its
//! seed inputs via the assertion message instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. The real crate's `Strategy` is a shrink tree;
    /// here it is just "something that can produce a value from an RNG".
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Wraps a closure as a strategy (used by `prop_compose!`).
    pub struct FnStrategy<F>(pub F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            self.start + (rng.next_u64() as usize) % (self.end - self.start).max(1)
        }
    }

    impl Strategy for std::ops::Range<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut TestRng) -> u32 {
            self.start + (rng.next_u64() as u32) % (self.end - self.start).max(1)
        }
    }

    impl Strategy for std::ops::Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            self.start + rng.next_u64() % (self.end - self.start).max(1)
        }
    }

    impl Strategy for std::ops::Range<i32> {
        type Value = i32;
        fn generate(&self, rng: &mut TestRng) -> i32 {
            let span = (self.end - self.start) as u64;
            self.start + (rng.next_u64() % span.max(1)) as i32
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// How a single generated case ended short of success.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the runner panics with this message.
        Fail(String),
        /// `prop_assume!` filtered the case out; the runner skips it.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// SplitMix64 seeded from the test path and case index: deterministic
    /// across runs, machines, and thread counts.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1) with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_compose, proptest};

    /// The `prop::` paths the real prelude exposes.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// `prop_compose! { fn name()(arg in strategy, ...) -> T { body } }`
/// expands to `fn name() -> impl Strategy<Value = T>`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident()($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// The test-runner macro: each contained `#[test] fn` runs `cases`
/// deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {case} failed: {msg}");
                        }
                    }
                }
            }
        )*
    };
    // Without a config block: default 256 cases.
    (
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])+
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        let cond: bool = $cond;
        if !cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            a,
            b,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair()(a in 0.0f64..1.0, b in 1.0f64..2.0) -> (f64, f64) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 0.25f64..0.75, n in 3usize..9, k in 0u32..100) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(k < 100);
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(0.0f64..1.0, 5..12)) {
            prop_assert!(v.len() >= 5 && v.len() < 12);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x), "out of range: {}", x);
            }
        }

        #[test]
        fn composed_and_tuple_strategies(p in pair(), q in (0.0f64..1.0, 1usize..4)) {
            prop_assert!(p.0 < p.1);
            prop_assert_eq!(q.1.min(3), q.1);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
