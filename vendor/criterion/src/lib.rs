//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build must work fully offline, so the workspace vendors the slice
//! of the criterion API its benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size`,
//! `bench_function` / `bench_with_input`, and `Bencher::iter`.
//!
//! Measurement model: each benchmark runs a short warmup, then
//! `sample_size` timed samples, and prints min / median / mean per
//! iteration. No plotting, no statistics beyond that — wall-clock honesty
//! over sophistication.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.0);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    pub fn finish(&mut self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Time the routine: warm up briefly, then record `sample_size`
    /// samples of one call each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run until ~50ms spent or 3 calls, whichever first.
        let warm_start = Instant::now();
        let mut warm_calls = 0;
        while warm_calls < 3 && warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_calls += 1;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{group}/{id}: min {} | median {} | mean {} ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut calls = 0usize;
        g.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        // 3 samples + up to 3 warmup calls.
        assert!(calls >= 3);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
