//! An STR (Sort-Tile-Recursive) bulk-loaded R-tree.
//!
//! Two roles in this reproduction:
//!
//! * §7 of the paper notes that SPADE's grid index can be swapped for an
//!   R-tree whose *leaf* bounding polygons are filtered with the same GPU
//!   selections/joins — [`RTree::leaf_pages`] exposes exactly that view;
//! * the cluster (GeoSpark-like) baseline builds one R-tree per partition,
//!   matching the tuning the paper used for GeoSpark (§6.1).

use spade_geometry::BBox;

/// Maximum entries per node (typical R-tree fanout).
const NODE_CAPACITY: usize = 16;

#[derive(Debug)]
enum Node {
    Leaf {
        bbox: BBox,
        entries: Vec<(u32, BBox)>,
    },
    Inner {
        bbox: BBox,
        children: Vec<Node>,
    },
}

impl Node {
    fn bbox(&self) -> &BBox {
        match self {
            Node::Leaf { bbox, .. } | Node::Inner { bbox, .. } => bbox,
        }
    }
}

/// A static R-tree over `(id, bbox)` entries, bulk-loaded with STR.
#[derive(Debug)]
pub struct RTree {
    root: Option<Node>,
    len: usize,
}

impl RTree {
    /// Bulk-load from entries (Sort-Tile-Recursive packing).
    pub fn build(mut entries: Vec<(u32, BBox)>) -> RTree {
        let len = entries.len();
        if entries.is_empty() {
            return RTree { root: None, len: 0 };
        }
        // STR leaf packing: sort by center-x, slice into vertical strips,
        // sort each strip by center-y, pack runs of NODE_CAPACITY.
        let leaf_count = len.div_ceil(NODE_CAPACITY);
        let strips = (leaf_count as f64).sqrt().ceil() as usize;
        let per_strip = len.div_ceil(strips);
        entries.sort_by(|a, b| {
            a.1.center()
                .x
                .partial_cmp(&b.1.center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut leaves = Vec::with_capacity(leaf_count);
        for strip in entries.chunks(per_strip.max(1)) {
            let mut strip = strip.to_vec();
            strip.sort_by(|a, b| {
                a.1.center()
                    .y
                    .partial_cmp(&b.1.center().y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for run in strip.chunks(NODE_CAPACITY) {
                let bbox = run.iter().fold(BBox::empty(), |acc, (_, b)| acc.union(b));
                leaves.push(Node::Leaf {
                    bbox,
                    entries: run.to_vec(),
                });
            }
        }
        // Pack upper levels the same way until one root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
            level.sort_by(|a, b| {
                a.bbox()
                    .center()
                    .x
                    .partial_cmp(&b.bbox().center().x)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for run in std::mem::take(&mut level).chunks_mut(NODE_CAPACITY) {
                let children: Vec<Node> = run.iter_mut().map(std::mem::take).collect();
                let bbox = children
                    .iter()
                    .fold(BBox::empty(), |acc, c| acc.union(c.bbox()));
                next.push(Node::Inner { bbox, children });
            }
            level = next;
        }
        RTree {
            root: level.pop(),
            len,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ids of entries whose bbox intersects `query`.
    pub fn query(&self, query: &BBox) -> Vec<u32> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            Self::search(root, query, &mut out);
        }
        out
    }

    fn search(node: &Node, query: &BBox, out: &mut Vec<u32>) {
        match node {
            Node::Leaf { bbox, entries } => {
                if bbox.intersects(query) {
                    for (id, b) in entries {
                        if b.intersects(query) {
                            out.push(*id);
                        }
                    }
                }
            }
            Node::Inner { bbox, children } => {
                if bbox.intersects(query) {
                    for c in children {
                        Self::search(c, query, out);
                    }
                }
            }
        }
    }

    /// Visit entries in increasing order of bbox distance to `p`, stopping
    /// when `visit` returns `false` (kNN support for the baselines).
    pub fn nearest_first(&self, p: spade_geometry::Point, mut visit: impl FnMut(u32, f64) -> bool) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        struct Item<'a> {
            dist: f64,
            node: Option<&'a Node>,
            entry: Option<(u32, f64)>,
        }
        impl PartialEq for Item<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl Eq for Item<'_> {}
        impl PartialOrd for Item<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item<'_> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.dist
                    .partial_cmp(&other.dist)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }

        let mut heap = BinaryHeap::new();
        if let Some(root) = &self.root {
            heap.push(Reverse(Item {
                dist: root.bbox().dist_to_point(p),
                node: Some(root),
                entry: None,
            }));
        }
        while let Some(Reverse(item)) = heap.pop() {
            if let Some((id, d)) = item.entry {
                if !visit(id, d) {
                    return;
                }
                continue;
            }
            match item.node.expect("node or entry") {
                Node::Leaf { entries, .. } => {
                    for (id, b) in entries {
                        heap.push(Reverse(Item {
                            dist: b.dist_to_point(p),
                            node: None,
                            entry: Some((*id, b.dist_to_point(p))),
                        }));
                    }
                }
                Node::Inner { children, .. } => {
                    for c in children {
                        heap.push(Reverse(Item {
                            dist: c.bbox().dist_to_point(p),
                            node: Some(c),
                            entry: None,
                        }));
                    }
                }
            }
        }
    }

    /// The leaf pages as `(entry ids, leaf bbox)` pairs — the view §7
    /// proposes filtering with GPU selections over bounding polygons.
    pub fn leaf_pages(&self) -> Vec<(Vec<u32>, BBox)> {
        let mut out = Vec::new();
        fn walk(node: &Node, out: &mut Vec<(Vec<u32>, BBox)>) {
            match node {
                Node::Leaf { bbox, entries } => {
                    out.push((entries.iter().map(|(id, _)| *id).collect(), *bbox));
                }
                Node::Inner { children, .. } => {
                    for c in children {
                        walk(c, out);
                    }
                }
            }
        }
        if let Some(root) = &self.root {
            walk(root, &mut out);
        }
        out
    }
}

impl Default for Node {
    fn default() -> Self {
        Node::Leaf {
            bbox: BBox::empty(),
            entries: Vec::new(),
        }
    }
}

/// STR leaf partitioning of arbitrary objects by bbox — the §7 alternative
/// to grid clustering: the resulting partitions feed
/// [`crate::grid::GridIndex::from_partitions`], whose hull polygons the GPU
/// filter stage queries exactly like grid cells. Partition keys are
/// `(leaf_index, 0)`.
pub fn str_partitions(
    objects: &[(u32, spade_geometry::Geometry)],
    leaf_capacity: usize,
) -> Vec<((i32, i32), Vec<usize>)> {
    let leaf_capacity = leaf_capacity.max(1);
    let n = objects.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    // STR: sort by center-x, slice into √(leaves) vertical strips, sort
    // each strip by center-y, chunk into leaves.
    let centers: Vec<spade_geometry::Point> =
        objects.iter().map(|(_, g)| g.bbox().center()).collect();
    order.sort_by(|&a, &b| {
        centers[a]
            .x
            .partial_cmp(&centers[b].x)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let leaves = n.div_ceil(leaf_capacity);
    let strips = (leaves as f64).sqrt().ceil() as usize;
    let per_strip = n.div_ceil(strips.max(1));
    let mut out = Vec::with_capacity(leaves);
    for strip in order.chunks(per_strip.max(1)) {
        let mut strip = strip.to_vec();
        strip.sort_by(|&a, &b| {
            centers[a]
                .y
                .partial_cmp(&centers[b].y)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for leaf in strip.chunks(leaf_capacity) {
            out.push(((out.len() as i32, 0), leaf.to_vec()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_geometry::Point;

    fn grid_entries(n: usize) -> Vec<(u32, BBox)> {
        // n×n unit boxes on a grid.
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let min = Point::new(i as f64 * 2.0, j as f64 * 2.0);
                out.push((
                    (i * n + j) as u32,
                    BBox::new(min, min + Point::new(1.0, 1.0)),
                ));
            }
        }
        out
    }

    #[test]
    fn query_matches_brute_force() {
        let entries = grid_entries(20);
        let tree = RTree::build(entries.clone());
        assert_eq!(tree.len(), 400);
        for probe in [
            BBox::new(Point::new(3.0, 3.0), Point::new(9.0, 7.0)),
            BBox::new(Point::new(-5.0, -5.0), Point::new(0.5, 0.5)),
            BBox::new(Point::new(100.0, 100.0), Point::new(110.0, 110.0)),
            BBox::new(Point::new(0.0, 0.0), Point::new(40.0, 40.0)),
        ] {
            let mut got = tree.query(&probe);
            got.sort_unstable();
            let mut want: Vec<u32> = entries
                .iter()
                .filter(|(_, b)| b.intersects(&probe))
                .map(|(id, _)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "probe {probe:?}");
        }
    }

    #[test]
    fn empty_tree() {
        let tree = RTree::build(vec![]);
        assert!(tree.is_empty());
        assert!(tree
            .query(&BBox::new(Point::ZERO, Point::new(1.0, 1.0)))
            .is_empty());
        assert!(tree.leaf_pages().is_empty());
    }

    #[test]
    fn single_entry() {
        let b = BBox::new(Point::ZERO, Point::new(1.0, 1.0));
        let tree = RTree::build(vec![(7, b)]);
        assert_eq!(tree.query(&b), vec![7]);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn nearest_first_orders_by_distance() {
        let entries = grid_entries(10);
        let tree = RTree::build(entries);
        let p = Point::new(0.5, 0.5);
        let mut dists = Vec::new();
        tree.nearest_first(p, |_, d| {
            dists.push(d);
            dists.len() < 20
        });
        assert_eq!(dists.len(), 20);
        assert!(
            dists.windows(2).all(|w| w[0] <= w[1]),
            "not sorted: {dists:?}"
        );
        assert_eq!(dists[0], 0.0); // the box containing p
    }

    #[test]
    fn nearest_first_visits_everything_if_not_stopped() {
        let tree = RTree::build(grid_entries(5));
        let mut count = 0;
        tree.nearest_first(Point::ZERO, |_, _| {
            count += 1;
            true
        });
        assert_eq!(count, 25);
    }

    #[test]
    fn str_partitions_cover_everything() {
        use spade_geometry::Geometry;
        let objects: Vec<(u32, Geometry)> = (0..137)
            .map(|i| {
                (
                    i,
                    Geometry::Point(Point::new((i % 12) as f64, (i / 12) as f64)),
                )
            })
            .collect();
        let parts = str_partitions(&objects, 16);
        let total: usize = parts.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 137);
        for (_, members) in &parts {
            assert!(!members.is_empty() && members.len() <= 16);
        }
        // Every index exactly once.
        let mut seen = std::collections::BTreeSet::new();
        for (_, m) in &parts {
            for &i in m {
                assert!(seen.insert(i));
            }
        }
        // An R-tree-partitioned GridIndex behaves like the grid one.
        let grid = crate::grid::GridIndex::from_partitions(
            None,
            &objects,
            str_partitions(&objects, 16),
            1.0,
            Point::ZERO,
        )
        .unwrap();
        assert_eq!(grid.num_objects(), 137);
        assert!(grid.num_cells() >= 9);
        let loaded: usize = (0..grid.num_cells())
            .map(|i| grid.load_cell(i).unwrap().len())
            .sum();
        assert_eq!(loaded, 137);
    }

    #[test]
    fn str_partitions_empty() {
        assert!(str_partitions(&[], 8).is_empty());
    }

    #[test]
    fn leaf_pages_cover_all_entries() {
        let tree = RTree::build(grid_entries(13));
        let pages = tree.leaf_pages();
        let total: usize = pages.iter().map(|(ids, _)| ids.len()).sum();
        assert_eq!(total, 169);
        // Every page respects the fanout bound.
        for (ids, _) in &pages {
            assert!(!ids.is_empty() && ids.len() <= NODE_CAPACITY);
        }
    }
}
