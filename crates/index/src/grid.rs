//! The clustered grid index (§5.3, tuning §6.1).
//!
//! A `GridIndex` is immutable once built: live writes stage in a
//! [`crate::delta::DeltaStore`] and [`crate::compact`] folds them into a
//! **new** index with `generation + 1`, sharing unchanged blocks with its
//! predecessor. In-flight readers holding the old index keep a fully
//! consistent view — nothing they reference is ever rewritten in place.

use spade_geometry::hull::convex_hull_polygon;
use spade_geometry::{BBox, Geometry, Point, Polygon};
use spade_storage::geom::{decode_geometry, encode_geometry, geometry_table, read_geometry_table};
use spade_storage::persist;
use spade_storage::wal::crc32;
use spade_storage::{cursor, Result, StorageError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One grid cell: its bounding polygon (a convex hull), the ids of the
/// objects clustered into it, and the physical size of its data block.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Discrete cell coordinates (before hull expansion). Not necessarily
    /// unique: compaction may split one overfull cell into several cells
    /// sharing coordinates.
    pub coords: (i32, i32),
    /// The bounding polygon: convex hull over the cell's geometries.
    pub hull: Polygon,
    /// Number of objects stored in the cell's block.
    pub num_objects: usize,
    /// Physical (serialized) size of the block in bytes — what a transfer
    /// of this cell to the GPU costs.
    pub bytes: u64,
    /// Smallest object id stored in the block — with `id_max`, lets
    /// compaction skip cells that cannot contain a deleted/replaced id.
    pub id_min: u32,
    /// Largest object id stored in the block.
    pub id_max: u32,
}

impl GridCell {
    pub fn bbox(&self) -> BBox {
        self.hull.bbox()
    }

    /// Whether any id in `ids` (sorted set semantics) could live here.
    pub fn id_range_hits(&self, ids: &std::collections::BTreeSet<u32>) -> bool {
        ids.range(self.id_min..=self.id_max).next().is_some()
    }
}

/// Where cell blocks live.
pub(crate) enum BlockStore {
    /// One file per cell under a directory (the out-of-core path). The
    /// file name of cell `i` is `files[i]`; generations share unchanged
    /// files, so names carry the generation that wrote them.
    Disk { dir: PathBuf, files: Vec<String> },
    /// Serialized blocks held in memory (tests and small benchmarks);
    /// reads are still byte-accounted. `Arc` so successive generations
    /// share unchanged blocks instead of copying them.
    Memory(Vec<Arc<Vec<u8>>>),
}

/// The clustered grid index.
pub struct GridIndex {
    pub cell_size: f64,
    /// Grid origin: cells are aligned to the data extent's minimum corner,
    /// so a data set that fits one cell-size span occupies one cell.
    pub origin: Point,
    /// Compaction epoch: 0 for a freshly built index, incremented every
    /// time [`crate::compact::compact`] folds a delta in.
    pub generation: u64,
    pub(crate) cells: Vec<GridCell>,
    pub(crate) store: BlockStore,
    /// Bytes read through [`GridIndex::load_cell`] since construction.
    bytes_read: Mutex<u64>,
    /// Bytes read by compaction ([`GridIndex::load_cell_compact`]) —
    /// kept apart so maintenance I/O never shows up as query I/O.
    compact_bytes_read: Mutex<u64>,
}

impl GridIndex {
    /// Choose a cell size such that the expected block size stays under
    /// `max_cell_bytes` (the paper restricts zoom levels so a cell is at
    /// most ~2 GB for an 8 GB GPU, §6.1). Assumes roughly uniform density;
    /// skewed data simply yields some larger cells, which is tolerated the
    /// same way the paper's OSM zoom levels are.
    pub fn cell_size_for_budget(extent: &BBox, total_bytes: u64, max_cell_bytes: u64) -> f64 {
        let span = extent.width().max(extent.height()).max(1e-9);
        if total_bytes <= max_cell_bytes {
            return span; // a single cell suffices
        }
        // Halve the cell size (quadrupling the cell count) until the
        // expected per-cell share fits — the OSM zoom-level progression.
        let mut cells_per_axis = 1u64;
        while total_bytes / (cells_per_axis * cells_per_axis) > max_cell_bytes
            && cells_per_axis < (1 << 20)
        {
            cells_per_axis *= 2;
        }
        span / cells_per_axis as f64
    }

    /// Build the index over `(id, geometry)` pairs, writing one block per
    /// cell into `dir` (pass `None` to keep blocks in memory).
    pub fn build(
        dir: Option<PathBuf>,
        objects: &[(u32, Geometry)],
        cell_size: f64,
    ) -> Result<GridIndex> {
        assert!(cell_size > 0.0, "cell size must be positive");
        // Cluster objects by the cell containing their centroid, with the
        // grid aligned to the data extent's minimum corner.
        let mut extent = BBox::empty();
        for (_, g) in objects {
            extent = extent.union(&g.bbox());
        }
        let origin = if extent.is_empty() {
            Point::ZERO
        } else {
            extent.min
        };
        let mut buckets: BTreeMap<(i32, i32), Vec<usize>> = BTreeMap::new();
        for (i, (_, g)) in objects.iter().enumerate() {
            let key = bucket_of(g.centroid(), origin, cell_size);
            buckets.entry(key).or_default().push(i);
        }
        Self::from_partitions(
            dir,
            objects,
            buckets.into_iter().collect(),
            cell_size,
            origin,
        )
    }

    /// Build the index from an arbitrary partitioning — the §7 extension:
    /// "other indexing strategies can be used in a similar fashion… the
    /// index filtering simply performs selections/joins on the bounding
    /// polygons". [`crate::rtree::str_partitions`] supplies the R-tree-leaf
    /// partitioning variant.
    pub fn from_partitions(
        dir: Option<PathBuf>,
        objects: &[(u32, Geometry)],
        partitions: Vec<((i32, i32), Vec<usize>)>,
        cell_size: f64,
        origin: Point,
    ) -> Result<GridIndex> {
        if let Some(d) = &dir {
            std::fs::create_dir_all(d)?;
        }
        let mut cells = Vec::with_capacity(partitions.len());
        let mut blocks = Vec::with_capacity(partitions.len());
        let mut files = Vec::with_capacity(partitions.len());
        for (coords, members) in partitions {
            let items: Vec<(u32, Geometry)> = members.iter().map(|&i| objects[i].clone()).collect();
            let (cell, encoded) = encode_cell(coords, &items)?;
            match &dir {
                Some(d) => {
                    let name = format!("cell_{}_{}.blk", coords.0, coords.1);
                    // fsynced now so `save_manifest` (which makes this
                    // block reachable) never points at torn block bytes.
                    persist::write_durable(&d.join(&name), &encoded)?;
                    files.push(name);
                }
                None => blocks.push(Arc::new(encoded)),
            }
            cells.push(cell);
        }
        Ok(GridIndex {
            cell_size,
            origin,
            generation: 0,
            cells,
            store: match dir {
                Some(d) => BlockStore::Disk { dir: d, files },
                None => BlockStore::Memory(blocks),
            },
            bytes_read: Mutex::new(0),
            compact_bytes_read: Mutex::new(0),
        })
    }

    /// Assemble an index from already-encoded parts (compaction and
    /// manifest recovery use this).
    pub(crate) fn from_parts(
        cell_size: f64,
        origin: Point,
        generation: u64,
        cells: Vec<GridCell>,
        store: BlockStore,
    ) -> GridIndex {
        GridIndex {
            cell_size,
            origin,
            generation,
            cells,
            store,
            bytes_read: Mutex::new(0),
            compact_bytes_read: Mutex::new(0),
        }
    }

    pub fn cells(&self) -> &[GridCell] {
        &self.cells
    }

    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total bytes across all blocks.
    pub fn total_bytes(&self) -> u64 {
        self.cells.iter().map(|c| c.bytes).sum()
    }

    /// Total object count across all blocks.
    pub fn num_objects(&self) -> usize {
        self.cells.iter().map(|c| c.num_objects).sum()
    }

    /// The index itself as a polygonal data set: `(cell_index, hull)` pairs
    /// that the GPU filter stage runs selections/joins against (§5.3).
    pub fn bounding_polygons(&self) -> Vec<(u32, Polygon)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (i as u32, c.hull.clone()))
            .collect()
    }

    /// The directory blocks live under, for disk-backed indexes.
    pub fn dir(&self) -> Option<&Path> {
        match &self.store {
            BlockStore::Disk { dir, .. } => Some(dir),
            BlockStore::Memory(_) => None,
        }
    }

    fn read_block(&self, idx: usize) -> Result<Vec<(u32, Geometry)>> {
        let table = match &self.store {
            BlockStore::Disk { dir, files } => {
                let (t, _) = persist::read_table(&dir.join(&files[idx]))?;
                t
            }
            BlockStore::Memory(blocks) => persist::decode_table(&blocks[idx])?,
        };
        read_geometry_table(&table)
    }

    /// Load one cell's block, returning its objects and charging the block
    /// bytes to the query I/O ledger.
    pub fn load_cell(&self, idx: usize) -> Result<Vec<(u32, Geometry)>> {
        let cell = self
            .cells
            .get(idx)
            .ok_or_else(|| StorageError::Io(format!("no cell {idx}")))?;
        let objects = self.read_block(idx)?;
        *self.bytes_read.lock().unwrap() += cell.bytes;
        Ok(objects)
    }

    /// Load one cell's block for compaction: same read path, charged to
    /// the maintenance ledger instead of the query one.
    pub fn load_cell_compact(&self, idx: usize) -> Result<Vec<(u32, Geometry)>> {
        let cell = self
            .cells
            .get(idx)
            .ok_or_else(|| StorageError::Io(format!("no cell {idx}")))?;
        let objects = self.read_block(idx)?;
        *self.compact_bytes_read.lock().unwrap() += cell.bytes;
        Ok(objects)
    }

    /// Reference to cell `idx`'s stored block (file name or shared bytes),
    /// so compaction can carry unchanged cells into the next generation
    /// without copying them.
    pub(crate) fn block_ref(&self, idx: usize) -> BlockRef {
        match &self.store {
            BlockStore::Disk { files, .. } => BlockRef::File(files[idx].clone()),
            BlockStore::Memory(blocks) => BlockRef::Bytes(Arc::clone(&blocks[idx])),
        }
    }

    /// Bytes read through [`GridIndex::load_cell`] so far. Per-generation:
    /// each compacted index starts a fresh ledger.
    pub fn bytes_read(&self) -> u64 {
        *self.bytes_read.lock().unwrap()
    }

    /// Reset the query I/O ledger (per-query accounting).
    pub fn reset_bytes_read(&self) {
        *self.bytes_read.lock().unwrap() = 0;
    }

    /// Bytes read by compaction over this index.
    pub fn compact_bytes_read(&self) -> u64 {
        *self.compact_bytes_read.lock().unwrap()
    }

    /// File names of every block of this generation, for disk-backed
    /// indexes (`None` for memory stores). Generation GC diffs these
    /// across generations to find files only the retired one references.
    pub fn block_files(&self) -> Option<&[String]> {
        match &self.store {
            BlockStore::Disk { files, .. } => Some(files),
            BlockStore::Memory(_) => None,
        }
    }

    /// Delete files under the index directory that this generation's
    /// manifest does not reference: blocks and manifests of superseded or
    /// never-installed generations (e.g. left behind by a crash between
    /// compaction's block writes and the `CURRENT` swap). Only call when
    /// no reader can hold an older generation — i.e. right after open.
    /// Returns the number of files removed.
    pub fn gc_unreferenced(&self) -> Result<usize> {
        let BlockStore::Disk { dir, files } = &self.store else {
            return Ok(0);
        };
        let referenced: std::collections::BTreeSet<String> = files
            .iter()
            .cloned()
            .chain([format!("manifest_g{}.mf", self.generation)])
            .collect();
        let mut removed = 0usize;
        for entry in std::fs::read_dir(dir)? {
            let Ok(entry) = entry else { continue };
            let name = entry.file_name().to_string_lossy().into_owned();
            let sweepable = name.ends_with(".blk")
                || (name.starts_with("manifest_") && name.ends_with(".mf"))
                || name == "CURRENT.tmp";
            if sweepable
                && !referenced.contains(&name)
                && std::fs::remove_file(entry.path()).is_ok()
            {
                removed += 1;
            }
        }
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // Manifest persistence (disk-backed indexes)
    // ------------------------------------------------------------------

    /// Persist this generation's cell table as `manifest_g{N}.mf` and
    /// atomically repoint `CURRENT` at it. `wal_seq` records the WAL
    /// sequence folded into this generation (0 = none): recovery replays
    /// only records after it. No-op for memory-backed indexes.
    pub fn save_manifest(&self, wal_seq: u64) -> Result<()> {
        let BlockStore::Disk { dir, files } = &self.store else {
            return Ok(());
        };
        let mut buf = Vec::new();
        cursor::put_slice(&mut buf, b"SPGM");
        cursor::put_u8(&mut buf, 1); // version
        cursor::put_u64_le(&mut buf, self.generation);
        cursor::put_u64_le(&mut buf, wal_seq);
        cursor::put_f64_le(&mut buf, self.cell_size);
        cursor::put_f64_le(&mut buf, self.origin.x);
        cursor::put_f64_le(&mut buf, self.origin.y);
        cursor::put_u32_le(&mut buf, self.cells.len() as u32);
        for (cell, file) in self.cells.iter().zip(files) {
            cursor::put_u32_le(&mut buf, cell.coords.0 as u32);
            cursor::put_u32_le(&mut buf, cell.coords.1 as u32);
            cursor::put_u64_le(&mut buf, cell.num_objects as u64);
            cursor::put_u64_le(&mut buf, cell.bytes);
            cursor::put_u32_le(&mut buf, cell.id_min);
            cursor::put_u32_le(&mut buf, cell.id_max);
            cursor::put_str(&mut buf, file);
            let hull = encode_geometry(&Geometry::Polygon(cell.hull.clone()));
            cursor::put_u32_le(&mut buf, hull.len() as u32);
            cursor::put_slice(&mut buf, &hull);
        }
        let crc = crc32(&buf);
        cursor::put_u32_le(&mut buf, crc);

        // This is the "durable before visible" point of the generation
        // protocol, so the fsync order matters: (1) the manifest contents;
        // (2) the directory, so the manifest's name and every block file
        // written for this generation (each fsynced at write time) have
        // durable directory entries; (3) CURRENT.tmp's contents; (4) the
        // rename; (5) the directory again so the rename itself survives.
        // A crash at any point leaves CURRENT referencing a manifest whose
        // bytes and blocks are already on stable storage.
        let name = format!("manifest_g{}.mf", self.generation);
        persist::write_durable(&dir.join(&name), &buf)?;
        persist::sync_dir(dir)?;
        let tmp = dir.join("CURRENT.tmp");
        persist::write_durable(&tmp, name.as_bytes())?;
        std::fs::rename(&tmp, dir.join("CURRENT"))?;
        persist::sync_dir(dir)?;
        Ok(())
    }

    /// Open the generation `CURRENT` points at. Returns the index plus the
    /// WAL sequence its manifest recorded as folded in.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(GridIndex, u64)> {
        let dir = dir.into();
        let current = std::fs::read_to_string(dir.join("CURRENT"))?;
        let data = std::fs::read(dir.join(current.trim()))?;
        let corrupt = |m: &str| StorageError::Corrupt(format!("manifest: {m}"));
        if data.len() < 4 {
            return Err(corrupt("too short"));
        }
        let (body, tail) = data.split_at(data.len() - 4);
        let mut crc_cur = tail;
        let stored = cursor::get_u32_le(&mut crc_cur).ok_or_else(|| corrupt("no crc"))?;
        if crc32(body) != stored {
            return Err(corrupt("checksum mismatch"));
        }
        let mut cur = body;
        let magic = cursor::get_bytes(&mut cur, 4).ok_or_else(|| corrupt("no magic"))?;
        if magic != b"SPGM" {
            return Err(corrupt("bad magic"));
        }
        let _version = cursor::get_u8(&mut cur).ok_or_else(|| corrupt("no version"))?;
        let generation = cursor::get_u64_le(&mut cur).ok_or_else(|| corrupt("truncated"))?;
        let wal_seq = cursor::get_u64_le(&mut cur).ok_or_else(|| corrupt("truncated"))?;
        let cell_size = cursor::get_f64_le(&mut cur).ok_or_else(|| corrupt("truncated"))?;
        let ox = cursor::get_f64_le(&mut cur).ok_or_else(|| corrupt("truncated"))?;
        let oy = cursor::get_f64_le(&mut cur).ok_or_else(|| corrupt("truncated"))?;
        let n = cursor::get_u32_le(&mut cur).ok_or_else(|| corrupt("truncated"))? as usize;
        let mut cells = Vec::with_capacity(n);
        let mut files = Vec::with_capacity(n);
        for _ in 0..n {
            let cx = cursor::get_u32_le(&mut cur).ok_or_else(|| corrupt("truncated"))? as i32;
            let cy = cursor::get_u32_le(&mut cur).ok_or_else(|| corrupt("truncated"))? as i32;
            let num_objects =
                cursor::get_u64_le(&mut cur).ok_or_else(|| corrupt("truncated"))? as usize;
            let bytes = cursor::get_u64_le(&mut cur).ok_or_else(|| corrupt("truncated"))?;
            let id_min = cursor::get_u32_le(&mut cur).ok_or_else(|| corrupt("truncated"))?;
            let id_max = cursor::get_u32_le(&mut cur).ok_or_else(|| corrupt("truncated"))?;
            let flen = cursor::get_u32_le(&mut cur).ok_or_else(|| corrupt("truncated"))? as usize;
            let fname = cursor::get_bytes(&mut cur, flen).ok_or_else(|| corrupt("truncated"))?;
            let file = String::from_utf8(fname.to_vec()).map_err(|_| corrupt("bad file name"))?;
            let hlen = cursor::get_u32_le(&mut cur).ok_or_else(|| corrupt("truncated"))? as usize;
            let hbytes = cursor::get_bytes(&mut cur, hlen).ok_or_else(|| corrupt("truncated"))?;
            let Geometry::Polygon(hull) = decode_geometry(hbytes)? else {
                return Err(corrupt("hull is not a polygon"));
            };
            cells.push(GridCell {
                coords: (cx, cy),
                hull,
                num_objects,
                bytes,
                id_min,
                id_max,
            });
            files.push(file);
        }
        Ok((
            GridIndex::from_parts(
                cell_size,
                Point::new(ox, oy),
                generation,
                cells,
                BlockStore::Disk { dir, files },
            ),
            wal_seq,
        ))
    }
}

/// Reference to one stored block, for carrying cells across generations.
pub(crate) enum BlockRef {
    File(String),
    Bytes(Arc<Vec<u8>>),
}

/// The discrete cell that `centroid` falls into.
pub(crate) fn bucket_of(centroid: Point, origin: Point, cell_size: f64) -> (i32, i32) {
    (
        ((centroid.x - origin.x) / cell_size).floor() as i32,
        ((centroid.y - origin.y) / cell_size).floor() as i32,
    )
}

/// Hull + encode one cell's member objects. Shared by the initial build
/// and compaction so both produce identical blocks for identical members.
pub(crate) fn encode_cell(
    coords: (i32, i32),
    items: &[(u32, Geometry)],
) -> Result<(GridCell, Vec<u8>)> {
    // Bounding polygon: convex hull over all member geometry vertices
    // (expands past the cell box for spanning objects).
    let mut pts: Vec<Point> = Vec::new();
    for (_, g) in items {
        collect_vertices(g, &mut pts);
    }
    let hull = convex_hull_polygon(&pts).unwrap_or_else(|| {
        // Degenerate cell (all collinear): fall back to an inflated
        // bbox so the bound is still a polygon.
        Polygon::rect(BBox::from_points(pts.iter().copied()).inflate(1e-9))
    });
    let table = geometry_table(&format!("cell_{}_{}", coords.0, coords.1), items)?;
    let encoded = persist::encode_table(&table);
    let bytes = encoded.len() as u64;
    let id_min = items.iter().map(|(id, _)| *id).min().unwrap_or(0);
    let id_max = items.iter().map(|(id, _)| *id).max().unwrap_or(0);
    Ok((
        GridCell {
            coords,
            hull,
            num_objects: items.len(),
            bytes,
            id_min,
            id_max,
        },
        encoded,
    ))
}

fn collect_vertices(g: &Geometry, out: &mut Vec<Point>) {
    match g {
        Geometry::Point(p) => out.push(*p),
        Geometry::LineString(l) => out.extend_from_slice(&l.points),
        Geometry::Polygon(p) => {
            out.extend_from_slice(&p.exterior.points);
            for h in &p.holes {
                out.extend_from_slice(&h.points);
            }
        }
        Geometry::MultiPolygon(m) => {
            for p in &m.polygons {
                out.extend_from_slice(&p.exterior.points);
                for h in &p.holes {
                    out.extend_from_slice(&h.points);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_geometry::predicates::point_in_polygon;

    pub(crate) fn point_set(n: usize) -> Vec<(u32, Geometry)> {
        // Deterministic scatter over [0, 100)².
        let mut s = 99u64;
        (0..n)
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 10_000) as f64 / 100.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 10_000) as f64 / 100.0;
                (i as u32, Geometry::Point(Point::new(x, y)))
            })
            .collect()
    }

    #[test]
    fn build_covers_all_objects() {
        let objects = point_set(500);
        let idx = GridIndex::build(None, &objects, 25.0).unwrap();
        assert_eq!(idx.num_objects(), 500);
        assert!(idx.num_cells() <= 16);
        assert!(idx.total_bytes() > 0);
        assert_eq!(idx.generation, 0);
    }

    #[test]
    fn cells_load_back_their_objects() {
        let objects = point_set(200);
        let idx = GridIndex::build(None, &objects, 50.0).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..idx.num_cells() {
            for (id, g) in idx.load_cell(i).unwrap() {
                assert!(seen.insert(id), "object {id} in two cells");
                // The object must be inside its cell's hull.
                if let Geometry::Point(p) = g {
                    assert!(point_in_polygon(p, &idx.cells()[i].hull));
                }
            }
        }
        assert_eq!(seen.len(), 200);
        assert_eq!(idx.bytes_read(), idx.total_bytes());
        idx.reset_bytes_read();
        assert_eq!(idx.bytes_read(), 0);
    }

    #[test]
    fn hull_expands_for_spanning_objects() {
        // A polygon whose centroid is in one cell but spans two.
        let long = Geometry::Polygon(Polygon::rect(BBox::new(
            Point::new(1.0, 1.0),
            Point::new(45.0, 5.0),
        )));
        let idx = GridIndex::build(None, &[(0, long)], 25.0).unwrap();
        assert_eq!(idx.num_cells(), 1);
        let hull_bb = idx.cells()[0].bbox();
        assert!(hull_bb.max.x >= 45.0); // expanded past the 25-unit cell
    }

    #[test]
    fn disk_backed_roundtrip() {
        let dir = std::env::temp_dir().join(format!("spade-grid-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let objects = point_set(100);
        let idx = GridIndex::build(Some(dir.clone()), &objects, 50.0).unwrap();
        let total: usize = (0..idx.num_cells())
            .map(|i| idx.load_cell(i).unwrap().len())
            .sum();
        assert_eq!(total, 100);
        // Files exist on disk.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, idx.num_cells());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cell_size_budget_progression() {
        let extent = BBox::new(Point::ZERO, Point::new(100.0, 100.0));
        // Fits in one cell.
        assert_eq!(GridIndex::cell_size_for_budget(&extent, 1000, 2000), 100.0);
        // Needs 2x2 cells.
        assert_eq!(GridIndex::cell_size_for_budget(&extent, 8000, 2000), 50.0);
        // Needs 4x4 cells.
        assert_eq!(GridIndex::cell_size_for_budget(&extent, 32_000, 2000), 25.0);
    }

    #[test]
    fn bounding_polygons_form_dataset() {
        let objects = point_set(300);
        let idx = GridIndex::build(None, &objects, 25.0).unwrap();
        let polys = idx.bounding_polygons();
        assert_eq!(polys.len(), idx.num_cells());
        for (i, p) in &polys {
            assert!(p.exterior.len() >= 3, "cell {i} hull degenerate");
        }
    }

    #[test]
    fn load_cell_out_of_range() {
        let idx = GridIndex::build(None, &point_set(10), 100.0).unwrap();
        assert!(idx.load_cell(99).is_err());
    }

    #[test]
    fn corrupt_block_is_reported_not_panicking() {
        let dir = std::env::temp_dir().join(format!("spade-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let idx = GridIndex::build(Some(dir.clone()), &point_set(50), 100.0).unwrap();
        // Truncate every block file on disk.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            let data = std::fs::read(&p).unwrap();
            std::fs::write(&p, &data[..data.len() / 2]).unwrap();
        }
        let err = idx.load_cell(0).unwrap_err();
        assert!(matches!(
            err,
            spade_storage::StorageError::Corrupt(_) | spade_storage::StorageError::Io(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aligned_grid_uses_single_cell_for_small_data() {
        // Data spanning less than one cell size must land in exactly one
        // cell thanks to origin alignment.
        let objects: Vec<(u32, Geometry)> = (0..20)
            .map(|i| {
                (
                    i,
                    Geometry::Point(Point::new(500.0 + (i % 5) as f64, 777.0 + (i / 5) as f64)),
                )
            })
            .collect();
        let idx = GridIndex::build(None, &objects, 100.0).unwrap();
        assert_eq!(idx.num_cells(), 1);
    }

    #[test]
    fn id_ranges_cover_members() {
        let objects = point_set(120);
        let idx = GridIndex::build(None, &objects, 25.0).unwrap();
        for i in 0..idx.num_cells() {
            let cell = &idx.cells()[i];
            for (id, _) in idx.load_cell(i).unwrap() {
                assert!(cell.id_min <= id && id <= cell.id_max);
            }
        }
    }

    #[test]
    fn compaction_ledger_is_separate() {
        let objects = point_set(80);
        let idx = GridIndex::build(None, &objects, 25.0).unwrap();
        idx.load_cell_compact(0).unwrap();
        assert_eq!(idx.bytes_read(), 0, "compaction reads are not query I/O");
        assert!(idx.compact_bytes_read() > 0);
        idx.load_cell(0).unwrap();
        assert_eq!(idx.bytes_read(), idx.cells()[0].bytes);
    }

    #[test]
    fn manifest_roundtrip() {
        let dir = std::env::temp_dir().join(format!("spade-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let objects = point_set(60);
        let idx = GridIndex::build(Some(dir.clone()), &objects, 25.0).unwrap();
        idx.save_manifest(42).unwrap();
        let (back, wal_seq) = GridIndex::open(&dir).unwrap();
        assert_eq!(wal_seq, 42);
        assert_eq!(back.generation, 0);
        assert_eq!(back.num_cells(), idx.num_cells());
        assert_eq!(back.cell_size, idx.cell_size);
        let total: usize = (0..back.num_cells())
            .map(|i| back.load_cell(i).unwrap().len())
            .sum();
        assert_eq!(total, 60);
        for (a, b) in idx.cells().iter().zip(back.cells()) {
            assert_eq!(a.coords, b.coords);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.id_min, b.id_min);
            assert_eq!(a.id_max, b.id_max);
            assert_eq!(a.hull.exterior.points, b.hull.exterior.points);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_reported() {
        let dir = std::env::temp_dir().join(format!("spade-manifest-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let idx = GridIndex::build(Some(dir.clone()), &point_set(30), 50.0).unwrap();
        idx.save_manifest(0).unwrap();
        let current = std::fs::read_to_string(dir.join("CURRENT")).unwrap();
        let mpath = dir.join(current.trim());
        let mut data = std::fs::read(&mpath).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x55;
        std::fs::write(&mpath, &data).unwrap();
        assert!(matches!(
            GridIndex::open(&dir),
            Err(spade_storage::StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
