//! The clustered grid index (§5.3, tuning §6.1).

use spade_geometry::hull::convex_hull_polygon;
use spade_geometry::{BBox, Geometry, Point, Polygon};
use spade_storage::geom::{geometry_table, read_geometry_table};
use spade_storage::persist;
use spade_storage::{Result, StorageError};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

/// One grid cell: its bounding polygon (a convex hull), the ids of the
/// objects clustered into it, and the physical size of its data block.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Discrete cell coordinates (before hull expansion).
    pub coords: (i32, i32),
    /// The bounding polygon: convex hull over the cell's geometries.
    pub hull: Polygon,
    /// Number of objects stored in the cell's block.
    pub num_objects: usize,
    /// Physical (serialized) size of the block in bytes — what a transfer
    /// of this cell to the GPU costs.
    pub bytes: u64,
}

impl GridCell {
    pub fn bbox(&self) -> BBox {
        self.hull.bbox()
    }
}

/// Where cell blocks live.
enum BlockStore {
    /// One file per cell under a directory (the out-of-core path).
    Disk(PathBuf),
    /// Serialized blocks held in memory (tests and small benchmarks); reads
    /// are still byte-accounted.
    Memory(Vec<Vec<u8>>),
}

/// The clustered grid index.
pub struct GridIndex {
    pub cell_size: f64,
    /// Grid origin: cells are aligned to the data extent's minimum corner,
    /// so a data set that fits one cell-size span occupies one cell.
    pub origin: Point,
    cells: Vec<GridCell>,
    store: BlockStore,
    /// Bytes read through [`GridIndex::load_cell`] since construction.
    bytes_read: Mutex<u64>,
}

impl GridIndex {
    /// Choose a cell size such that the expected block size stays under
    /// `max_cell_bytes` (the paper restricts zoom levels so a cell is at
    /// most ~2 GB for an 8 GB GPU, §6.1). Assumes roughly uniform density;
    /// skewed data simply yields some larger cells, which is tolerated the
    /// same way the paper's OSM zoom levels are.
    pub fn cell_size_for_budget(extent: &BBox, total_bytes: u64, max_cell_bytes: u64) -> f64 {
        let span = extent.width().max(extent.height()).max(1e-9);
        if total_bytes <= max_cell_bytes {
            return span; // a single cell suffices
        }
        // Halve the cell size (quadrupling the cell count) until the
        // expected per-cell share fits — the OSM zoom-level progression.
        let mut cells_per_axis = 1u64;
        while total_bytes / (cells_per_axis * cells_per_axis) > max_cell_bytes
            && cells_per_axis < (1 << 20)
        {
            cells_per_axis *= 2;
        }
        span / cells_per_axis as f64
    }

    /// Build the index over `(id, geometry)` pairs, writing one block per
    /// cell into `dir` (pass `None` to keep blocks in memory).
    pub fn build(
        dir: Option<PathBuf>,
        objects: &[(u32, Geometry)],
        cell_size: f64,
    ) -> Result<GridIndex> {
        assert!(cell_size > 0.0, "cell size must be positive");
        // Cluster objects by the cell containing their centroid, with the
        // grid aligned to the data extent's minimum corner.
        let mut extent = BBox::empty();
        for (_, g) in objects {
            extent = extent.union(&g.bbox());
        }
        let origin = if extent.is_empty() {
            Point::ZERO
        } else {
            extent.min
        };
        let mut buckets: BTreeMap<(i32, i32), Vec<usize>> = BTreeMap::new();
        for (i, (_, g)) in objects.iter().enumerate() {
            let c = g.centroid();
            let key = (
                ((c.x - origin.x) / cell_size).floor() as i32,
                ((c.y - origin.y) / cell_size).floor() as i32,
            );
            buckets.entry(key).or_default().push(i);
        }
        Self::from_partitions(
            dir,
            objects,
            buckets.into_iter().collect(),
            cell_size,
            origin,
        )
    }

    /// Build the index from an arbitrary partitioning — the §7 extension:
    /// "other indexing strategies can be used in a similar fashion… the
    /// index filtering simply performs selections/joins on the bounding
    /// polygons". [`crate::rtree::str_partitions`] supplies the R-tree-leaf
    /// partitioning variant.
    pub fn from_partitions(
        dir: Option<PathBuf>,
        objects: &[(u32, Geometry)],
        partitions: Vec<((i32, i32), Vec<usize>)>,
        cell_size: f64,
        origin: Point,
    ) -> Result<GridIndex> {
        if let Some(d) = &dir {
            std::fs::create_dir_all(d)?;
        }
        let mut cells = Vec::with_capacity(partitions.len());
        let mut blocks = Vec::with_capacity(partitions.len());
        for (coords, members) in partitions {
            // Bounding polygon: convex hull over all member geometry
            // vertices (expands past the cell box for spanning objects).
            let mut pts: Vec<Point> = Vec::new();
            for &i in &members {
                collect_vertices(&objects[i].1, &mut pts);
            }
            let hull = convex_hull_polygon(&pts).unwrap_or_else(|| {
                // Degenerate cell (all collinear): fall back to an inflated
                // bbox so the bound is still a polygon.
                Polygon::rect(BBox::from_points(pts.iter().copied()).inflate(1e-9))
            });

            let items: Vec<(u32, Geometry)> = members.iter().map(|&i| objects[i].clone()).collect();
            let table = geometry_table(&format!("cell_{}_{}", coords.0, coords.1), &items)?;
            let encoded = persist::encode_table(&table);
            let bytes = encoded.len() as u64;
            match &dir {
                Some(d) => {
                    let path = cell_path(d, coords);
                    std::fs::write(&path, &encoded)?;
                }
                None => blocks.push(encoded),
            }
            cells.push(GridCell {
                coords,
                hull,
                num_objects: items.len(),
                bytes,
            });
        }
        Ok(GridIndex {
            cell_size,
            origin,
            cells,
            store: match dir {
                Some(d) => BlockStore::Disk(d),
                None => BlockStore::Memory(blocks),
            },
            bytes_read: Mutex::new(0),
        })
    }

    pub fn cells(&self) -> &[GridCell] {
        &self.cells
    }

    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total bytes across all blocks.
    pub fn total_bytes(&self) -> u64 {
        self.cells.iter().map(|c| c.bytes).sum()
    }

    /// Total object count across all blocks.
    pub fn num_objects(&self) -> usize {
        self.cells.iter().map(|c| c.num_objects).sum()
    }

    /// The index itself as a polygonal data set: `(cell_index, hull)` pairs
    /// that the GPU filter stage runs selections/joins against (§5.3).
    pub fn bounding_polygons(&self) -> Vec<(u32, Polygon)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (i as u32, c.hull.clone()))
            .collect()
    }

    /// Load one cell's block, returning its objects and charging the block
    /// bytes to the I/O ledger.
    pub fn load_cell(&self, idx: usize) -> Result<Vec<(u32, Geometry)>> {
        let cell = self
            .cells
            .get(idx)
            .ok_or_else(|| StorageError::Io(format!("no cell {idx}")))?;
        let table = match &self.store {
            BlockStore::Disk(dir) => {
                let (t, _) = persist::read_table(&cell_path(dir, cell.coords))?;
                t
            }
            BlockStore::Memory(blocks) => persist::decode_table(&blocks[idx])?,
        };
        *self.bytes_read.lock().unwrap() += cell.bytes;
        read_geometry_table(&table)
    }

    /// Bytes read through [`GridIndex::load_cell`] so far.
    pub fn bytes_read(&self) -> u64 {
        *self.bytes_read.lock().unwrap()
    }

    /// Reset the I/O ledger (per-query accounting).
    pub fn reset_bytes_read(&self) {
        *self.bytes_read.lock().unwrap() = 0;
    }
}

fn cell_path(dir: &std::path::Path, coords: (i32, i32)) -> PathBuf {
    dir.join(format!("cell_{}_{}.blk", coords.0, coords.1))
}

fn collect_vertices(g: &Geometry, out: &mut Vec<Point>) {
    match g {
        Geometry::Point(p) => out.push(*p),
        Geometry::LineString(l) => out.extend_from_slice(&l.points),
        Geometry::Polygon(p) => {
            out.extend_from_slice(&p.exterior.points);
            for h in &p.holes {
                out.extend_from_slice(&h.points);
            }
        }
        Geometry::MultiPolygon(m) => {
            for p in &m.polygons {
                out.extend_from_slice(&p.exterior.points);
                for h in &p.holes {
                    out.extend_from_slice(&h.points);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_geometry::predicates::point_in_polygon;

    fn point_set(n: usize) -> Vec<(u32, Geometry)> {
        // Deterministic scatter over [0, 100)².
        let mut s = 99u64;
        (0..n)
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 10_000) as f64 / 100.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 10_000) as f64 / 100.0;
                (i as u32, Geometry::Point(Point::new(x, y)))
            })
            .collect()
    }

    #[test]
    fn build_covers_all_objects() {
        let objects = point_set(500);
        let idx = GridIndex::build(None, &objects, 25.0).unwrap();
        assert_eq!(idx.num_objects(), 500);
        assert!(idx.num_cells() <= 16);
        assert!(idx.total_bytes() > 0);
    }

    #[test]
    fn cells_load_back_their_objects() {
        let objects = point_set(200);
        let idx = GridIndex::build(None, &objects, 50.0).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..idx.num_cells() {
            for (id, g) in idx.load_cell(i).unwrap() {
                assert!(seen.insert(id), "object {id} in two cells");
                // The object must be inside its cell's hull.
                if let Geometry::Point(p) = g {
                    assert!(point_in_polygon(p, &idx.cells()[i].hull));
                }
            }
        }
        assert_eq!(seen.len(), 200);
        assert_eq!(idx.bytes_read(), idx.total_bytes());
        idx.reset_bytes_read();
        assert_eq!(idx.bytes_read(), 0);
    }

    #[test]
    fn hull_expands_for_spanning_objects() {
        // A polygon whose centroid is in one cell but spans two.
        let long = Geometry::Polygon(Polygon::rect(BBox::new(
            Point::new(1.0, 1.0),
            Point::new(45.0, 5.0),
        )));
        let idx = GridIndex::build(None, &[(0, long)], 25.0).unwrap();
        assert_eq!(idx.num_cells(), 1);
        let hull_bb = idx.cells()[0].bbox();
        assert!(hull_bb.max.x >= 45.0); // expanded past the 25-unit cell
    }

    #[test]
    fn disk_backed_roundtrip() {
        let dir = std::env::temp_dir().join(format!("spade-grid-{}", std::process::id()));
        let objects = point_set(100);
        let idx = GridIndex::build(Some(dir.clone()), &objects, 50.0).unwrap();
        let total: usize = (0..idx.num_cells())
            .map(|i| idx.load_cell(i).unwrap().len())
            .sum();
        assert_eq!(total, 100);
        // Files exist on disk.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, idx.num_cells());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cell_size_budget_progression() {
        let extent = BBox::new(Point::ZERO, Point::new(100.0, 100.0));
        // Fits in one cell.
        assert_eq!(GridIndex::cell_size_for_budget(&extent, 1000, 2000), 100.0);
        // Needs 2x2 cells.
        assert_eq!(GridIndex::cell_size_for_budget(&extent, 8000, 2000), 50.0);
        // Needs 4x4 cells.
        assert_eq!(GridIndex::cell_size_for_budget(&extent, 32_000, 2000), 25.0);
    }

    #[test]
    fn bounding_polygons_form_dataset() {
        let objects = point_set(300);
        let idx = GridIndex::build(None, &objects, 25.0).unwrap();
        let polys = idx.bounding_polygons();
        assert_eq!(polys.len(), idx.num_cells());
        for (i, p) in &polys {
            assert!(p.exterior.len() >= 3, "cell {i} hull degenerate");
        }
    }

    #[test]
    fn load_cell_out_of_range() {
        let idx = GridIndex::build(None, &point_set(10), 100.0).unwrap();
        assert!(idx.load_cell(99).is_err());
    }

    #[test]
    fn corrupt_block_is_reported_not_panicking() {
        let dir = std::env::temp_dir().join(format!("spade-corrupt-{}", std::process::id()));
        let idx = GridIndex::build(Some(dir.clone()), &point_set(50), 100.0).unwrap();
        // Truncate every block file on disk.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            let data = std::fs::read(&p).unwrap();
            std::fs::write(&p, &data[..data.len() / 2]).unwrap();
        }
        let err = idx.load_cell(0).unwrap_err();
        assert!(matches!(
            err,
            spade_storage::StorageError::Corrupt(_) | spade_storage::StorageError::Io(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aligned_grid_uses_single_cell_for_small_data() {
        // Data spanning less than one cell size must land in exactly one
        // cell thanks to origin alignment.
        let objects: Vec<(u32, Geometry)> = (0..20)
            .map(|i| {
                (
                    i,
                    Geometry::Point(Point::new(500.0 + (i % 5) as f64, 777.0 + (i / 5) as f64)),
                )
            })
            .collect();
        let idx = GridIndex::build(None, &objects, 100.0).unwrap();
        assert_eq!(idx.num_cells(), 1);
    }
}
