//! Background compaction: fold a delta snapshot into a new index
//! generation.
//!
//! Compaction never mutates the old [`GridIndex`]. It reads the affected
//! cells (charged to the maintenance I/O ledger, not the query one),
//! rewrites them with tombstoned/replaced objects removed and staged
//! inserts added, recomputes each rewritten cell's convex hull, splits
//! cells that outgrew the byte budget via
//! [`GridIndex::cell_size_for_budget`], and assembles a **new** index at
//! `generation + 1` that shares every unchanged block with the old one.
//! Readers holding the old generation are undisturbed; the caller
//! installs the new index once `compact` returns and then drains the
//! delta through the snapshot's sequence.

use crate::delta::DeltaSnapshot;
use crate::grid::{bucket_of, encode_cell, BlockRef, BlockStore, GridCell, GridIndex};
use spade_geometry::{BBox, Geometry};
use spade_storage::Result;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What one compaction run did.
#[derive(Debug, Clone, Default)]
pub struct CompactReport {
    /// Generation of the index the run produced.
    pub generation: u64,
    /// Cells carried over untouched (block shared with the old index).
    pub cells_kept: usize,
    /// Cells rewritten (members changed).
    pub cells_rewritten: usize,
    /// Extra cells created by splitting overfull rewrites.
    pub cells_split: usize,
    /// Block bytes read from the old generation.
    pub bytes_read: u64,
    /// Block bytes written into the new generation.
    pub bytes_written: u64,
    /// Staged inserts folded in.
    pub inserts_applied: usize,
    /// Base objects dropped (tombstoned or replaced).
    pub objects_removed: usize,
}

/// Fold `delta` into `old`, producing the next generation. Blocks of
/// unaffected cells are shared, not copied; rewritten blocks are written
/// as `cell_g{N}_{i}.blk` for disk-backed indexes so no file of the old
/// generation is ever touched.
pub fn compact(
    old: &GridIndex,
    delta: &DeltaSnapshot,
    max_cell_bytes: u64,
) -> Result<(GridIndex, CompactReport)> {
    let generation = old.generation + 1;
    let mut report = CompactReport {
        generation,
        ..CompactReport::default()
    };

    // Bucket staged inserts by their owning cell coordinates.
    let mut staged_by_cell: BTreeMap<(i32, i32), Vec<(u32, Geometry)>> = BTreeMap::new();
    for (id, g) in &delta.staged {
        let key = bucket_of(g.centroid(), old.origin, old.cell_size);
        staged_by_cell
            .entry(key)
            .or_default()
            .push((*id, g.clone()));
    }

    // Pass 1: decide per old cell whether it survives untouched.
    // `rewrites` collects the member sets of cells that must be re-encoded,
    // keyed by cell coordinates.
    type Rewrite = ((i32, i32), Vec<(u32, Geometry)>);
    let mut kept: Vec<(GridCell, BlockRef)> = Vec::new();
    let mut rewrites: Vec<Rewrite> = Vec::new();
    let compact_read_before = old.compact_bytes_read();
    for (i, cell) in old.cells().iter().enumerate() {
        let takes_inserts = staged_by_cell.contains_key(&cell.coords);
        let masked = cell.id_range_hits(&delta.mask);
        if !takes_inserts && !masked {
            kept.push((cell.clone(), old.block_ref(i)));
            report.cells_kept += 1;
            continue;
        }
        let mut members = old.load_cell_compact(i)?;
        if masked {
            let before = members.len();
            members.retain(|(id, _)| !delta.mask.contains(id));
            report.objects_removed += before - members.len();
        }
        if let Some(staged) = staged_by_cell.remove(&cell.coords) {
            report.inserts_applied += staged.len();
            members.extend(staged);
        }
        rewrites.push((cell.coords, members));
    }
    report.bytes_read = old.compact_bytes_read() - compact_read_before;

    // Staged inserts targeting coordinates with no existing cell open new
    // cells there.
    for (coords, staged) in staged_by_cell {
        report.inserts_applied += staged.len();
        rewrites.push((coords, staged));
    }

    // Pass 2: encode rewritten member sets, splitting overfull ones.
    let mut new_blocks: Vec<(GridCell, Vec<u8>)> = Vec::new();
    for (coords, mut members) in rewrites {
        if members.is_empty() {
            continue; // cell fully emptied by deletes
        }
        members.sort_by_key(|(id, _)| *id);
        let (cell, encoded) = encode_cell(coords, &members)?;
        if cell.bytes <= max_cell_bytes || members.len() <= 1 {
            report.cells_rewritten += 1;
            new_blocks.push((cell, encoded));
            continue;
        }
        // Over budget: split by centroid at the finer cell size the
        // budget machinery picks for this cell's extent.
        let mut extent = BBox::empty();
        for (_, g) in &members {
            extent = extent.union(&g.bbox());
        }
        let sub_size = GridIndex::cell_size_for_budget(&extent, cell.bytes, max_cell_bytes);
        let mut sub: BTreeMap<(i32, i32), Vec<(u32, Geometry)>> = BTreeMap::new();
        for (id, g) in members {
            let key = bucket_of(g.centroid(), extent.min, sub_size);
            sub.entry(key).or_default().push((id, g));
        }
        if sub.len() <= 1 {
            // Coincident centroids: the split cannot separate them, so
            // tolerate the oversized cell (same policy as skewed builds).
            report.cells_rewritten += 1;
            new_blocks.push((cell, encoded));
            continue;
        }
        report.cells_rewritten += 1;
        report.cells_split += sub.len() - 1;
        for (_, part) in sub {
            // Split parts keep the parent's coordinates: future inserts
            // bucketed there merge into the first part and may re-split.
            let (c, e) = encode_cell(coords, &part)?;
            new_blocks.push((c, e));
        }
    }

    // Pass 3: assemble the new generation's store.
    let mut cells = Vec::with_capacity(kept.len() + new_blocks.len());
    let store = if let Some(dir) = old.dir() {
        let mut files = Vec::with_capacity(kept.len() + new_blocks.len());
        for (cell, block) in kept {
            let BlockRef::File(name) = block else {
                unreachable!("disk index yields file refs")
            };
            cells.push(cell);
            files.push(name);
        }
        for (i, (cell, encoded)) in new_blocks.into_iter().enumerate() {
            let name = format!("cell_g{generation}_{i}.blk");
            // fsynced now so the manifest that makes this block reachable
            // can never be durable while the block bytes are not.
            spade_storage::persist::write_durable(&dir.join(&name), &encoded)?;
            report.bytes_written += encoded.len() as u64;
            cells.push(cell);
            files.push(name);
        }
        BlockStore::Disk {
            dir: dir.to_path_buf(),
            files,
        }
    } else {
        let mut blocks = Vec::with_capacity(kept.len() + new_blocks.len());
        for (cell, block) in kept {
            let BlockRef::Bytes(bytes) = block else {
                unreachable!("memory index yields byte refs")
            };
            cells.push(cell);
            blocks.push(bytes);
        }
        for (cell, encoded) in new_blocks {
            report.bytes_written += encoded.len() as u64;
            cells.push(cell);
            blocks.push(Arc::new(encoded));
        }
        BlockStore::Memory(blocks)
    };

    Ok((
        GridIndex::from_parts(old.cell_size, old.origin, generation, cells, store),
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaStore;
    use spade_geometry::Point;
    use std::collections::BTreeSet;

    fn pt(x: f64, y: f64) -> Geometry {
        Geometry::Point(Point::new(x, y))
    }

    fn scatter(n: usize) -> Vec<(u32, Geometry)> {
        let mut s = 7u64;
        (0..n)
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 10_000) as f64 / 100.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 10_000) as f64 / 100.0;
                (i as u32, pt(x, y))
            })
            .collect()
    }

    /// All objects of an index, sorted by id.
    fn contents(idx: &GridIndex) -> Vec<(u32, Geometry)> {
        let mut out = Vec::new();
        for i in 0..idx.num_cells() {
            out.extend(idx.load_cell_compact(i).unwrap());
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }

    #[test]
    fn compact_equals_rebuild() {
        let base = scatter(300);
        let idx = GridIndex::build(None, &base, 25.0).unwrap();
        let mut delta = DeltaStore::new();
        // Delete some, replace some, insert new ones.
        for id in 0..20u32 {
            delta.delete(id as u64 + 1, id * 7);
        }
        for i in 0..40u32 {
            delta.insert(100 + i as u64, 300 + i, pt(i as f64, 50.0));
        }
        delta.insert(200, 5, pt(1.0, 2.0)); // replace id 5 (if not deleted)
        let snap = delta.snapshot();
        let (new_idx, report) = compact(&idx, &snap, 1 << 20).unwrap();
        assert_eq!(new_idx.generation, 1);
        assert!(report.cells_rewritten > 0);
        assert!(report.inserts_applied >= 40);

        // Logical equivalence vs from-scratch state.
        let mut logical: BTreeMap<u32, Geometry> = base.into_iter().collect();
        for id in 0..20u32 {
            logical.remove(&(id * 7));
        }
        for i in 0..40u32 {
            logical.insert(300 + i, pt(i as f64, 50.0));
        }
        logical.insert(5, pt(1.0, 2.0));
        let got = contents(&new_idx);
        let want: Vec<(u32, Geometry)> = logical.into_iter().collect();
        assert_eq!(got.len(), want.len());
        for ((ga, gb), (wa, wb)) in got.iter().zip(&want) {
            assert_eq!(ga, wa);
            assert_eq!(format!("{gb:?}"), format!("{wb:?}"));
        }
    }

    #[test]
    fn untouched_cells_share_blocks() {
        let base = scatter(200);
        let idx = GridIndex::build(None, &base, 25.0).unwrap();
        let mut delta = DeltaStore::new();
        // One insert far outside the data extent: opens a new cell and
        // touches nothing else.
        delta.insert(1, 9999, pt(-500.0, -500.0));
        let snap = delta.snapshot();
        let (new_idx, report) = compact(&idx, &snap, 1 << 20).unwrap();
        assert_eq!(report.cells_kept, idx.num_cells());
        assert_eq!(new_idx.num_cells(), idx.num_cells() + 1);
        assert_eq!(report.bytes_read, 0, "no old blocks were loaded");
        assert_eq!(idx.bytes_read(), 0, "query ledger untouched");
    }

    #[test]
    fn deletes_can_empty_a_cell() {
        // Two far-apart clusters → two cells; delete one cluster entirely.
        let mut objects = Vec::new();
        for i in 0..10u32 {
            objects.push((i, pt(i as f64 * 0.1, 0.0)));
        }
        for i in 10..20u32 {
            objects.push((i, pt(90.0 + (i - 10) as f64 * 0.1, 0.0)));
        }
        let idx = GridIndex::build(None, &objects, 25.0).unwrap();
        assert!(idx.num_cells() >= 2);
        let mut delta = DeltaStore::new();
        for i in 10..20u32 {
            delta.delete(i as u64, i);
        }
        let (new_idx, _) = compact(&idx, &delta.snapshot(), 1 << 20).unwrap();
        assert_eq!(new_idx.num_objects(), 10);
        assert!(new_idx.num_cells() < idx.num_cells() + 1);
    }

    #[test]
    fn overfull_rewrite_splits() {
        let base = scatter(50);
        let idx = GridIndex::build(None, &base, 200.0).unwrap(); // one big cell
        assert_eq!(idx.num_cells(), 1);
        let mut delta = DeltaStore::new();
        for i in 0..400u32 {
            delta.insert(i as u64 + 1, 1000 + i, pt((i % 100) as f64, (i / 4) as f64));
        }
        // Tiny budget forces the rewritten cell to split.
        let (new_idx, report) = compact(&idx, &delta.snapshot(), 4096).unwrap();
        assert!(report.cells_split > 0, "expected a split: {report:?}");
        assert_eq!(new_idx.num_objects(), 450);
        // Every object still reachable exactly once.
        let ids: BTreeSet<u32> = contents(&new_idx).into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), 450);
    }

    #[test]
    fn disk_compaction_preserves_old_generation_files() {
        let dir = std::env::temp_dir().join(format!("spade-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = scatter(100);
        let idx = GridIndex::build(Some(dir.clone()), &base, 25.0).unwrap();
        let old_files: BTreeSet<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        let mut delta = DeltaStore::new();
        delta.insert(1, 500, pt(50.0, 50.0));
        delta.delete(2, 0);
        let (new_idx, _) = compact(&idx, &delta.snapshot(), 1 << 20).unwrap();
        assert_eq!(new_idx.generation, 1);
        // Every old file still present and readable through the old index.
        for f in &old_files {
            assert!(dir.join(f).exists(), "old block {f} removed");
        }
        let total_old: usize = (0..idx.num_cells())
            .map(|i| idx.load_cell(i).unwrap().len())
            .sum();
        assert_eq!(total_old, 100);
        assert_eq!(new_idx.num_objects(), 100); // +1 insert, -1 delete
        new_idx.save_manifest(7).unwrap();
        let (reopened, seq) = GridIndex::open(&dir).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(reopened.generation, 1);
        assert_eq!(reopened.num_objects(), 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
