//! Disk-based spatial indexes for out-of-core query processing.
//!
//! SPADE stores the underlying spatial data in a *clustered grid index*
//! (§3, §5.3): each grid cell owns a block of data on disk, sized so a cell
//! fits in GPU memory (§6.1). Two departures from a classical grid index
//! make it GPU-friendly:
//!
//! * each cell's bound is the **convex hull** of the geometries inside it —
//!   a tighter "bounding polygon" than a bbox, affordable because index
//!   filtering itself runs as a GPU selection/join over these polygons;
//! * objects spanning several cells are assigned to the cell containing
//!   their **centroid**, and the cell's hull *expands* to cover them — so
//!   cells may overlap, which the filter-by-join strategy tolerates.
//!
//! The [`rtree`] module provides the alternative strategy sketched in §7
//! (bounding polygons over R-tree leaves) and serves the cluster baseline's
//! per-partition index.

//! Live ingestion support: writes stage in a per-dataset [`delta`] store
//! and a background [`compact`] pass folds them into a fresh index
//! generation, leaving in-flight readers on the old one.

pub mod compact;
pub mod delta;
pub mod grid;
pub mod rtree;

pub use compact::{compact, CompactReport};
pub use delta::{DeltaSnapshot, DeltaStore};
pub use grid::{GridCell, GridIndex};
pub use rtree::RTree;

/// A dataset's read-visible version: the installed grid generation plus the
/// delta-store sequence watermark.
///
/// Both components are monotone non-decreasing over a dataset's lifetime —
/// compaction only installs higher generations, and [`DeltaStore`] never
/// lowers `max_seq` (draining after compaction keeps the watermark). Every
/// write bumps `seq` and every compaction bumps `generation`, so two equal
/// `Version` values observed at different times denote the *same* logical
/// snapshot: no mutation can have happened in between (no ABA). That makes
/// the pair a sound cache key component: anything keyed by `Version` is
/// invalidated for free by the next staged write or compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Version {
    /// Generation of the installed [`GridIndex`].
    pub generation: u64,
    /// Largest delta sequence applied so far ([`DeltaStore::max_seq`]).
    pub seq: u64,
}

impl Version {
    /// The fixed version of immutable in-memory datasets, which have no
    /// grid generation or delta stream.
    pub const MEMORY: Version = Version {
        generation: 0,
        seq: 0,
    };
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}s{}", self.generation, self.seq)
    }
}
