//! Disk-based spatial indexes for out-of-core query processing.
//!
//! SPADE stores the underlying spatial data in a *clustered grid index*
//! (§3, §5.3): each grid cell owns a block of data on disk, sized so a cell
//! fits in GPU memory (§6.1). Two departures from a classical grid index
//! make it GPU-friendly:
//!
//! * each cell's bound is the **convex hull** of the geometries inside it —
//!   a tighter "bounding polygon" than a bbox, affordable because index
//!   filtering itself runs as a GPU selection/join over these polygons;
//! * objects spanning several cells are assigned to the cell containing
//!   their **centroid**, and the cell's hull *expands* to cover them — so
//!   cells may overlap, which the filter-by-join strategy tolerates.
//!
//! The [`rtree`] module provides the alternative strategy sketched in §7
//! (bounding polygons over R-tree leaves) and serves the cluster baseline's
//! per-partition index.

//! Live ingestion support: writes stage in a per-dataset [`delta`] store
//! and a background [`compact`] pass folds them into a fresh index
//! generation, leaving in-flight readers on the old one.

pub mod compact;
pub mod delta;
pub mod grid;
pub mod rtree;

pub use compact::{compact, CompactReport};
pub use delta::{DeltaSnapshot, DeltaStore};
pub use grid::{GridCell, GridIndex};
pub use rtree::RTree;
