//! Per-dataset delta store: the in-memory staging buffer of live writes.
//!
//! Inserts and deletes land here (after the WAL made them durable) and
//! are folded into the grid index by [`crate::compact`]. Every entry
//! carries the sequence number the caller assigned (the WAL sequence when
//! a WAL is attached, a local counter otherwise), so compaction can drain
//! exactly the prefix it snapshotted while concurrent writes keep
//! accumulating.
//!
//! Semantics:
//! * insert of an existing id **replaces** it — the staged version wins
//!   over any base-index version, which query merging realizes by masking
//!   base results with the staged id set;
//! * delete stages a tombstone masking the base version; deleting a
//!   staged id also removes the staged version;
//! * the logical dataset is `(base \ mask) ∪ staged` where
//!   `mask = tombstones ∪ staged ids`.

use spade_geometry::{BBox, Geometry};
use std::collections::{BTreeMap, BTreeSet};

/// Approximate in-memory byte cost of a staged geometry — the same
/// "vector format" figure `Dataset::byte_size` uses (16 bytes of header
/// plus 16 per vertex).
fn geom_bytes(g: &Geometry) -> u64 {
    16 + g.num_vertices() as u64 * 16
}

/// Mutable staging buffer of not-yet-compacted writes.
#[derive(Debug, Default)]
pub struct DeltaStore {
    /// id → (seq, geometry) of staged inserts/replacements.
    staged: BTreeMap<u32, (u64, Geometry)>,
    /// id → seq of staged deletes.
    tombstones: BTreeMap<u32, u64>,
    /// Largest sequence number applied so far.
    max_seq: u64,
    /// Approximate bytes held by `staged`.
    bytes: u64,
}

impl DeltaStore {
    pub fn new() -> Self {
        DeltaStore::default()
    }

    /// Stage an insert (or replacement) of `id` under sequence `seq`.
    /// Sequences must be applied in increasing order.
    pub fn insert(&mut self, seq: u64, id: u32, geom: Geometry) {
        self.max_seq = self.max_seq.max(seq);
        // A newer insert supersedes any staged delete of the same id.
        self.tombstones.remove(&id);
        let bytes = geom_bytes(&geom);
        if let Some((_, old)) = self.staged.insert(id, (seq, geom)) {
            self.bytes -= geom_bytes(&old);
        }
        self.bytes += bytes;
    }

    /// Stage a delete of `id` under sequence `seq`.
    pub fn delete(&mut self, seq: u64, id: u32) {
        self.max_seq = self.max_seq.max(seq);
        if let Some((_, old)) = self.staged.remove(&id) {
            self.bytes -= geom_bytes(&old);
        }
        self.tombstones.insert(id, seq);
    }

    /// Number of staged inserts.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Number of staged tombstones.
    pub fn tombstones_len(&self) -> usize {
        self.tombstones.len()
    }

    pub fn is_empty(&self) -> bool {
        self.staged.is_empty() && self.tombstones.is_empty()
    }

    /// Approximate bytes staged (inserts only; tombstones are ~free).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    pub fn max_seq(&self) -> u64 {
        self.max_seq
    }

    /// An immutable, consistent copy of the current delta for readers and
    /// for compaction.
    pub fn snapshot(&self) -> DeltaSnapshot {
        let staged: Vec<(u32, Geometry)> = self
            .staged
            .iter()
            .map(|(id, (_, g))| (*id, g.clone()))
            .collect();
        let mask: BTreeSet<u32> = self
            .staged
            .keys()
            .chain(self.tombstones.keys())
            .copied()
            .collect();
        DeltaSnapshot {
            tombstones: self.tombstones.keys().copied().collect(),
            staged,
            mask,
            max_seq: self.max_seq,
            bytes: self.bytes,
        }
    }

    /// Remove every entry with `seq <= through_seq` — called after
    /// compaction installed the generation those entries were folded
    /// into. Entries staged after the snapshot survive.
    pub fn drain_through(&mut self, through_seq: u64) {
        let mut freed = 0u64;
        self.staged.retain(|_, (seq, g)| {
            if *seq <= through_seq {
                freed += geom_bytes(g);
                false
            } else {
                true
            }
        });
        self.bytes -= freed;
        self.tombstones.retain(|_, seq| *seq > through_seq);
    }
}

/// Immutable view of a delta store at a point in time.
#[derive(Debug, Clone, Default)]
pub struct DeltaSnapshot {
    /// Staged inserts, ascending by id.
    pub staged: Vec<(u32, Geometry)>,
    /// Staged deletes (ids), ascending.
    pub tombstones: BTreeSet<u32>,
    /// Ids masked out of the base index: tombstones ∪ staged ids.
    pub mask: BTreeSet<u32>,
    /// Largest sequence captured — compaction drains through here.
    pub max_seq: u64,
    /// Approximate staged bytes.
    pub bytes: u64,
}

impl DeltaSnapshot {
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty() && self.tombstones.is_empty()
    }

    /// Bounding box over the staged geometries.
    pub fn bbox(&self) -> BBox {
        let mut bb = BBox::empty();
        for (_, g) in &self.staged {
            bb = bb.union(&g.bbox());
        }
        bb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_geometry::Point;

    fn pt(x: f64) -> Geometry {
        Geometry::Point(Point::new(x, 0.0))
    }

    #[test]
    fn insert_delete_replace() {
        let mut d = DeltaStore::new();
        d.insert(1, 10, pt(1.0));
        d.insert(2, 11, pt(2.0));
        d.delete(3, 10);
        assert_eq!(d.staged_len(), 1);
        assert_eq!(d.tombstones_len(), 1);
        // Re-insert clears the tombstone.
        d.insert(4, 10, pt(3.0));
        assert_eq!(d.tombstones_len(), 0);
        assert_eq!(d.staged_len(), 2);
        let snap = d.snapshot();
        assert_eq!(snap.max_seq, 4);
        assert!(snap.mask.contains(&10) && snap.mask.contains(&11));
        assert_eq!(snap.staged.len(), 2);
    }

    #[test]
    fn bytes_track_replacements() {
        let mut d = DeltaStore::new();
        d.insert(1, 5, pt(0.0));
        let one = d.bytes();
        assert_eq!(one, 32); // 16 + 1 vertex * 16
        d.insert(2, 5, pt(9.0)); // replace: no growth
        assert_eq!(d.bytes(), one);
        d.delete(3, 5);
        assert_eq!(d.bytes(), 0);
    }

    #[test]
    fn drain_keeps_newer_entries() {
        let mut d = DeltaStore::new();
        d.insert(1, 1, pt(1.0));
        d.insert(2, 2, pt(2.0));
        d.delete(3, 9);
        let snap = d.snapshot();
        // Writes racing the compaction window.
        d.insert(4, 3, pt(3.0));
        d.delete(5, 2);
        d.drain_through(snap.max_seq);
        assert_eq!(d.staged_len(), 1); // id 3 survives
        assert_eq!(d.tombstones_len(), 1); // delete of id 2 survives
        let after = d.snapshot();
        assert!(after.mask.contains(&3) && after.mask.contains(&2));
        assert!(!after.mask.contains(&1));
    }

    #[test]
    fn snapshot_bbox_covers_staged() {
        let mut d = DeltaStore::new();
        d.insert(1, 1, pt(-5.0));
        d.insert(2, 2, pt(7.0));
        let bb = d.snapshot().bbox();
        assert_eq!(bb.min.x, -5.0);
        assert_eq!(bb.max.x, 7.0);
    }
}
