//! An S2-like in-memory spatial library.
//!
//! The paper's large-memory-server baseline is Google's S2 library with
//! `S2PointIndex` / `S2ShapeIndex` (§6.1). The behavioural properties the
//! evaluation leans on are reproduced here:
//!
//! * a **point index** over hierarchical cells (points sorted by cell id,
//!   queried by recursive cell covering) that is *purpose-built for
//!   distance and kNN queries* — the paper finds S2 fastest on those;
//! * query time that grows with result size (S2's time "is dependent on
//!   the result size", §6.4);
//! * a **shape index** (gridded polygon buckets) for polygon data;
//! * strictly in-memory operation.

use spade_geometry::predicates::{point_in_polygon, polygons_intersect, segments_intersect};
use spade_geometry::{BBox, Point, Polygon, Segment};

/// Maximum subdivision depth of the cell hierarchy.
const MAX_LEVEL: u32 = 14;

/// Interleave the low 16 bits of x and y into a Morton code.
fn morton(x: u32, y: u32) -> u64 {
    fn spread(mut v: u64) -> u64 {
        v &= 0xffff;
        v = (v | (v << 8)) & 0x00ff00ff;
        v = (v | (v << 4)) & 0x0f0f0f0f;
        v = (v | (v << 2)) & 0x33333333;
        v = (v | (v << 1)) & 0x55555555;
        v
    }
    spread(x as u64) | (spread(y as u64) << 1)
}

/// A sorted-cell point index, analogous to `S2PointIndex`.
pub struct PointIndex {
    extent: BBox,
    /// `(cell id at MAX_LEVEL, point id)`, sorted by cell id.
    entries: Vec<(u64, u32)>,
    points: Vec<Point>,
}

impl PointIndex {
    pub fn build(points: Vec<Point>) -> PointIndex {
        let extent = BBox::from_points(points.iter().copied()).inflate(1e-9);
        let mut entries: Vec<(u64, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (cell_of(&extent, *p), i as u32))
            .collect();
        entries.sort_unstable();
        PointIndex {
            extent,
            entries,
            points,
        }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn point(&self, id: u32) -> Point {
        self.points[id as usize]
    }

    /// Ids of points inside the polygon: recursive cell covering with
    /// whole-cell acceptance for cells fully inside.
    pub fn select_polygon(&self, poly: &Polygon) -> Vec<u32> {
        let mut out = Vec::new();
        if self.points.is_empty() {
            return out;
        }
        let edges = poly.boundary_edges();
        let bb = poly.bbox();
        self.visit(
            0,
            0,
            0,
            &mut |cell_box, prefix, level| {
                if !cell_box.intersects(&bb) {
                    return Visit::Prune;
                }
                if box_inside_polygon(&cell_box, poly, &edges) {
                    return Visit::TakeAll;
                }
                if level == MAX_LEVEL {
                    return Visit::TestEach;
                }
                let _ = prefix;
                Visit::Recurse
            },
            &mut |p| point_in_polygon(p, poly),
            &mut out,
        );
        out.sort_unstable();
        out
    }

    /// Ids of points within distance `r` of `q` (the S2 strength: the cell
    /// structure prunes by distance directly).
    pub fn within_distance(&self, q: Point, r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        if self.points.is_empty() {
            return out;
        }
        self.visit(
            0,
            0,
            0,
            &mut |cell_box, _, level| {
                if cell_box.dist_to_point(q) > r {
                    return Visit::Prune;
                }
                if cell_box.max_dist_to_point(q) <= r {
                    return Visit::TakeAll;
                }
                if level == MAX_LEVEL {
                    return Visit::TestEach;
                }
                Visit::Recurse
            },
            &mut |p| p.dist(q) <= r,
            &mut out,
        );
        out.sort_unstable();
        out
    }

    /// The k nearest points to `q`, nearest first: best-first search over
    /// the cell hierarchy.
    pub fn knn(&self, q: Point, k: usize) -> Vec<(u32, f64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        #[derive(PartialEq)]
        struct Cand {
            dist: f64,
            prefix: u64,
            level: u32,
            /// point id when this is a leaf point, else u32::MAX
            point: u32,
        }
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.dist
                    .partial_cmp(&o.dist)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }
        let mut heap = BinaryHeap::new();
        let mut out = Vec::new();
        if self.points.is_empty() || k == 0 {
            return out;
        }
        heap.push(Reverse(Cand {
            dist: 0.0,
            prefix: 0,
            level: 0,
            point: u32::MAX,
        }));
        while let Some(Reverse(c)) = heap.pop() {
            if c.point != u32::MAX {
                out.push((c.point, c.dist));
                if out.len() == k {
                    break;
                }
                continue;
            }
            if c.level == MAX_LEVEL {
                let (lo, hi) = self.range(c.prefix, c.level);
                for &(_, id) in &self.entries[lo..hi] {
                    let d = self.points[id as usize].dist(q);
                    heap.push(Reverse(Cand {
                        dist: d,
                        prefix: 0,
                        level: 0,
                        point: id,
                    }));
                }
                continue;
            }
            for child in 0..4u64 {
                let prefix = (c.prefix << 2) | child;
                let level = c.level + 1;
                let (lo, hi) = self.range(prefix, level);
                if lo == hi {
                    continue;
                }
                let cb = cell_box(&self.extent, prefix, level);
                heap.push(Reverse(Cand {
                    dist: cb.dist_to_point(q),
                    prefix,
                    level,
                    point: u32::MAX,
                }));
            }
        }
        out
    }

    /// Entry range of a cell prefix at a level (binary search on the
    /// sorted cell ids).
    fn range(&self, prefix: u64, level: u32) -> (usize, usize) {
        let shift = 2 * (MAX_LEVEL - level);
        let lo_id = prefix << shift;
        let hi_id = (prefix + 1) << shift;
        let lo = self.entries.partition_point(|(c, _)| *c < lo_id);
        let hi = self.entries.partition_point(|(c, _)| *c < hi_id);
        (lo, hi)
    }

    fn visit(
        &self,
        prefix: u64,
        level: u32,
        _depth: u32,
        classify: &mut impl FnMut(BBox, u64, u32) -> Visit,
        test: &mut impl FnMut(Point) -> bool,
        out: &mut Vec<u32>,
    ) {
        let (lo, hi) = self.range(prefix, level);
        if lo == hi {
            return;
        }
        let cb = cell_box(&self.extent, prefix, level);
        match classify(cb, prefix, level) {
            Visit::Prune => {}
            Visit::TakeAll => out.extend(self.entries[lo..hi].iter().map(|(_, id)| *id)),
            Visit::TestEach => {
                for &(_, id) in &self.entries[lo..hi] {
                    if test(self.points[id as usize]) {
                        out.push(id);
                    }
                }
            }
            Visit::Recurse => {
                for child in 0..4u64 {
                    self.visit((prefix << 2) | child, level + 1, 0, classify, test, out);
                }
            }
        }
    }
}

enum Visit {
    Prune,
    TakeAll,
    TestEach,
    Recurse,
}

fn cell_of(extent: &BBox, p: Point) -> u64 {
    let n = 1u32 << MAX_LEVEL;
    let fx = ((p.x - extent.min.x) / extent.width()).clamp(0.0, 1.0);
    let fy = ((p.y - extent.min.y) / extent.height()).clamp(0.0, 1.0);
    let x = ((fx * n as f64) as u32).min(n - 1);
    let y = ((fy * n as f64) as u32).min(n - 1);
    morton(x, y)
}

fn cell_box(extent: &BBox, prefix: u64, level: u32) -> BBox {
    // Decode the Morton prefix back to cell coordinates at `level`.
    let mut x = 0u32;
    let mut y = 0u32;
    for i in 0..level {
        let shift = 2 * (level - 1 - i);
        let bits = (prefix >> shift) & 3;
        x = (x << 1) | (bits & 1) as u32;
        y = (y << 1) | ((bits >> 1) & 1) as u32;
    }
    let n = (1u64 << level) as f64;
    let w = extent.width() / n;
    let h = extent.height() / n;
    let min = Point::new(extent.min.x + x as f64 * w, extent.min.y + y as f64 * h);
    BBox::new(min, min + Point::new(w, h))
}

fn box_inside_polygon(b: &BBox, poly: &Polygon, edges: &[Segment]) -> bool {
    if !poly.bbox().contains_box(b) {
        return false;
    }
    // All corners inside and no boundary edge crossing the box.
    if !b.corners().iter().all(|&c| point_in_polygon(c, poly)) {
        return false;
    }
    let box_edges: Vec<Segment> = {
        let c = b.corners();
        (0..4).map(|i| Segment::new(c[i], c[(i + 1) % 4])).collect()
    };
    !edges
        .iter()
        .any(|e| e.bbox().intersects(b) && box_edges.iter().any(|be| segments_intersect(*e, *be)))
}

/// A gridded polygon index, analogous to `S2ShapeIndex`.
pub struct ShapeIndex {
    polygons: Vec<Polygon>,
    grid: Vec<Vec<u32>>,
    extent: BBox,
    nx: u32,
    ny: u32,
}

impl ShapeIndex {
    pub fn build(polygons: Vec<Polygon>, cells_per_axis: u32) -> ShapeIndex {
        let mut extent = BBox::empty();
        for p in &polygons {
            extent = extent.union(&p.bbox());
        }
        let extent = extent.inflate(1e-9);
        let nx = cells_per_axis.max(1);
        let ny = cells_per_axis.max(1);
        let mut grid = vec![Vec::new(); (nx * ny) as usize];
        for (i, p) in polygons.iter().enumerate() {
            let bb = p.bbox();
            for (cx, cy) in cover(&extent, nx, ny, &bb) {
                grid[(cy * nx + cx) as usize].push(i as u32);
            }
        }
        ShapeIndex {
            polygons,
            grid,
            extent,
            nx,
            ny,
        }
    }

    pub fn len(&self) -> usize {
        self.polygons.len()
    }

    pub fn is_empty(&self) -> bool {
        self.polygons.is_empty()
    }

    /// Polygons containing the point.
    pub fn containing(&self, p: Point) -> Vec<u32> {
        if !self.extent.contains(p) {
            return Vec::new();
        }
        let cx = (((p.x - self.extent.min.x) / self.extent.width() * self.nx as f64) as u32)
            .min(self.nx - 1);
        let cy = (((p.y - self.extent.min.y) / self.extent.height() * self.ny as f64) as u32)
            .min(self.ny - 1);
        let mut out: Vec<u32> = self.grid[(cy * self.nx + cx) as usize]
            .iter()
            .copied()
            .filter(|&i| point_in_polygon(p, &self.polygons[i as usize]))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Polygons intersecting the constraint polygon.
    pub fn intersecting(&self, constraint: &Polygon) -> Vec<u32> {
        let bb = constraint.bbox();
        let mut cands = Vec::new();
        for (cx, cy) in cover(&self.extent, self.nx, self.ny, &bb) {
            cands.extend(self.grid[(cy * self.nx + cx) as usize].iter().copied());
        }
        cands.sort_unstable();
        cands.dedup();
        cands
            .into_iter()
            .filter(|&i| polygons_intersect(&self.polygons[i as usize], constraint))
            .collect()
    }
}

fn cover(extent: &BBox, nx: u32, ny: u32, bb: &BBox) -> Vec<(u32, u32)> {
    let Some(clipped) = bb.intersection(extent) else {
        return Vec::new();
    };
    let fx0 = ((clipped.min.x - extent.min.x) / extent.width() * nx as f64) as u32;
    let fx1 = (((clipped.max.x - extent.min.x) / extent.width() * nx as f64) as u32).min(nx - 1);
    let fy0 = ((clipped.min.y - extent.min.y) / extent.height() * ny as f64) as u32;
    let fy1 = (((clipped.max.y - extent.min.y) / extent.height() * ny as f64) as u32).min(ny - 1);
    let mut out = Vec::new();
    for cy in fy0..=fy1 {
        for cx in fx0..=fx1 {
            out.push((cx, cy));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    fn scatter(n: usize, extent: f64, seed: u64) -> Vec<Point> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 1_000_000) as f64 / 1_000_000.0 * extent;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 1_000_000) as f64 / 1_000_000.0 * extent;
                Point::new(x, y)
            })
            .collect()
    }

    #[test]
    fn polygon_select_matches_brute() {
        let pts = scatter(3000, 100.0, 1);
        let idx = PointIndex::build(pts.clone());
        for poly in [
            Polygon::circle(Point::new(50.0, 50.0), 20.0, 8),
            Polygon::rect(BBox::new(Point::new(10.0, 10.0), Point::new(35.0, 70.0))),
            Polygon::circle(Point::new(95.0, 95.0), 3.0, 6),
        ] {
            let got = idx.select_polygon(&poly);
            assert_eq!(got, brute::select_points(&pts, &poly), "{poly:?}");
        }
    }

    #[test]
    fn within_distance_matches_brute() {
        let pts = scatter(2500, 100.0, 3);
        let idx = PointIndex::build(pts.clone());
        let q = Point::new(40.0, 60.0);
        for r in [1.0, 8.0, 30.0] {
            let got = idx.within_distance(q, r);
            let want: Vec<u32> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist(q) <= r)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want, "r={r}");
        }
    }

    #[test]
    fn knn_matches_brute() {
        let pts = scatter(2000, 100.0, 5);
        let idx = PointIndex::build(pts.clone());
        let q = Point::new(73.0, 21.0);
        for k in [1, 10, 50] {
            let got = idx.knn(q, k);
            let want = brute::knn(&pts, q, k);
            assert_eq!(got.len(), k);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-12, "k={k}");
            }
            // Sorted ascending.
            assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn knn_more_than_available() {
        let pts = scatter(5, 10.0, 7);
        let idx = PointIndex::build(pts);
        assert_eq!(idx.knn(Point::ZERO, 20).len(), 5);
        assert!(idx.knn(Point::ZERO, 0).is_empty());
    }

    #[test]
    fn empty_index() {
        let idx = PointIndex::build(vec![]);
        assert!(idx.is_empty());
        assert!(idx
            .select_polygon(&Polygon::circle(Point::ZERO, 1.0, 6))
            .is_empty());
        assert!(idx.within_distance(Point::ZERO, 10.0).is_empty());
        assert!(idx.knn(Point::ZERO, 3).is_empty());
    }

    #[test]
    fn shape_index_containing() {
        let polys: Vec<Polygon> = (0..16)
            .map(|i| {
                let min = Point::new((i % 4) as f64 * 10.0, (i / 4) as f64 * 10.0);
                Polygon::rect(BBox::new(min, min + Point::new(9.0, 9.0)))
            })
            .collect();
        let idx = ShapeIndex::build(polys.clone(), 8);
        assert_eq!(idx.containing(Point::new(5.0, 5.0)), vec![0]);
        assert_eq!(idx.containing(Point::new(15.0, 25.0)), vec![9]);
        assert!(idx.containing(Point::new(9.5, 9.5)).is_empty());
        assert!(idx.containing(Point::new(-5.0, -5.0)).is_empty());
    }

    #[test]
    fn shape_index_intersecting_matches_brute() {
        let polys: Vec<Polygon> = (0..25)
            .map(|i| {
                let min = Point::new((i % 5) as f64 * 8.0, (i / 5) as f64 * 8.0);
                Polygon::rect(BBox::new(min, min + Point::new(6.0, 6.0)))
            })
            .collect();
        let idx = ShapeIndex::build(polys.clone(), 6);
        let c = Polygon::circle(Point::new(20.0, 20.0), 9.0, 10);
        assert_eq!(idx.intersecting(&c), brute::select_polygons(&polys, &c));
    }

    #[test]
    fn morton_roundtrip_via_cell_box() {
        let extent = BBox::new(Point::ZERO, Point::new(100.0, 100.0));
        let p = Point::new(33.0, 77.0);
        let cell = cell_of(&extent, p);
        // Walk the prefix down to MAX_LEVEL and check containment.
        let cb = cell_box(&extent, cell, MAX_LEVEL);
        assert!(cb.contains(p), "{cb:?} does not contain {p:?}");
    }
}
