//! Baseline spatial engines the paper compares SPADE against (§6.1).
//!
//! Three comparison classes, each reproduced with the algorithmic behaviour
//! the paper analyzes (see DESIGN.md for the substitution arguments):
//!
//! * [`s2like`] — an in-memory CPU spatial library patterned on Google S2:
//!   a sorted hierarchical-cell point index (distance/kNN-optimized, like
//!   `S2PointIndex`) and a gridded shape index (`S2ShapeIndex`).
//! * [`stig`] — the STIG baseline: a kd-tree with leaf blocks over point
//!   data, filtering on the tree and refining with parallel exact
//!   point-in-polygon tests. Point data only, like the original.
//! * [`cluster`] — a GeoSpark-like partitioned engine: KDB-style spatial
//!   partitioning, one R-tree per partition, filter-refine workers, and a
//!   configurable per-task overhead modeling cluster coordination.
//! * [`brute`] — brute-force oracles shared by tests and benches.

pub mod brute;
pub mod cluster;
pub mod s2like;
pub mod stig;
