//! A GeoSpark-like partitioned ("cluster") engine.
//!
//! The paper's cluster baseline is GeoSpark on 17 nodes, tuned per query:
//! KDB-tree partitioning for points, quadtree for polygons, an R-tree per
//! partition (§6.1). The properties the evaluation analyzes are kept:
//!
//! * filter-refine with per-partition R-trees and exact geometry tests —
//!   so query time scales with the number of point-in-polygon tests after
//!   filtering, i.e. with *per-polygon selectivity* (§6.3's explanation of
//!   the counties-vs-zipcodes inversion);
//! * partition-parallel execution with a configurable per-task overhead
//!   standing in for cluster coordination (why small queries pay a floor
//!   of seconds in Fig. 5);
//! * distance joins computed on *centroids* for non-point geometry, the
//!   approximation the paper calls GeoSpark out on (§4.2) — points are
//!   exact.

use spade_geometry::predicates::{point_in_polygon, polygons_intersect};
use spade_geometry::{BBox, Point, Polygon};
use spade_index::RTree;
use std::time::Duration;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of spatial partitions (the paper sweeps 4 … 128K and picks
    /// the best; benches expose this knob).
    pub partitions: usize,
    /// Simulated executor threads.
    pub workers: usize,
    /// Fixed coordination overhead charged per partition task.
    pub task_overhead: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            partitions: 16,
            workers: 8,
            task_overhead: Duration::from_micros(200),
        }
    }
}

/// A partition of a point RDD.
struct PointPartition {
    bbox: BBox,
    points: Vec<(u32, Point)>,
    rtree: RTree,
}

/// A partitioned point data set (a `SpatialRDD<Point>`).
pub struct PointRdd {
    partitions: Vec<PointPartition>,
    config: ClusterConfig,
}

impl PointRdd {
    /// KDB-style partitioning: recursive median splits on alternating axes
    /// until the target partition count is reached.
    pub fn build(points: Vec<Point>, config: ClusterConfig) -> PointRdd {
        let mut pts: Vec<(u32, Point)> = points
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect();
        let mut parts: Vec<Vec<(u32, Point)>> = Vec::new();
        kdb_split(&mut pts, config.partitions.max(1), 0, &mut parts);
        let partitions = parts
            .into_iter()
            .filter(|p| !p.is_empty())
            .map(|points| {
                let bbox = BBox::from_points(points.iter().map(|(_, p)| *p));
                let rtree = RTree::build(
                    points
                        .iter()
                        .map(|(id, p)| (*id, BBox::new(*p, *p)))
                        .collect(),
                );
                PointPartition {
                    bbox,
                    points,
                    rtree,
                }
            })
            .collect();
        PointRdd { partitions, config }
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Polygonal selection: partition-parallel filter (R-tree) + refine
    /// (exact point-in-polygon).
    pub fn select_polygon(&self, poly: &Polygon) -> Vec<u32> {
        let bb = poly.bbox();
        let tasks: Vec<&PointPartition> = self
            .partitions
            .iter()
            .filter(|p| p.bbox.intersects(&bb))
            .collect();
        let results = run_tasks(&self.config, tasks.len(), |i| {
            let part = tasks[i];
            let mut local = Vec::new();
            for id in part.rtree.query(&bb) {
                let p = point_of(part, id);
                if point_in_polygon(p, poly) {
                    local.push(id);
                }
            }
            local
        });
        let mut out: Vec<u32> = results.into_iter().flatten().collect();
        out.sort_unstable();
        out
    }

    /// Join with a polygon RDD: for each polygon, R-tree filter on every
    /// overlapping point partition, then exact refinement.
    pub fn join_polygons(&self, polys: &PolygonRdd) -> Vec<(u32, u32)> {
        // Task = (point partition, polygon partition) with overlapping
        // extents — GeoSpark's partition-matching join.
        let mut tasks = Vec::new();
        for (pi, pp) in self.partitions.iter().enumerate() {
            for (qi, qp) in polys.partitions.iter().enumerate() {
                if pp.bbox.intersects(&qp.bbox) {
                    tasks.push((pi, qi));
                }
            }
        }
        let results = run_tasks(&self.config, tasks.len(), |t| {
            let (pi, qi) = tasks[t];
            let part = &self.partitions[pi];
            let mut local = Vec::new();
            for &(poly_id, ref poly) in &polys.partitions[qi].polygons {
                let bb = poly.bbox();
                for id in part.rtree.query(&bb) {
                    let p = point_of(part, id);
                    if point_in_polygon(p, poly) {
                        local.push((poly_id, id));
                    }
                }
            }
            local
        });
        let mut out: Vec<(u32, u32)> = results.into_iter().flatten().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Distance join with another point RDD (exact for points).
    pub fn distance_join(&self, other: &PointRdd, r: f64) -> Vec<(u32, u32)> {
        let mut tasks = Vec::new();
        for (pi, pp) in other.partitions.iter().enumerate() {
            for (qi, qp) in self.partitions.iter().enumerate() {
                if pp.bbox.inflate(r).intersects(&qp.bbox) {
                    tasks.push((pi, qi));
                }
            }
        }
        let results = run_tasks(&self.config, tasks.len(), |t| {
            let (pi, qi) = tasks[t];
            let left = &other.partitions[pi];
            let right = &self.partitions[qi];
            let mut local = Vec::new();
            for &(lid, lp) in &left.points {
                let probe = BBox::new(lp, lp).inflate(r);
                for rid in right.rtree.query(&probe) {
                    let rp = point_of(right, rid);
                    if lp.dist(rp) <= r {
                        local.push((lid, rid));
                    }
                }
            }
            local
        });
        let mut out: Vec<(u32, u32)> = results.into_iter().flatten().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// kNN selection: per-partition best-first search, merged.
    pub fn knn(&self, q: Point, k: usize) -> Vec<(u32, f64)> {
        let results = run_tasks(&self.config, self.partitions.len(), |i| {
            let part = &self.partitions[i];
            let mut local = Vec::new();
            part.rtree.nearest_first(q, |id, _| {
                let d = point_of(part, id).dist(q);
                local.push((id, d));
                local.len() < k
            });
            local
        });
        let mut all: Vec<(u32, f64)> = results.into_iter().flatten().collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        all.truncate(k);
        all
    }
}

fn point_of(part: &PointPartition, id: u32) -> Point {
    // Partition point lists are small; an id-keyed lookup table would be
    // the production choice, but partitions keep points sorted by id after
    // the split, so binary search suffices.
    match part.points.binary_search_by_key(&id, |(i, _)| *i) {
        Ok(i) => part.points[i].1,
        Err(_) => {
            part.points
                .iter()
                .find(|(i, _)| *i == id)
                .expect("id in partition")
                .1
        }
    }
}

/// A partition of a polygon RDD.
struct PolygonPartition {
    bbox: BBox,
    polygons: Vec<(u32, Polygon)>,
}

/// A partitioned polygon data set (quadtree partitioning, as the paper
/// tuned for polygonal data).
pub struct PolygonRdd {
    partitions: Vec<PolygonPartition>,
    config: ClusterConfig,
}

impl PolygonRdd {
    pub fn build(polygons: Vec<Polygon>, config: ClusterConfig) -> PolygonRdd {
        let items: Vec<(u32, Polygon)> = polygons
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect();
        let mut extent = BBox::empty();
        for (_, p) in &items {
            extent = extent.union(&p.bbox());
        }
        let mut parts: Vec<Vec<(u32, Polygon)>> = Vec::new();
        quad_split(items, extent, config.partitions.max(1), &mut parts);
        let partitions = parts
            .into_iter()
            .filter(|p| !p.is_empty())
            .map(|polygons| {
                let mut bbox = BBox::empty();
                for (_, p) in &polygons {
                    bbox = bbox.union(&p.bbox());
                }
                PolygonPartition { bbox, polygons }
            })
            .collect();
        PolygonRdd { partitions, config }
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Polygonal selection over polygon data.
    pub fn select_polygon(&self, constraint: &Polygon) -> Vec<u32> {
        let bb = constraint.bbox();
        let tasks: Vec<&PolygonPartition> = self
            .partitions
            .iter()
            .filter(|p| p.bbox.intersects(&bb))
            .collect();
        let results = run_tasks(&self.config, tasks.len(), |i| {
            tasks[i]
                .polygons
                .iter()
                .filter(|(_, p)| p.bbox().intersects(&bb) && polygons_intersect(p, constraint))
                .map(|(id, _)| *id)
                .collect::<Vec<_>>()
        });
        let mut out: Vec<u32> = results.into_iter().flatten().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Polygon-polygon join with another polygon RDD.
    pub fn join(&self, other: &PolygonRdd) -> Vec<(u32, u32)> {
        let mut tasks = Vec::new();
        for (pi, pp) in self.partitions.iter().enumerate() {
            for (qi, qp) in other.partitions.iter().enumerate() {
                if pp.bbox.intersects(&qp.bbox) {
                    tasks.push((pi, qi));
                }
            }
        }
        let results = run_tasks(&self.config, tasks.len(), |t| {
            let (pi, qi) = tasks[t];
            let mut local = Vec::new();
            for (a, pa) in &self.partitions[pi].polygons {
                for (b, pb) in &other.partitions[qi].polygons {
                    if pa.bbox().intersects(&pb.bbox()) && polygons_intersect(pa, pb) {
                        local.push((*a, *b));
                    }
                }
            }
            local
        });
        let mut out: Vec<(u32, u32)> = results.into_iter().flatten().collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Run `n` partition tasks across the configured workers, charging the
/// per-task coordination overhead.
fn run_tasks<R: Send>(config: &ClusterConfig, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if n == 0 {
        return Vec::new();
    }
    let workers = config.workers.clamp(1, n);
    let overhead = config.task_overhead;
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let results = std::sync::Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            let results = &results;
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if !overhead.is_zero() {
                    std::thread::sleep(overhead);
                }
                let r = f(i);
                results.lock().unwrap().push((i, r));
            });
        }
    });
    let mut v = results.into_inner().unwrap();
    v.sort_by_key(|(i, _)| *i);
    v.into_iter().map(|(_, r)| r).collect()
}

fn kdb_split(
    pts: &mut Vec<(u32, Point)>,
    target: usize,
    depth: usize,
    out: &mut Vec<Vec<(u32, Point)>>,
) {
    if target <= 1 || pts.len() <= 1 {
        out.push(std::mem::take(pts));
        return;
    }
    let mid = pts.len() / 2;
    if depth.is_multiple_of(2) {
        pts.select_nth_unstable_by(mid, |a, b| {
            a.1.x
                .partial_cmp(&b.1.x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    } else {
        pts.select_nth_unstable_by(mid, |a, b| {
            a.1.y
                .partial_cmp(&b.1.y)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
    let mut right: Vec<(u32, Point)> = pts.split_off(mid);
    kdb_split(pts, target / 2, depth + 1, out);
    kdb_split(&mut right, target - target / 2, depth + 1, out);
}

fn quad_split(
    items: Vec<(u32, Polygon)>,
    extent: BBox,
    target: usize,
    out: &mut Vec<Vec<(u32, Polygon)>>,
) {
    if target <= 1 || items.len() <= 1 || extent.is_empty() {
        out.push(items);
        return;
    }
    let c = extent.center();
    let mut quads: [Vec<(u32, Polygon)>; 4] = Default::default();
    for (id, p) in items {
        let pc = p.centroid();
        let qi = (usize::from(pc.x > c.x)) | (usize::from(pc.y > c.y) << 1);
        quads[qi].push((id, p));
    }
    let boxes = [
        BBox::new(extent.min, c),
        BBox::new(Point::new(c.x, extent.min.y), Point::new(extent.max.x, c.y)),
        BBox::new(Point::new(extent.min.x, c.y), Point::new(c.x, extent.max.y)),
        BBox::new(c, extent.max),
    ];
    for (quad, bb) in quads.into_iter().zip(boxes) {
        quad_split(quad, bb, target / 4, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    fn cfg() -> ClusterConfig {
        ClusterConfig {
            partitions: 8,
            workers: 4,
            task_overhead: Duration::ZERO,
        }
    }

    fn scatter(n: usize, extent: f64, seed: u64) -> Vec<Point> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 1_000_000) as f64 / 1_000_000.0 * extent;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 1_000_000) as f64 / 1_000_000.0 * extent;
                Point::new(x, y)
            })
            .collect()
    }

    fn tiles() -> Vec<Polygon> {
        (0..16)
            .map(|i| {
                let min = Point::new((i % 4) as f64 * 25.0, (i / 4) as f64 * 25.0);
                Polygon::rect(BBox::new(min, min + Point::new(23.0, 23.0)))
            })
            .collect()
    }

    #[test]
    fn point_selection_matches_brute() {
        let pts = scatter(3000, 100.0, 23);
        let rdd = PointRdd::build(pts.clone(), cfg());
        assert!(rdd.num_partitions() > 1);
        let poly = Polygon::circle(Point::new(40.0, 40.0), 22.0, 10);
        assert_eq!(rdd.select_polygon(&poly), brute::select_points(&pts, &poly));
    }

    #[test]
    fn point_polygon_join_matches_brute() {
        let pts = scatter(1500, 100.0, 29);
        let polys = tiles();
        let prdd = PointRdd::build(pts.clone(), cfg());
        let grdd = PolygonRdd::build(polys.clone(), cfg());
        let got = prdd.join_polygons(&grdd);
        let mut want = brute::join_polygon_point(&polys, &pts);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn polygon_join_matches_brute() {
        let a = tiles();
        let b: Vec<Polygon> = (0..9)
            .map(|i| {
                let min = Point::new((i % 3) as f64 * 30.0 + 5.0, (i / 3) as f64 * 30.0 + 5.0);
                Polygon::rect(BBox::new(min, min + Point::new(25.0, 25.0)))
            })
            .collect();
        let ra = PolygonRdd::build(a.clone(), cfg());
        let rb = PolygonRdd::build(b.clone(), cfg());
        let got = ra.join(&rb);
        let mut want = brute::join_polygon_polygon(&a, &b);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn distance_join_matches_brute() {
        let left = scatter(100, 100.0, 31);
        let right = scatter(800, 100.0, 37);
        let rl = PointRdd::build(left.clone(), cfg());
        let rr = PointRdd::build(right.clone(), cfg());
        let got = rr.distance_join(&rl, 5.0); // self = right side indexed
        let mut want = brute::distance_join(&left, &right, 5.0);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn knn_matches_brute() {
        let pts = scatter(2000, 100.0, 41);
        let rdd = PointRdd::build(pts.clone(), cfg());
        let q = Point::new(33.0, 66.0);
        for k in [1, 7, 25] {
            let got = rdd.knn(q, k);
            let want = brute::knn(&pts, q, k);
            assert_eq!(got.len(), k);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn polygon_selection_matches_brute() {
        let polys = tiles();
        let rdd = PolygonRdd::build(polys.clone(), cfg());
        let c = Polygon::circle(Point::new(50.0, 50.0), 30.0, 8);
        assert_eq!(rdd.select_polygon(&c), brute::select_polygons(&polys, &c));
    }

    #[test]
    fn task_overhead_slows_queries() {
        let pts = scatter(500, 100.0, 43);
        let fast = PointRdd::build(pts.clone(), cfg());
        let slow = PointRdd::build(
            pts,
            ClusterConfig {
                task_overhead: Duration::from_millis(5),
                workers: 1,
                partitions: 8,
            },
        );
        let poly = Polygon::circle(Point::new(50.0, 50.0), 45.0, 8);
        let t0 = std::time::Instant::now();
        let a = fast.select_polygon(&poly);
        let t_fast = t0.elapsed();
        let t0 = std::time::Instant::now();
        let b = slow.select_polygon(&poly);
        let t_slow = t0.elapsed();
        assert_eq!(a, b);
        assert!(t_slow > t_fast);
    }

    #[test]
    fn empty_rdds() {
        let rdd = PointRdd::build(vec![], cfg());
        assert_eq!(rdd.num_partitions(), 0);
        assert!(rdd
            .select_polygon(&Polygon::circle(Point::ZERO, 1.0, 6))
            .is_empty());
        assert!(rdd.knn(Point::ZERO, 5).is_empty());
    }
}
