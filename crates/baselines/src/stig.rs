//! The STIG baseline: a kd-tree over point data with leaf blocks.
//!
//! Doraiswamy et al.'s STIG \[12\] is the paper's specialized-GPU reference:
//! a kd-tree whose *index filtering* is very tight (small leaf blocks), so
//! low-selectivity point selections move little data and run few
//! point-in-polygon tests — which is why STIG beats SPADE on sub-100 ms
//! queries in Fig. 5 while supporting only point data. This reproduction
//! keeps the structure (median-split kd-tree, leaf blocks, parallel
//! refinement of the gathered leaves).

use spade_geometry::predicates::point_in_polygon;
use spade_geometry::{BBox, Point, Polygon};

enum Node {
    Leaf {
        bbox: BBox,
        /// Range into the reordered point array (the "leaf block").
        range: std::ops::Range<usize>,
    },
    Split {
        bbox: BBox,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn bbox(&self) -> &BBox {
        match self {
            Node::Leaf { bbox, .. } | Node::Split { bbox, .. } => bbox,
        }
    }
}

/// The STIG index.
pub struct Stig {
    root: Option<Node>,
    /// Points reordered into leaf-contiguous blocks.
    points: Vec<(u32, Point)>,
    pub leaf_size: usize,
}

impl Stig {
    /// Build with the given leaf block size (the paper tuned STIG to 4096).
    pub fn build(points: Vec<Point>, leaf_size: usize) -> Stig {
        let leaf_size = leaf_size.max(1);
        let mut pts: Vec<(u32, Point)> = points
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect();
        let n = pts.len();
        let root = if n == 0 {
            None
        } else {
            Some(build_node(&mut pts, 0, n, 0, leaf_size))
        };
        Stig {
            root,
            points: pts,
            leaf_size,
        }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Polygonal selection: gather leaf blocks intersecting the constraint
    /// bbox (index filtering), then refine with parallel exact tests.
    pub fn select_polygon(&self, poly: &Polygon, workers: usize) -> Vec<u32> {
        let Some(root) = &self.root else {
            return Vec::new();
        };
        let bb = poly.bbox();
        let mut blocks: Vec<std::ops::Range<usize>> = Vec::new();
        gather(root, &bb, &mut blocks);
        // Parallel refinement over the gathered blocks.
        let workers = workers.clamp(1, blocks.len().max(1));
        let results = std::sync::Mutex::new(Vec::new());
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                let cursor = &cursor;
                let blocks = &blocks;
                let results = &results;
                let points = &self.points;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= blocks.len() {
                            break;
                        }
                        for &(id, p) in &points[blocks[i].clone()] {
                            if bb.contains(p) && point_in_polygon(p, poly) {
                                local.push(id);
                            }
                        }
                    }
                    results.lock().unwrap().extend(local);
                });
            }
        });
        let mut out = results.into_inner().unwrap();
        out.sort_unstable();
        out
    }

    /// Number of leaf blocks the filter stage returns for a bbox — the
    /// "data touched" metric the paper's analysis of STIG relies on.
    pub fn blocks_touched(&self, bb: &BBox) -> usize {
        let Some(root) = &self.root else {
            return 0;
        };
        let mut blocks = Vec::new();
        gather(root, bb, &mut blocks);
        blocks.len()
    }
}

fn build_node(
    pts: &mut [(u32, Point)],
    lo: usize,
    hi: usize,
    depth: usize,
    leaf_size: usize,
) -> Node {
    let slice = &mut pts[lo..hi];
    let bbox = BBox::from_points(slice.iter().map(|(_, p)| *p));
    if slice.len() <= leaf_size {
        return Node::Leaf {
            bbox,
            range: lo..hi,
        };
    }
    let mid = slice.len() / 2;
    if depth.is_multiple_of(2) {
        slice.select_nth_unstable_by(mid, |a, b| {
            a.1.x
                .partial_cmp(&b.1.x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    } else {
        slice.select_nth_unstable_by(mid, |a, b| {
            a.1.y
                .partial_cmp(&b.1.y)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
    let left = build_node(pts, lo, lo + mid, depth + 1, leaf_size);
    let right = build_node(pts, lo + mid, hi, depth + 1, leaf_size);
    Node::Split {
        bbox,
        left: Box::new(left),
        right: Box::new(right),
    }
}

fn gather(node: &Node, bb: &BBox, out: &mut Vec<std::ops::Range<usize>>) {
    if !node.bbox().intersects(bb) {
        return;
    }
    match node {
        Node::Leaf { range, .. } => out.push(range.clone()),
        Node::Split { left, right, .. } => {
            gather(left, bb, out);
            gather(right, bb, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    fn scatter(n: usize, extent: f64, seed: u64) -> Vec<Point> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 1_000_000) as f64 / 1_000_000.0 * extent;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 1_000_000) as f64 / 1_000_000.0 * extent;
                Point::new(x, y)
            })
            .collect()
    }

    #[test]
    fn selection_matches_brute() {
        let pts = scatter(4000, 100.0, 17);
        let stig = Stig::build(pts.clone(), 64);
        for poly in [
            Polygon::circle(Point::new(30.0, 70.0), 15.0, 12),
            Polygon::rect(BBox::new(Point::new(60.0, 5.0), Point::new(90.0, 45.0))),
        ] {
            assert_eq!(
                stig.select_polygon(&poly, 4),
                brute::select_points(&pts, &poly)
            );
        }
    }

    #[test]
    fn small_leaf_prunes_more() {
        let pts = scatter(4000, 100.0, 19);
        let fine = Stig::build(pts.clone(), 16);
        let coarse = Stig::build(pts, 1024);
        let bb = BBox::new(Point::new(10.0, 10.0), Point::new(20.0, 20.0));
        // Finer leaves: more blocks but far fewer points touched overall.
        assert!(fine.blocks_touched(&bb) >= coarse.blocks_touched(&bb));
        let fine_pts: usize = fine.blocks_touched(&bb) * fine.leaf_size;
        let coarse_pts: usize = coarse.blocks_touched(&bb) * coarse.leaf_size;
        assert!(fine_pts < coarse_pts);
    }

    #[test]
    fn empty_and_single() {
        let stig = Stig::build(vec![], 64);
        assert!(stig.is_empty());
        assert!(stig
            .select_polygon(&Polygon::circle(Point::ZERO, 1.0, 6), 2)
            .is_empty());
        let one = Stig::build(vec![Point::new(1.0, 1.0)], 64);
        assert_eq!(
            one.select_polygon(&Polygon::circle(Point::new(1.0, 1.0), 1.0, 8), 2),
            vec![0]
        );
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![Point::new(5.0, 5.0); 100];
        let stig = Stig::build(pts, 8);
        let hit = stig.select_polygon(&Polygon::circle(Point::new(5.0, 5.0), 1.0, 8), 2);
        assert_eq!(hit.len(), 100);
    }
}
