//! Brute-force oracles: the ground truth every engine is tested against.

use spade_geometry::distance::point_polygon_distance;
use spade_geometry::predicates::{point_in_polygon, polygons_intersect};
use spade_geometry::{Point, Polygon};

/// Ids of points inside the polygon (boundary inclusive).
pub fn select_points(points: &[Point], poly: &Polygon) -> Vec<u32> {
    let bb = poly.bbox();
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| bb.contains(**p) && point_in_polygon(**p, poly))
        .map(|(i, _)| i as u32)
        .collect()
}

/// Ids of polygons intersecting the constraint polygon.
pub fn select_polygons(polys: &[Polygon], constraint: &Polygon) -> Vec<u32> {
    polys
        .iter()
        .enumerate()
        .filter(|(_, p)| polygons_intersect(p, constraint))
        .map(|(i, _)| i as u32)
        .collect()
}

/// All `(polygon index, point index)` containment pairs.
pub fn join_polygon_point(polys: &[Polygon], points: &[Point]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (i, poly) in polys.iter().enumerate() {
        let bb = poly.bbox();
        for (j, p) in points.iter().enumerate() {
            if bb.contains(*p) && point_in_polygon(*p, poly) {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// All intersecting `(left index, right index)` polygon pairs.
pub fn join_polygon_polygon(a: &[Polygon], b: &[Polygon]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (i, pa) in a.iter().enumerate() {
        for (j, pb) in b.iter().enumerate() {
            if polygons_intersect(pa, pb) {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// All `(left, right)` point pairs within distance `r`.
pub fn distance_join(left: &[Point], right: &[Point], r: f64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (i, a) in left.iter().enumerate() {
        for (j, b) in right.iter().enumerate() {
            if a.dist(*b) <= r {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// The k nearest points to `q`, nearest first.
pub fn knn(points: &[Point], q: Point, k: usize) -> Vec<(u32, f64)> {
    let mut all: Vec<(u32, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (i as u32, p.dist(q)))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    all.truncate(k);
    all
}

/// Point count per polygon.
pub fn aggregate(polys: &[Polygon], points: &[Point]) -> Vec<(u32, u64)> {
    polys
        .iter()
        .enumerate()
        .map(|(i, poly)| {
            let bb = poly.bbox();
            let c = points
                .iter()
                .filter(|p| bb.contains(**p) && point_in_polygon(**p, poly))
                .count() as u64;
            (i as u32, c)
        })
        .collect()
}

/// Points within distance `r` of a polygon.
pub fn select_within_distance(points: &[Point], poly: &Polygon, r: f64) -> Vec<u32> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| point_polygon_distance(**p, poly) <= r)
        .map(|(i, _)| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_geometry::BBox;

    #[test]
    fn oracles_agree_on_a_tiny_case() {
        let poly = Polygon::rect(BBox::new(Point::ZERO, Point::new(2.0, 2.0)));
        let pts = vec![Point::new(1.0, 1.0), Point::new(5.0, 5.0)];
        assert_eq!(select_points(&pts, &poly), vec![0]);
        assert_eq!(
            join_polygon_point(std::slice::from_ref(&poly), &pts),
            vec![(0, 0)]
        );
        assert_eq!(aggregate(std::slice::from_ref(&poly), &pts), vec![(0, 1)]);
        assert_eq!(knn(&pts, Point::ZERO, 1)[0].0, 0);
        assert_eq!(distance_join(&pts, &pts, 0.1).len(), 2);
        assert_eq!(select_within_distance(&pts, &poly, 5.0).len(), 2);
        assert_eq!(
            select_polygons(
                std::slice::from_ref(&poly),
                &Polygon::rect(BBox::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0)))
            ),
            vec![0]
        );
        assert_eq!(
            join_polygon_polygon(std::slice::from_ref(&poly), std::slice::from_ref(&poly)).len(),
            1
        );
    }
}
