//! Brute-force oracles: the ground truth every engine is tested against.

use spade_geometry::distance::point_polygon_distance;
use spade_geometry::predicates::{points_in_polygon_mask, polygons_intersect};
use spade_geometry::{Point, Polygon};

/// Bbox-prefilter then batched containment: gather candidate ids, run the
/// lane-parallel polygon mask over the gathered (contiguous) points, and
/// keep the survivors. Bit-identical to filtering with the scalar
/// `point_in_polygon` — the mask kernel falls back to it on
/// boundary-ambiguous lanes — and candidate order is preserved.
fn contained_ids(points: &[Point], poly: &Polygon) -> Vec<u32> {
    let bb = poly.bbox();
    let mut ids: Vec<u32> = Vec::new();
    let mut cand: Vec<Point> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        if bb.contains(*p) {
            ids.push(i as u32);
            cand.push(*p);
        }
    }
    let mut mask = Vec::new();
    points_in_polygon_mask(&cand, poly, &mut mask);
    ids.into_iter()
        .zip(mask)
        .filter_map(|(id, m)| m.then_some(id))
        .collect()
}

/// Ids of points inside the polygon (boundary inclusive).
pub fn select_points(points: &[Point], poly: &Polygon) -> Vec<u32> {
    contained_ids(points, poly)
}

/// Ids of polygons intersecting the constraint polygon.
pub fn select_polygons(polys: &[Polygon], constraint: &Polygon) -> Vec<u32> {
    polys
        .iter()
        .enumerate()
        .filter(|(_, p)| polygons_intersect(p, constraint))
        .map(|(i, _)| i as u32)
        .collect()
}

/// All `(polygon index, point index)` containment pairs.
pub fn join_polygon_point(polys: &[Polygon], points: &[Point]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (i, poly) in polys.iter().enumerate() {
        for j in contained_ids(points, poly) {
            out.push((i as u32, j));
        }
    }
    out
}

/// All intersecting `(left index, right index)` polygon pairs.
pub fn join_polygon_polygon(a: &[Polygon], b: &[Polygon]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (i, pa) in a.iter().enumerate() {
        for (j, pb) in b.iter().enumerate() {
            if polygons_intersect(pa, pb) {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// All `(left, right)` point pairs within distance `r`.
pub fn distance_join(left: &[Point], right: &[Point], r: f64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (i, a) in left.iter().enumerate() {
        for (j, b) in right.iter().enumerate() {
            if a.dist(*b) <= r {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// The k nearest points to `q`, nearest first.
pub fn knn(points: &[Point], q: Point, k: usize) -> Vec<(u32, f64)> {
    let mut all: Vec<(u32, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (i as u32, p.dist(q)))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    all.truncate(k);
    all
}

/// Point count per polygon.
pub fn aggregate(polys: &[Polygon], points: &[Point]) -> Vec<(u32, u64)> {
    polys
        .iter()
        .enumerate()
        .map(|(i, poly)| (i as u32, contained_ids(points, poly).len() as u64))
        .collect()
}

/// Points within distance `r` of a polygon.
pub fn select_within_distance(points: &[Point], poly: &Polygon, r: f64) -> Vec<u32> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| point_polygon_distance(**p, poly) <= r)
        .map(|(i, _)| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_geometry::predicates::point_in_polygon;
    use spade_geometry::BBox;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / ((1u64 << 53) as f64)
    }

    #[test]
    fn batched_containment_matches_scalar_filter() {
        // The mask-kernel path must reproduce the per-point scalar filter
        // exactly, including points on edges/vertices of a concave ring.
        let poly = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 6.0),
            Point::new(0.0, 6.0),
        ]);
        let mut seed = 4242u64;
        let mut pts: Vec<Point> = (0..500)
            .map(|_| Point::new(lcg(&mut seed) * 8.0 - 1.0, lcg(&mut seed) * 8.0 - 1.0))
            .collect();
        pts.extend(poly.exterior.points.iter().copied());
        pts.push(Point::new(3.0, 0.0)); // on the bottom edge
        pts.push(Point::new(3.0, 2.0)); // on the notch floor
        let bb = poly.bbox();
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| bb.contains(**p) && point_in_polygon(**p, &poly))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(select_points(&pts, &poly), want);
        let polys = [poly];
        assert_eq!(
            join_polygon_point(&polys, &pts),
            want.iter().map(|&j| (0, j)).collect::<Vec<_>>()
        );
        assert_eq!(aggregate(&polys, &pts), vec![(0, want.len() as u64)]);
    }

    #[test]
    fn oracles_agree_on_a_tiny_case() {
        let poly = Polygon::rect(BBox::new(Point::ZERO, Point::new(2.0, 2.0)));
        let pts = vec![Point::new(1.0, 1.0), Point::new(5.0, 5.0)];
        assert_eq!(select_points(&pts, &poly), vec![0]);
        assert_eq!(
            join_polygon_point(std::slice::from_ref(&poly), &pts),
            vec![(0, 0)]
        );
        assert_eq!(aggregate(std::slice::from_ref(&poly), &pts), vec![(0, 1)]);
        assert_eq!(knn(&pts, Point::ZERO, 1)[0].0, 0);
        assert_eq!(distance_join(&pts, &pts, 0.1).len(), 2);
        assert_eq!(select_within_distance(&pts, &poly, 5.0).len(), 2);
        assert_eq!(
            select_polygons(
                std::slice::from_ref(&poly),
                &Polygon::rect(BBox::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0)))
            ),
            vec![0]
        );
        assert_eq!(
            join_polygon_polygon(std::slice::from_ref(&poly), std::slice::from_ref(&poly)).len(),
            1
        );
    }
}
