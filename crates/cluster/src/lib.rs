//! Horizontal scale-out for the SPADE query service.
//!
//! Three pieces, composable and individually small:
//!
//! * [`ShardMap`] — a partition of a grid-indexed dataset's cell ids into
//!   contiguous, byte-balanced ranges, one per worker. Built from a
//!   worker's per-cell statistics (`QueryRequest::CellStats`). The last
//!   range is unbounded (`hi = u32::MAX`), so a map that has gone stale
//!   against a compaction that *grew* the cell count still covers every
//!   cell — correctness never depends on map freshness, only balance does.
//!
//! * [`ClusterClient`] — a scatter-gather coordinator over N workers, each
//!   a full `spade-net` server holding the complete dataset. Sharding
//!   partitions *execution*, not storage: a selection scatters one
//!   cell-range slice per worker and merges (sort + dedup for id results,
//!   distance-ordered truncation for kNN); a join routes individual cell
//!   *pairs* — co-located pairs run on their owner, cross-shard pairs on
//!   whichever side the byte estimates say is cheaper to bring the other
//!   cell to. Exactly one slice of every scatter carries the delta store,
//!   so staged writes are counted exactly once. Writes broadcast to all
//!   workers; families without a pairwise decomposition (distance/kNN
//!   joins, SQL) route whole to one worker.
//!
//! * [`Replica`] — a WAL-shipping follower. It polls a leader for WAL
//!   records past its applied watermark (`QueryRequest::WalFetch`),
//!   replays them through its own service's normal write path (so its
//!   state is byte-equivalent to a cold rebuild of the same prefix), and
//!   serves reads at a bounded-staleness watermark it exposes. The pull
//!   design makes leader restart resumption implicit: the follower's next
//!   poll names the sequence it has, whoever answers serves from there.

pub mod coordinator;
pub mod replica;
pub mod shard;

pub use coordinator::{ClusterClient, ClusterConfig, ClusterError};
pub use replica::{Replica, ReplicaConfig};
pub use shard::ShardMap;
