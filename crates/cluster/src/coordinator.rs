//! The scatter-gather coordinator.

use crate::shard::ShardMap;
use spade_client::{Client, ClientConfig, ClientError, PendingReply};
use spade_core::query::{JoinQuery, QueryResult, SelectQuery};
use spade_core::QueryStats;
use spade_server::metrics::{render_labeled_counter, render_labeled_gauge, sanitize_label};
use spade_server::{QueryRequest, QueryResponse, ResponsePayload};
use std::collections::{BTreeMap, HashMap};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::RwLock;
use std::time::Duration;

/// Coordinator tuning.
#[derive(Debug, Clone, Default)]
pub struct ClusterConfig {
    /// Per-worker client tuning (namespace, token, pool size, frame cap).
    pub client: ClientConfig,
}

/// Why a cluster call failed.
#[derive(Debug)]
pub enum ClusterError {
    /// A worker connection or the service behind it failed.
    Client(ClientError),
    /// A worker answered with a payload the coordinator did not expect
    /// (e.g. an Ack where a query result was due) — a routing bug or a
    /// mixed-version cluster.
    Protocol(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Client(e) => write!(f, "worker: {e}"),
            ClusterError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ClientError> for ClusterError {
    fn from(e: ClientError) -> Self {
        ClusterError::Client(e)
    }
}

/// The result-bearing families a scatter fans out, for the
/// `spade_shard_fanout_total{family}` metric.
const FAMILIES: [&str; 7] = [
    "select",
    "range",
    "contained",
    "distance",
    "knn",
    "join",
    "aggregate",
];

/// A scatter-gather front door over N workers, each a full `spade-net`
/// server holding the complete dataset. See the crate docs for the
/// execution model; the coordinator owns the shard maps, the routing
/// decisions, and the merge step, and exposes Prometheus-style counters
/// for fan-out and (modeled) cross-shard bytes moved.
pub struct ClusterClient {
    workers: Vec<Client>,
    maps: RwLock<HashMap<String, ShardMap>>,
    round_robin: AtomicUsize,
    fanout: [AtomicU64; 7],
    bytes_moved: Vec<AtomicU64>,
}

impl ClusterClient {
    /// Connect to every worker. Workers are equals — index 0 is only
    /// distinguished as the default target for unscattered requests and
    /// as the slice that carries the delta store in scatters.
    pub fn connect(
        addrs: &[SocketAddr],
        config: ClusterConfig,
    ) -> Result<ClusterClient, ClusterError> {
        assert!(!addrs.is_empty(), "a cluster needs at least one worker");
        let workers = addrs
            .iter()
            .map(|a| Client::connect(*a, config.client.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let bytes_moved = (0..addrs.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(ClusterClient {
            workers,
            maps: RwLock::new(HashMap::new()),
            round_robin: AtomicUsize::new(0),
            fanout: Default::default(),
            bytes_moved,
        })
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Fetch fresh per-cell statistics for `dataset` (from worker 0) and
    /// rebuild its shard map. Call after registering the dataset on every
    /// worker, and again after an explicit `Flush` — pair-routed joins
    /// enumerate cell pairs from this map, so they need it to describe
    /// the current index generation (selections tolerate a stale map: the
    /// unbounded last range keeps any covering scatter complete).
    pub fn refresh_shard_map(&self, dataset: &str) -> Result<(), ClusterError> {
        let reply = self.workers[0]
            .query(&QueryRequest::CellStats {
                dataset: dataset.to_string(),
            })
            .map_err(ClusterError::from)?;
        let ResponsePayload::CellStats {
            generation,
            seq,
            cells,
        } = reply.payload
        else {
            return Err(ClusterError::Protocol("CellStats reply expected".into()));
        };
        let map = ShardMap::build(cells, self.workers.len(), generation, seq);
        self.maps.write().unwrap().insert(dataset.to_string(), map);
        Ok(())
    }

    /// The current shard map for `dataset`, if one was built.
    pub fn shard_map(&self, dataset: &str) -> Option<ShardMap> {
        self.maps.read().unwrap().get(dataset).cloned()
    }

    /// Modeled cross-shard traffic per worker, in bytes: for every join
    /// pair routed off its owner, the byte size of the cell that had to
    /// come along. Indexed like the worker list.
    pub fn bytes_moved(&self) -> Vec<u64> {
        self.bytes_moved
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn note_fanout(&self, family: &str, shards: u64) {
        if let Some(i) = FAMILIES.iter().position(|f| *f == family) {
            self.fanout[i].fetch_add(shards, Ordering::Relaxed);
        }
    }

    fn next_worker(&self) -> &Client {
        let i = self.round_robin.fetch_add(1, Ordering::Relaxed);
        &self.workers[i % self.workers.len()]
    }

    /// Execute one request against the cluster. Selections and
    /// intersects/count-points joins scatter when a shard map exists;
    /// writes broadcast; everything else routes to one worker.
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResponse, ClusterError> {
        match request {
            QueryRequest::Select { dataset, query } => {
                let map = self.shard_map(dataset);
                match map {
                    Some(map) if self.workers.len() > 1 => {
                        self.scatter_select(dataset, query, &map)
                    }
                    _ => Ok(self.next_worker().query(request)?),
                }
            }
            QueryRequest::Join { left, right, query } => {
                let maps = (self.shard_map(left), self.shard_map(right));
                match (maps, query) {
                    ((Some(lm), Some(rm)), JoinQuery::Intersects | JoinQuery::CountPoints)
                        if self.workers.len() > 1 =>
                    {
                        self.scatter_join(left, right, query, &lm, &rm)
                    }
                    // Distance and kNN joins have no pairwise plan; any
                    // single worker holds the full data and answers alone.
                    _ => Ok(self.next_worker().query(request)?),
                }
            }
            QueryRequest::Insert { .. }
            | QueryRequest::Delete { .. }
            | QueryRequest::Flush { .. } => self.broadcast(request),
            QueryRequest::Sql(stmt) => {
                if sql_is_read_only(stmt) {
                    Ok(self.next_worker().query(request)?)
                } else {
                    // DML must reach every worker to keep their (equal)
                    // relational stores and spatial deltas in step.
                    self.broadcast(request)
                }
            }
            QueryRequest::Explain { analyze, request } => self.explain(*analyze, request),
            // Shard-internal and replication requests pass through.
            _ => Ok(self.workers[0].query(request)?),
        }
    }

    /// Send to every worker, wait for all, return worker 0's reply. An
    /// error from any worker is the call's error — a half-applied write
    /// is surfaced, never masked.
    fn broadcast(&self, request: &QueryRequest) -> Result<QueryResponse, ClusterError> {
        let pending: Vec<PendingReply> = self
            .workers
            .iter()
            .map(|w| w.submit(request))
            .collect::<Result<_, _>>()?;
        let mut first = None;
        for (i, p) in pending.into_iter().enumerate() {
            let reply = p.wait()?;
            if i == 0 {
                first = Some(reply);
            }
        }
        Ok(first.expect("at least one worker"))
    }

    fn scatter_select(
        &self,
        dataset: &str,
        query: &SelectQuery,
        map: &ShardMap,
    ) -> Result<QueryResponse, ClusterError> {
        let family = match query {
            SelectQuery::Intersects(_) => "select",
            SelectQuery::Range(_) => "range",
            SelectQuery::Contained(_) => "contained",
            SelectQuery::WithinDistance(..) => "distance",
            SelectQuery::Knn(..) => "knn",
        };
        let shards = map.shards().min(self.workers.len());
        self.note_fanout(family, shards as u64);
        let pending: Vec<PendingReply> = (0..shards)
            .map(|i| {
                self.workers[i].submit(&QueryRequest::ShardSelect {
                    dataset: dataset.to_string(),
                    query: query.clone(),
                    cells: map.range(i),
                    // Exactly one slice owns the staged delta.
                    include_delta: i == 0,
                })
            })
            .collect::<Result<_, _>>()?;
        let partials = wait_query_partials(pending)?;
        let k = match query {
            SelectQuery::Knn(_, k) => Some(*k),
            _ => None,
        };
        merge_partials(partials, k)
    }

    /// Route every bbox-intersecting cell pair to a worker: pairs whose
    /// two cells share an owner run there; cross-shard pairs run on the
    /// side where the cell that must come along is smaller (each worker
    /// holds the full dataset, so "moving" a cell is a modeled cost — the
    /// same byte estimate the single-node optimizer uses to order its
    /// pair walk — not an actual transfer; the counters record it so the
    /// routing policy is observable).
    fn plan_join_pairs(&self, lm: &ShardMap, rm: &ShardMap) -> (Vec<Vec<(u32, u32)>>, Vec<u64>) {
        let shards = lm.shards().min(self.workers.len());
        let mut per_shard: Vec<Vec<(u32, u32)>> = vec![Vec::new(); shards];
        let mut moved = vec![0u64; shards];
        for l in 0..lm.num_cells() as u32 {
            let Some(lb) = lm.cell_bbox(l) else { continue };
            for r in 0..rm.num_cells() as u32 {
                let Some(rb) = rm.cell_bbox(r) else { continue };
                if !lb.intersects(&rb) {
                    continue;
                }
                let (sl, sr) = (lm.owner(l).min(shards - 1), rm.owner(r).min(shards - 1));
                let target = if sl == sr {
                    sl
                } else if rm.cell_bytes(r) <= lm.cell_bytes(l) {
                    moved[sl] += rm.cell_bytes(r);
                    sl
                } else {
                    moved[sr] += lm.cell_bytes(l);
                    sr
                };
                per_shard[target].push((l, r));
            }
        }
        (per_shard, moved)
    }

    fn scatter_join(
        &self,
        left: &str,
        right: &str,
        query: &JoinQuery,
        lm: &ShardMap,
        rm: &ShardMap,
    ) -> Result<QueryResponse, ClusterError> {
        let family = match query {
            JoinQuery::Intersects => "join",
            JoinQuery::CountPoints => "aggregate",
            _ => unreachable!("scatter_join is only called for pairwise families"),
        };
        let (per_shard, moved) = self.plan_join_pairs(lm, rm);
        for (i, m) in moved.iter().enumerate() {
            self.bytes_moved[i].fetch_add(*m, Ordering::Relaxed);
        }
        // Shard 0 always participates (it carries the delta cross terms);
        // other shards are contacted only when pairs routed to them.
        let mut targets: Vec<usize> = (0..per_shard.len())
            .filter(|&i| i == 0 || !per_shard[i].is_empty())
            .collect();
        targets.sort_unstable();
        self.note_fanout(family, targets.len() as u64);
        let pending: Vec<PendingReply> = targets
            .iter()
            .map(|&i| {
                self.workers[i].submit(&QueryRequest::ShardJoin {
                    left: left.to_string(),
                    right: right.to_string(),
                    query: query.clone(),
                    pairs: per_shard[i].clone(),
                    include_delta: i == 0,
                })
            })
            .collect::<Result<_, _>>()?;
        let partials = wait_query_partials(pending)?;
        merge_partials(partials, None)
    }

    /// EXPLAIN against the cluster: joins that would scatter get their
    /// shard routing prepended to the plan text (which one worker
    /// renders — the engine plan is the same everywhere; the routing is
    /// the part only the coordinator knows).
    fn explain(&self, analyze: bool, inner: &QueryRequest) -> Result<QueryResponse, ClusterError> {
        let mut routing = String::new();
        if let QueryRequest::Join { left, right, query } = inner {
            if matches!(query, JoinQuery::Intersects | JoinQuery::CountPoints) {
                if let (Some(lm), Some(rm)) = (self.shard_map(left), self.shard_map(right)) {
                    let (per_shard, moved) = self.plan_join_pairs(&lm, &rm);
                    let total: usize = per_shard.iter().map(Vec::len).sum();
                    let local: usize = per_shard
                        .iter()
                        .enumerate()
                        .map(|(i, pairs)| {
                            pairs
                                .iter()
                                .filter(|(l, r)| lm.owner(*l) == i && rm.owner(*r) == i)
                                .count()
                        })
                        .sum();
                    routing.push_str(&format!(
                        "cluster join: {total} cell pairs over {} shards ({local} co-located, {} cross-shard, {} B moved)\n",
                        per_shard.len(),
                        total - local,
                        moved.iter().sum::<u64>(),
                    ));
                    for (i, pairs) in per_shard.iter().enumerate() {
                        routing.push_str(&format!(
                            "cluster join: shard {i}: {} pairs, {} B moved{}\n",
                            pairs.len(),
                            moved[i],
                            if i == 0 { ", +delta" } else { "" },
                        ));
                    }
                }
            }
        }
        let mut reply = self.workers[0].query(&QueryRequest::Explain {
            analyze,
            request: Box::new(inner.clone()),
        })?;
        if !routing.is_empty() {
            if let ResponsePayload::Explain(text) = reply.payload {
                reply.payload = ResponsePayload::Explain(format!("{routing}{text}"));
            }
        }
        Ok(reply)
    }

    /// Coordinator metrics in Prometheus text format:
    /// `spade_shard_fanout_total{family}` and
    /// `spade_shard_bytes_moved_total{shard}`.
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        for (i, family) in FAMILIES.iter().enumerate() {
            render_labeled_counter(
                &mut out,
                "spade_shard_fanout_total",
                "Shard requests issued by scatter-gather queries, by family.",
                &[("family", &sanitize_label(family))],
                self.fanout[i].load(Ordering::Relaxed),
                i == 0,
            );
        }
        for (i, moved) in self.bytes_moved.iter().enumerate() {
            render_labeled_counter(
                &mut out,
                "spade_shard_bytes_moved_total",
                "Modeled bytes brought to each shard for cross-shard join pairs.",
                &[("shard", &sanitize_label(&i.to_string()))],
                moved.load(Ordering::Relaxed),
                i == 0,
            );
        }
        let maps = self.maps.read().unwrap();
        for (i, (name, map)) in maps.iter().enumerate() {
            render_labeled_gauge(
                &mut out,
                "spade_shard_map_generation",
                "Index generation each shard map was built from.",
                &[("dataset", &sanitize_label(name))],
                map.generation,
                i == 0,
            );
        }
        out
    }
}

/// `SELECT`-only statements can be answered by any single worker; anything
/// else mutates and must broadcast.
fn sql_is_read_only(stmt: &str) -> bool {
    let head = stmt.trim_start();
    let word: String = head
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .collect();
    word.eq_ignore_ascii_case("select") || word.eq_ignore_ascii_case("explain")
}

/// Wait for all shard replies, insisting each is a spatial query result.
fn wait_query_partials(
    pending: Vec<PendingReply>,
) -> Result<Vec<(QueryResult, QueryStats, Duration, Duration)>, ClusterError> {
    let mut out = Vec::with_capacity(pending.len());
    for p in pending {
        let reply = p.wait()?;
        match reply.payload {
            ResponsePayload::Query(r) => {
                out.push((r, reply.stats, reply.queue_wait, reply.exec_time))
            }
            other => {
                return Err(ClusterError::Protocol(format!(
                    "shard answered {other:?} to a shard query"
                )))
            }
        }
    }
    Ok(out)
}

/// Merge shard partials into the result a single node would produce.
///
/// * Id results: each object lives in exactly one cell, the scatter's
///   ranges are disjoint, and the delta rides exactly one slice — the
///   union has no duplicates *across* shards in the base index, but an
///   object can appear in both a base cell and the delta slice after an
///   in-place update, exactly as on a single node; sort + dedup is the
///   same final step the single-node executors apply, so the bytes match.
/// * kNN: each shard returns its exact local top-k by `(distance, id)`;
///   any member of the global top-k lies in some shard's scope and thus
///   in that shard's local top-k, so concatenate, re-sort, truncate.
/// * Pairs: pair lists are disjoint by construction (each cell pair is
///   routed to exactly one shard); sort + dedup mirrors the single node.
/// * Counts: every shard zero-initializes all polygon ids and sums only
///   its routed pairs (plus delta terms on one shard); per-id addition
///   of the partials is exactly the single-node accumulation reordered.
fn merge_partials(
    partials: Vec<(QueryResult, QueryStats, Duration, Duration)>,
    knn_k: Option<usize>,
) -> Result<QueryResponse, ClusterError> {
    let mut stats = QueryStats::default();
    let mut queue_wait = Duration::ZERO;
    let mut exec_time = Duration::ZERO;
    let mut ids: Vec<u32> = Vec::new();
    let mut ranked: Vec<(u32, f64)> = Vec::new();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
    let mut kind: Option<u8> = None;
    for (result, s, qw, et) in partials {
        // Fan-out runs in parallel: wall terms take the slowest shard,
        // volume terms add up.
        stats.io_time += s.io_time;
        stats.gpu_time += s.gpu_time;
        stats.polygon_time += s.polygon_time;
        stats.cpu_time += s.cpu_time;
        stats.total_time = stats.total_time.max(s.total_time);
        stats.io_hidden += s.io_hidden;
        stats.bytes_from_disk += s.bytes_from_disk;
        stats.bytes_to_device += s.bytes_to_device;
        stats.passes += s.passes;
        stats.cells_loaded += s.cells_loaded;
        stats.prefetch_hits += s.prefetch_hits;
        stats.prefetch_misses += s.prefetch_misses;
        stats.cache_hits += s.cache_hits;
        queue_wait = queue_wait.max(qw);
        exec_time = exec_time.max(et);
        let this = match &result {
            QueryResult::Ids(_) => 1,
            QueryResult::Ranked(_) => 2,
            QueryResult::Pairs(_) => 3,
            QueryResult::RankedPairs(_) => 4,
            QueryResult::Counts(_) => 5,
        };
        match kind {
            None => kind = Some(this),
            Some(k) if k != this => {
                return Err(ClusterError::Protocol(
                    "shards answered mixed result kinds".into(),
                ))
            }
            _ => {}
        }
        match result {
            QueryResult::Ids(v) => ids.extend(v),
            QueryResult::Ranked(v) => ranked.extend(v),
            QueryResult::Pairs(v) => pairs.extend(v),
            QueryResult::RankedPairs(_) => {
                return Err(ClusterError::Protocol(
                    "ranked pairs are not a scatter family".into(),
                ))
            }
            QueryResult::Counts(v) => {
                for (id, n) in v {
                    *counts.entry(id).or_insert(0) += n;
                }
            }
        }
    }
    let result = match kind {
        Some(1) => {
            ids.sort_unstable();
            ids.dedup();
            QueryResult::Ids(ids)
        }
        Some(2) => {
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            if let Some(k) = knn_k {
                ranked.truncate(k);
            }
            QueryResult::Ranked(ranked)
        }
        Some(3) => {
            pairs.sort_unstable();
            pairs.dedup();
            QueryResult::Pairs(pairs)
        }
        Some(5) => QueryResult::Counts(counts.into_iter().collect()),
        _ => {
            return Err(ClusterError::Protocol(
                "scatter produced no partials".into(),
            ))
        }
    };
    stats.result_count = match &result {
        QueryResult::Ids(v) => v.len() as u64,
        QueryResult::Ranked(v) => v.len() as u64,
        QueryResult::Pairs(v) => v.len() as u64,
        QueryResult::RankedPairs(v) => v.len() as u64,
        QueryResult::Counts(v) => v.len() as u64,
    };
    Ok(QueryResponse {
        payload: ResponsePayload::Query(result),
        stats,
        queue_wait,
        exec_time,
    })
}
