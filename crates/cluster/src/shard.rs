//! The shard map: contiguous, byte-balanced cell ranges over one dataset.

use spade_geometry::BBox;
use spade_server::CellInfo;

/// A partition of a dataset's grid cells into `shards` contiguous
/// half-open ranges, balanced by cell byte size. Shard `i` owns cells
/// `[bounds[i], bounds[i+1])`; the final bound is `u32::MAX`, so the
/// ranges cover every cell id that could ever exist — a stale map (built
/// before a compaction changed the cell count) still yields a covering,
/// disjoint scatter, just a less balanced one.
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// `shards + 1` ascending bounds; `bounds[0] == 0`,
    /// `bounds[shards] == u32::MAX`.
    bounds: Vec<u32>,
    /// Per-cell statistics the map was built from (indexed by cell id).
    cells: Vec<CellInfo>,
    /// Index generation the statistics described.
    pub generation: u64,
    /// WAL sequence the serving node had applied when the stats were read.
    pub seq: u64,
}

impl ShardMap {
    /// Partition `cells` into `shards` contiguous ranges with roughly
    /// equal total bytes. Greedy: walk cells in id order, cut a boundary
    /// once the running shard reaches the ideal share — contiguity keeps
    /// each shard's working set spatially coherent (cell ids are built
    /// from a spatially clustered R-tree walk).
    pub fn build(cells: Vec<CellInfo>, shards: usize, generation: u64, seq: u64) -> ShardMap {
        let shards = shards.max(1);
        let total: u64 = cells.iter().map(|c| c.bytes).sum();
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0u32);
        let mut acc = 0u64;
        let mut cut = 1usize;
        for (i, c) in cells.iter().enumerate() {
            if cut >= shards {
                break;
            }
            acc += c.bytes;
            // Remaining shards must each get at least one cell; don't let
            // the greedy cut starve them of ids.
            let remaining_cells = cells.len() - (i + 1);
            let remaining_shards = shards - cut;
            let target = total * cut as u64 / shards as u64;
            if (acc >= target && remaining_cells >= remaining_shards)
                || remaining_cells == remaining_shards
            {
                bounds.push((i + 1) as u32);
                cut += 1;
            }
        }
        // Degenerate inputs (fewer cells than shards): pad with empty
        // ranges so every shard index stays addressable.
        while bounds.len() < shards {
            bounds.push(cells.len() as u32);
        }
        bounds.push(u32::MAX);
        ShardMap {
            bounds,
            cells,
            generation,
            seq,
        }
    }

    /// Number of shards in the map.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The half-open cell range shard `i` owns.
    pub fn range(&self, i: usize) -> (u32, u32) {
        (self.bounds[i], self.bounds[i + 1])
    }

    /// Which shard owns cell `cell`: the last range whose `lo <= cell`.
    /// With duplicate bounds (padded empty ranges) the duplicates resolve
    /// to the *last* of them, whose range is the non-empty one.
    pub fn owner(&self, cell: u32) -> usize {
        let i = self.bounds.partition_point(|&b| b <= cell);
        (i - 1).min(self.shards() - 1)
    }

    /// Byte size of `cell` per the statistics the map was built from
    /// (0 for ids past the stats — e.g. after a stale-map split).
    pub fn cell_bytes(&self, cell: u32) -> u64 {
        self.cells.get(cell as usize).map_or(0, |c| c.bytes)
    }

    /// Bounding box of `cell`, when the statistics cover it.
    pub fn cell_bbox(&self, cell: u32) -> Option<BBox> {
        self.cells.get(cell as usize).map(|c| c.bbox)
    }

    /// Number of cells the statistics covered.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Per-cell byte sizes in id order (the optimizer's transfer-estimate
    /// helpers take these as slices).
    pub fn bytes_by_cell(&self) -> Vec<u64> {
        self.cells.iter().map(|c| c.bytes).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_geometry::{BBox, Point};

    fn cell(bytes: u64) -> CellInfo {
        CellInfo {
            bbox: BBox::new(Point::ZERO, Point::new(1.0, 1.0)),
            bytes,
            objects: 1,
        }
    }

    #[test]
    fn covers_everything_and_stays_disjoint() {
        let cells: Vec<CellInfo> = (0..10).map(|i| cell(100 + i)).collect();
        let map = ShardMap::build(cells, 3, 1, 0);
        assert_eq!(map.shards(), 3);
        assert_eq!(map.range(0).0, 0);
        assert_eq!(map.range(2).1, u32::MAX);
        for i in 0..2 {
            assert_eq!(map.range(i).1, map.range(i + 1).0, "ranges abut");
        }
        for c in 0..10u32 {
            let owner = map.owner(c);
            let (lo, hi) = map.range(owner);
            assert!(lo <= c && c < hi);
        }
        // Cells past the stats (stale map) still have exactly one owner.
        assert_eq!(map.owner(9999), 2);
    }

    #[test]
    fn balances_by_bytes_not_count() {
        // One huge cell followed by many small ones: the huge cell should
        // get a range (nearly) to itself.
        let mut cells = vec![cell(10_000)];
        cells.extend((0..9).map(|_| cell(100)));
        let map = ShardMap::build(cells, 2, 1, 0);
        let (lo, hi) = map.range(0);
        assert_eq!((lo, hi), (0, 1), "big cell isolated, got {lo}..{hi}");
    }

    #[test]
    fn more_shards_than_cells_pads_empty_ranges() {
        let map = ShardMap::build(vec![cell(10), cell(20)], 4, 1, 0);
        assert_eq!(map.shards(), 4);
        // Every cell still has exactly one owner and every range is valid.
        for c in 0..2u32 {
            let (lo, hi) = map.range(map.owner(c));
            assert!(lo <= c && c < hi);
        }
    }
}
