//! WAL-shipping read replicas.
//!
//! A [`Replica`] pairs a local [`QueryService`] (the follower) with a
//! leader address. A background thread polls the leader for WAL records
//! past the follower's applied watermark (`QueryRequest::WalFetch`) and
//! replays each through the follower's *normal write path* — the same
//! `Insert`/`Delete`/`Flush` requests a client would submit — so the
//! follower's visible state is byte-equivalent to a cold rebuild of the
//! applied prefix, and its own WAL (if configured) makes the replica
//! independently durable.
//!
//! **Staleness is bounded and observable.** The watermark
//! ([`Replica::applied_seq`]) only advances after a record is applied, so
//! a read served by the follower reflects every leader write up to that
//! sequence; [`Replica::lag`] is the number of leader sequences the
//! follower has not yet applied (leader's last assigned minus applied).
//! With the leader idle, one poll round drives lag to 0; under load, lag
//! is bounded by what the leader appends during one poll interval plus
//! one batch, because each round keeps fetching while full batches
//! arrive. `metrics_text` exposes the lag as `spade_replica_lag_seq`.
//!
//! **Leader restart costs nothing.** The protocol is pull-based and the
//! follower names its own position: every fetch says "records after seq
//! N". A restarted leader rebuilds its WAL tail from disk and serves
//! `records_since(N)` — shipping resumes from the follower's ack with no
//! negotiation and no risk of a gap (the leader's WAL is the one source
//! of ordering).

use spade_client::{Client, ClientConfig, ClientError};
use spade_server::metrics::{render_counter, render_gauge};
use spade_server::{QueryRequest, QueryService, ResponsePayload};
use spade_storage::wal::{WalOp, WalRecord};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Replication tuning.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Sleep between poll rounds once the follower is caught up.
    pub poll_interval: Duration,
    /// Records per fetch; a full batch triggers an immediate re-fetch.
    pub batch_limit: u32,
    /// Resume point: apply only records with `seq > start_after_seq`
    /// (a restarted follower passes its last durable watermark).
    pub start_after_seq: u64,
    /// Connection to the leader. Replication frames are restricted to the
    /// default namespace; leave the namespace at its default.
    pub client: ClientConfig,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            poll_interval: Duration::from_millis(20),
            batch_limit: 512,
            start_after_seq: 0,
            client: ClientConfig::default(),
        }
    }
}

struct Inner {
    service: Arc<QueryService>,
    applied: AtomicU64,
    leader_seq: AtomicU64,
    apply_errors: AtomicU64,
    stop: AtomicBool,
}

/// A WAL-shipping follower; see the module docs for the protocol.
pub struct Replica {
    inner: Arc<Inner>,
    thread: Mutex<Option<thread::JoinHandle<()>>>,
}

impl Replica {
    /// Start replicating `leader` into `service`. Datasets must be
    /// registered on the follower (same names as the leader) for their
    /// records to apply; records for unknown datasets count as apply
    /// errors and are skipped — the watermark still advances, keeping a
    /// partial follower (one that mirrors a subset) making progress.
    pub fn start(leader: SocketAddr, service: Arc<QueryService>, config: ReplicaConfig) -> Replica {
        let inner = Arc::new(Inner {
            service,
            applied: AtomicU64::new(config.start_after_seq),
            leader_seq: AtomicU64::new(config.start_after_seq),
            apply_errors: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let thread_inner = Arc::clone(&inner);
        let handle = thread::Builder::new()
            .name("spade-replica".into())
            .spawn(move || replicate_loop(&thread_inner, leader, &config))
            .expect("spawn replica thread");
        Replica {
            inner,
            thread: Mutex::new(Some(handle)),
        }
    }

    /// Highest leader sequence applied locally — the staleness watermark:
    /// follower reads reflect every leader write up to this sequence.
    pub fn applied_seq(&self) -> u64 {
        self.inner.applied.load(Ordering::Acquire)
    }

    /// The leader's last assigned sequence, as of the last poll.
    pub fn leader_seq(&self) -> u64 {
        self.inner.leader_seq.load(Ordering::Acquire)
    }

    /// Leader sequences not yet applied (0 when caught up).
    pub fn lag(&self) -> u64 {
        self.leader_seq().saturating_sub(self.applied_seq())
    }

    /// Records that failed to apply (unknown dataset, write error) and
    /// were skipped.
    pub fn apply_errors(&self) -> u64 {
        self.inner.apply_errors.load(Ordering::Relaxed)
    }

    /// Block until the follower has applied through `seq` (or the
    /// deadline passes). Returns whether it caught up.
    pub fn wait_for(&self, seq: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.applied_seq() < seq {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Replication metrics in Prometheus text format.
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        render_gauge(
            &mut out,
            "spade_replica_lag_seq",
            "Leader WAL sequences not yet applied by this follower.",
            self.lag(),
        );
        render_gauge(
            &mut out,
            "spade_replica_applied_seq",
            "Highest leader WAL sequence applied by this follower.",
            self.applied_seq(),
        );
        render_counter(
            &mut out,
            "spade_replica_apply_errors_total",
            "Replicated records that failed to apply and were skipped.",
            self.apply_errors(),
        );
        out
    }

    /// Stop polling and join the replication thread. Idempotent; `Drop`
    /// calls it.
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(h) = self.thread.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop();
    }
}

fn replicate_loop(inner: &Arc<Inner>, leader: SocketAddr, config: &ReplicaConfig) {
    // The pooled client redials lazily with capped backoff, so a leader
    // restart needs no handling here: fetches fail while it is down and
    // succeed again once it is back, resuming from `applied`.
    let mut client: Option<Client> = None;
    // One session per tenant namespace, opened on first use.
    let mut sessions = HashMap::new();
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let conn = match &client {
            Some(c) => c,
            None => match Client::connect(leader, config.client.clone()) {
                Ok(c) => {
                    client = Some(c);
                    client.as_ref().unwrap()
                }
                Err(_) => {
                    thread::sleep(config.poll_interval);
                    continue;
                }
            },
        };
        let fetched = fetch_round(inner, conn, &mut sessions, config);
        match fetched {
            // A full batch means more is probably waiting; poll again
            // immediately. Anything else (caught up, transport error)
            // waits out the interval.
            Ok(full) if full => {}
            Ok(_) => thread::sleep(config.poll_interval),
            Err(_) => thread::sleep(config.poll_interval),
        }
    }
}

/// One fetch + apply round. Returns whether the batch came back full.
fn fetch_round(
    inner: &Arc<Inner>,
    client: &Client,
    sessions: &mut HashMap<String, spade_server::Session>,
    config: &ReplicaConfig,
) -> Result<bool, ClientError> {
    let after = inner.applied.load(Ordering::Acquire);
    let reply = client.query(&QueryRequest::WalFetch {
        after_seq: after,
        limit: config.batch_limit,
    })?;
    let ResponsePayload::WalBatch {
        leader_seq,
        records,
    } = reply.payload
    else {
        return Ok(false);
    };
    inner.leader_seq.store(leader_seq, Ordering::Release);
    let full = records.len() as u32 >= config.batch_limit;
    for rec in records {
        if inner.stop.load(Ordering::Acquire) {
            return Ok(false);
        }
        if apply(inner, sessions, &rec).is_err() {
            inner.apply_errors.fetch_add(1, Ordering::Relaxed);
        }
        // Advance even past failures: replication mirrors what the leader
        // logged, and a record that cannot apply here (e.g. a dataset the
        // follower does not mirror) would otherwise wedge the stream.
        inner.applied.store(rec.seq, Ordering::Release);
    }
    Ok(full)
}

/// Replay one WAL record through the follower's write path. WAL keys are
/// `dataset` for the default namespace and `ns:dataset` for tenants.
fn apply(
    inner: &Arc<Inner>,
    sessions: &mut HashMap<String, spade_server::Session>,
    rec: &WalRecord,
) -> Result<(), ()> {
    let (ns, dataset) = match rec.dataset.split_once(':') {
        Some((ns, d)) => (ns, d),
        None => ("default", rec.dataset.as_str()),
    };
    let request = match &rec.op {
        WalOp::Insert { id, geom } => QueryRequest::Insert {
            dataset: dataset.to_string(),
            id: *id,
            geometry: geom.clone(),
        },
        WalOp::Delete { id } => QueryRequest::Delete {
            dataset: dataset.to_string(),
            id: *id,
        },
        // The leader compacted through this point; mirror it so the
        // follower's delta does not grow without bound. Flush also makes
        // the follower's own WAL checkpoint, bounding *its* replay cost.
        WalOp::Checkpoint { .. } => QueryRequest::Flush {
            dataset: dataset.to_string(),
        },
    };
    if !sessions.contains_key(ns) {
        // Tenant sessions authenticate with no token: replicating a
        // token-gated namespace requires the operator to mirror it
        // without one on the follower (follower reads are the operator's
        // surface, not the tenant's).
        let session = inner.service.session_in(ns, None).map_err(|_| ())?;
        sessions.insert(ns.to_string(), session);
    }
    let session = sessions.get(ns).expect("just inserted");
    session.submit(request).wait().map(|_| ()).map_err(|_| ())
}
