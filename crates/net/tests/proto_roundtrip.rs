//! Property tests of the wire codec: every request and reply variant
//! survives encode → decode byte-exactly, and a mangled payload never
//! decodes as something else silently — it errors (or, for a bit flip,
//! at minimum never panics and never round-trips to a *different* valid
//! message while claiming success at the frame layer; the frame crc
//! catches transport flips, these tests attack the already-verified
//! payload bytes).

use proptest::prelude::*;
use proptest::strategy::FnStrategy;
use proptest::test_runner::TestRng;
use spade_core::distance::DistanceConstraint;
use spade_core::query::{JoinQuery, QueryResult, SelectQuery};
use spade_core::stats::CacheOutcome;
use spade_core::QueryStats;
use spade_geometry::{BBox, Geometry, LineString, MultiPolygon, Point, Polygon};
use spade_net::proto::{
    decode_client, decode_server, encode_client, encode_server, ClientMsg, ServerMsg,
};
use spade_server::{QueryRequest, QueryResponse, ResponsePayload, ServiceError};
use spade_storage::geom::geometry_table;
use spade_storage::sql::SqlResult;
use spade_storage::StorageError;
use std::time::Duration;

// ---- Generators ----------------------------------------------------------

fn coord(rng: &mut TestRng) -> f64 {
    // Finite, varied magnitudes; equality must hold bit-exactly.
    (rng.next_f64() - 0.5) * 2e6
}

fn point(rng: &mut TestRng) -> Point {
    Point::new(coord(rng), coord(rng))
}

fn points(rng: &mut TestRng, min: usize) -> Vec<Point> {
    let n = min + (rng.next_u64() as usize) % 6;
    (0..n).map(|_| point(rng)).collect()
}

fn polygon(rng: &mut TestRng) -> Polygon {
    Polygon::new(points(rng, 3))
}

fn geometry(rng: &mut TestRng) -> Geometry {
    match rng.next_u64() % 4 {
        0 => Geometry::Point(point(rng)),
        1 => Geometry::LineString(LineString::new(points(rng, 2))),
        2 => Geometry::Polygon(polygon(rng)),
        _ => {
            let n = 1 + (rng.next_u64() as usize) % 3;
            Geometry::MultiPolygon(MultiPolygon::new((0..n).map(|_| polygon(rng)).collect()))
        }
    }
}

fn name(rng: &mut TestRng) -> String {
    let n = 1 + (rng.next_u64() as usize) % 12;
    (0..n)
        .map(|_| char::from(b'a' + (rng.next_u64() % 26) as u8))
        .collect()
}

fn select_query(rng: &mut TestRng) -> SelectQuery {
    match rng.next_u64() % 5 {
        0 => SelectQuery::Intersects(polygon(rng)),
        1 => SelectQuery::Range(BBox::new(point(rng), point(rng))),
        2 => SelectQuery::Contained(polygon(rng)),
        3 => {
            let c = match rng.next_u64() % 3 {
                0 => DistanceConstraint::Point(point(rng)),
                1 => DistanceConstraint::Line(LineString::new(points(rng, 2))),
                _ => DistanceConstraint::Polygon(polygon(rng)),
            };
            SelectQuery::WithinDistance(c, rng.next_f64() * 100.0)
        }
        _ => SelectQuery::Knn(point(rng), (rng.next_u64() % 100) as usize),
    }
}

fn join_query(rng: &mut TestRng) -> JoinQuery {
    match rng.next_u64() % 4 {
        0 => JoinQuery::Intersects,
        1 => JoinQuery::WithinDistance(rng.next_f64() * 50.0),
        2 => JoinQuery::Knn(1 + (rng.next_u64() % 20) as usize),
        _ => JoinQuery::CountPoints,
    }
}

fn request(rng: &mut TestRng, depth: u32) -> QueryRequest {
    // Explain recurses; cap the depth so generation terminates.
    let variants = if depth == 0 { 10 } else { 11 };
    match rng.next_u64() % variants {
        0 => QueryRequest::Select {
            dataset: name(rng),
            query: select_query(rng),
        },
        1 => QueryRequest::Join {
            left: name(rng),
            right: name(rng),
            query: join_query(rng),
        },
        2 => QueryRequest::Sql(format!("SELECT * FROM {} WHERE id = 1", name(rng))),
        3 => QueryRequest::Insert {
            dataset: name(rng),
            id: rng.next_u64() as u32,
            geometry: geometry(rng),
        },
        4 => QueryRequest::Delete {
            dataset: name(rng),
            id: rng.next_u64() as u32,
        },
        5 => QueryRequest::Flush { dataset: name(rng) },
        6 => QueryRequest::ShardSelect {
            dataset: name(rng),
            query: select_query(rng),
            cells: (rng.next_u64() as u32, rng.next_u64() as u32),
            include_delta: rng.next_u64().is_multiple_of(2),
        },
        7 => QueryRequest::ShardJoin {
            left: name(rng),
            right: name(rng),
            query: join_query(rng),
            pairs: (0..(rng.next_u64() as usize % 10))
                .map(|_| (rng.next_u64() as u32, rng.next_u64() as u32))
                .collect(),
            include_delta: rng.next_u64().is_multiple_of(2),
        },
        8 => QueryRequest::CellStats { dataset: name(rng) },
        9 => QueryRequest::WalFetch {
            after_seq: rng.next_u64(),
            limit: rng.next_u64() as u32,
        },
        _ => QueryRequest::Explain {
            analyze: rng.next_u64().is_multiple_of(2),
            request: Box::new(request(rng, depth - 1)),
        },
    }
}

fn wal_record(rng: &mut TestRng, seq: u64) -> spade_storage::wal::WalRecord {
    use spade_storage::wal::{WalOp, WalRecord};
    let op = match rng.next_u64() % 3 {
        0 => WalOp::Insert {
            id: rng.next_u64() as u32,
            geom: geometry(rng),
        },
        1 => WalOp::Delete {
            id: rng.next_u64() as u32,
        },
        _ => WalOp::Checkpoint {
            generation: rng.next_u64() % 1000,
            through_seq: rng.next_u64(),
        },
    };
    WalRecord {
        seq,
        dataset: name(rng),
        op,
    }
}

fn query_result(rng: &mut TestRng) -> QueryResult {
    let n = (rng.next_u64() as usize) % 20;
    match rng.next_u64() % 5 {
        0 => QueryResult::Ids((0..n).map(|_| rng.next_u64() as u32).collect()),
        1 => QueryResult::Ranked(
            (0..n)
                .map(|_| (rng.next_u64() as u32, rng.next_f64() * 1e4))
                .collect(),
        ),
        2 => QueryResult::Pairs(
            (0..n)
                .map(|_| (rng.next_u64() as u32, rng.next_u64() as u32))
                .collect(),
        ),
        3 => QueryResult::RankedPairs(
            (0..n)
                .map(|_| (rng.next_u64() as u32, rng.next_u64() as u32, coord(rng)))
                .collect(),
        ),
        _ => QueryResult::Counts(
            (0..n)
                .map(|_| (rng.next_u64() as u32, rng.next_u64()))
                .collect(),
        ),
    }
}

fn sql_result(rng: &mut TestRng) -> SqlResult {
    if rng.next_u64().is_multiple_of(2) {
        SqlResult::Affected(rng.next_u64() as usize % 10_000)
    } else {
        let items: Vec<(u32, Geometry)> = (0..(rng.next_u64() as usize % 5))
            .map(|i| (i as u32, geometry(rng)))
            .collect();
        SqlResult::Rows(geometry_table("t", &items).unwrap())
    }
}

fn stats(rng: &mut TestRng) -> QueryStats {
    let d = |rng: &mut TestRng| Duration::from_nanos(rng.next_u64() % (1 << 40));
    QueryStats {
        io_time: d(rng),
        gpu_time: d(rng),
        polygon_time: d(rng),
        cpu_time: d(rng),
        total_time: d(rng),
        io_hidden: d(rng),
        bytes_from_disk: rng.next_u64(),
        bytes_to_device: rng.next_u64(),
        passes: rng.next_u64() % 64,
        cells_loaded: rng.next_u64() % 4096,
        result_count: rng.next_u64() % 1_000_000,
        prefetch_hits: rng.next_u64() % 4096,
        prefetch_misses: rng.next_u64() % 4096,
        cache_hits: rng.next_u64() % 4096,
        result_cache: match rng.next_u64() % 4 {
            0 => CacheOutcome::Bypass,
            1 => CacheOutcome::Miss,
            2 => CacheOutcome::Hit,
            _ => CacheOutcome::CoalescedHit,
        },
    }
}

fn storage_error(rng: &mut TestRng) -> StorageError {
    match rng.next_u64() % 9 {
        0 => StorageError::UnknownTable(name(rng)),
        1 => StorageError::UnknownColumn(name(rng)),
        2 => StorageError::TypeMismatch {
            column: name(rng),
            expected: match rng.next_u64() % 4 {
                0 => spade_storage::column::DataType::Int,
                1 => spade_storage::column::DataType::Float,
                2 => spade_storage::column::DataType::Str,
                _ => spade_storage::column::DataType::Bytes,
            },
        },
        3 => StorageError::Arity {
            expected: rng.next_u64() as usize % 32,
            got: rng.next_u64() as usize % 32,
        },
        4 => StorageError::DuplicateTable(name(rng)),
        5 => StorageError::Parse(name(rng)),
        6 => StorageError::Io(name(rng)),
        7 => StorageError::Corrupt(name(rng)),
        _ => StorageError::Cancelled,
    }
}

fn service_error(rng: &mut TestRng) -> ServiceError {
    match rng.next_u64() % 10 {
        0 => ServiceError::Rejected {
            estimated: rng.next_u64(),
            capacity: rng.next_u64(),
        },
        1 => ServiceError::Cancelled,
        2 => ServiceError::DeadlineExceeded,
        3 => ServiceError::UnknownDataset(name(rng)),
        4 => ServiceError::UnknownNamespace(name(rng)),
        5 => ServiceError::Unauthorized(name(rng)),
        6 => ServiceError::InvalidName(name(rng)),
        7 => ServiceError::Shutdown,
        8 => ServiceError::ReplyTooLarge {
            size: rng.next_u64(),
            max: rng.next_u64(),
        },
        _ => ServiceError::Storage(storage_error(rng)),
    }
}

fn response(rng: &mut TestRng) -> QueryResponse {
    let payload = match rng.next_u64() % 6 {
        0 => ResponsePayload::Query(query_result(rng)),
        1 => ResponsePayload::Sql(sql_result(rng)),
        2 => ResponsePayload::Explain(format!("plan for {}", name(rng))),
        3 => ResponsePayload::CellStats {
            generation: rng.next_u64() % 1000,
            seq: rng.next_u64(),
            cells: (0..(rng.next_u64() as usize % 12))
                .map(|_| spade_server::CellInfo {
                    bbox: BBox::new(point(rng), point(rng)),
                    bytes: rng.next_u64(),
                    objects: rng.next_u64() as u32,
                })
                .collect(),
        },
        4 => {
            let base = rng.next_u64() % (1 << 40);
            ResponsePayload::WalBatch {
                leader_seq: rng.next_u64(),
                records: (0..(rng.next_u64() as usize % 8))
                    .map(|i| wal_record(rng, base + i as u64))
                    .collect(),
            }
        }
        _ => ResponsePayload::Ack {
            seq: rng.next_u64(),
            generation: rng.next_u64() % 1000,
        },
    };
    QueryResponse {
        payload,
        stats: stats(rng),
        queue_wait: Duration::from_nanos(rng.next_u64() % (1 << 40)),
        exec_time: Duration::from_nanos(rng.next_u64() % (1 << 40)),
    }
}

fn client_msg(rng: &mut TestRng) -> ClientMsg {
    match rng.next_u64() % 4 {
        0 => ClientMsg::Hello {
            version: rng.next_u64() as u16,
            namespace: name(rng),
            token: if rng.next_u64().is_multiple_of(2) {
                Some(name(rng))
            } else {
                None
            },
        },
        1 => ClientMsg::Cancel,
        _ => ClientMsg::Request(request(rng, 2)),
    }
}

fn server_msg(rng: &mut TestRng) -> ServerMsg {
    match rng.next_u64() % 4 {
        0 => ServerMsg::HelloOk {
            version: rng.next_u64() as u16,
            session: rng.next_u64(),
        },
        1 => ServerMsg::HelloErr { message: name(rng) },
        2 => ServerMsg::Reply(Err(service_error(rng))),
        _ => ServerMsg::Reply(Ok(response(rng))),
    }
}

// ---- Properties ----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn client_messages_round_trip(msg in FnStrategy(client_msg)) {
        let bytes = encode_client(&msg);
        let back = decode_client(&bytes).expect("decode what we encoded");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn server_messages_round_trip(msg in FnStrategy(server_msg)) {
        let bytes = encode_server(&msg);
        let back = decode_server(&bytes).expect("decode what we encoded");
        // QueryResponse has no PartialEq (it carries durations meant for
        // humans); Debug equality is field-complete for these types.
        prop_assert_eq!(format!("{back:?}"), format!("{msg:?}"));
    }

    #[test]
    fn truncated_client_payloads_error(msg in FnStrategy(client_msg), frac in 0.0f64..1.0) {
        let bytes = encode_client(&msg);
        if bytes.len() > 1 {
            let cut = 1 + ((bytes.len() - 1) as f64 * frac) as usize;
            if cut < bytes.len() {
                prop_assert!(decode_client(&bytes[..cut]).is_err(),
                    "truncation to {cut}/{} decoded", bytes.len());
            }
        }
    }

    #[test]
    fn truncated_server_payloads_error(msg in FnStrategy(server_msg), frac in 0.0f64..1.0) {
        let bytes = encode_server(&msg);
        if bytes.len() > 1 {
            let cut = 1 + ((bytes.len() - 1) as f64 * frac) as usize;
            if cut < bytes.len() {
                prop_assert!(decode_server(&bytes[..cut]).is_err(),
                    "truncation to {cut}/{} decoded", bytes.len());
            }
        }
    }

    #[test]
    fn trailing_garbage_errors(msg in FnStrategy(client_msg), extra in 1usize..16) {
        let mut bytes = encode_client(&msg);
        bytes.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert!(decode_client(&bytes).is_err());
    }

    #[test]
    fn corrupted_payloads_never_panic(msg in FnStrategy(server_msg), flips in prop::collection::vec((0.0f64..1.0, 0u64..8), 1..4)) {
        let mut bytes = encode_server(&msg);
        for (pos, bit) in flips {
            let i = ((bytes.len() - 1) as f64 * pos) as usize;
            bytes[i] ^= 1 << bit;
        }
        // Any outcome but a panic is acceptable: most flips error, a flip
        // inside a string or number decodes as a different valid value.
        let _ = decode_server(&bytes);
    }
}
