//! Length-prefixed binary framing.
//!
//! Every message on a SPADE connection — in either direction — travels in
//! one frame:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [request_id: u64 LE] [payload bytes]
//! ```
//!
//! `len` counts everything after the crc field (`request_id` plus the
//! payload), so the smallest legal value is 8. `crc32` (same polynomial and
//! table as the write-ahead log's frame checksum) covers those same bytes,
//! so a flipped bit anywhere in the id or payload is caught before the
//! payload is decoded. `request_id` is chosen by the client and echoed by
//! the server on the matching response, which is what lets one connection
//! keep many requests in flight and receive their responses out of order.
//!
//! A reader enforces a maximum frame size *before* allocating the body
//! buffer: a corrupt or hostile length prefix can neither allocate
//! gigabytes nor stall the connection half-way through a bogus frame.
//! Framing errors are not recoverable — once a crc fails or a length is
//! out of range the stream offset can no longer be trusted, so the
//! connection is dropped (and, server-side, its in-flight queries are
//! cancelled).

use spade_storage::wal::crc32;
use std::io::{self, Read, Write};

/// Version negotiated in the handshake. Bump on any incompatible change to
/// the framing or message encodings in [`crate::proto`].
pub const PROTOCOL_VERSION: u16 = 1;

/// Default cap on `len` (request id + payload). Large enough for any
/// realistic result table, small enough that a corrupt length prefix
/// cannot make the reader allocate without bound.
pub const DEFAULT_MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Bytes of `[len][crc32]` preceding the checksummed body.
pub const HEADER_LEN: usize = 8;

/// Smallest legal `len`: the 8-byte request id with an empty payload.
pub const MIN_BODY_LEN: u32 = 8;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub request_id: u64,
    pub payload: Vec<u8>,
}

/// Why a read or decode failed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The byte stream is not a valid frame or message: truncated frame,
    /// crc mismatch, unknown tag, short or trailing payload bytes.
    Corrupt(String),
    /// The length prefix exceeds the reader's cap; the frame was not read.
    FrameTooLarge { len: u32, max: u32 },
    /// Handshake version mismatch.
    Unsupported { client: u16, server: u16 },
    /// The server refused the handshake (unknown namespace, bad token, …).
    Handshake(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} B exceeds the {max} B cap")
            }
            WireError::Unsupported { client, server } => write!(
                f,
                "protocol version mismatch: client speaks v{client}, server v{server}"
            ),
            WireError::Handshake(why) => write!(f, "handshake refused: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Append one encoded frame to `out`. Used directly by the client's
/// write-coalescing path, which batches several frames into one
/// `write_all`.
pub fn encode_frame(out: &mut Vec<u8>, request_id: u64, payload: &[u8]) {
    let body_len = 8 + payload.len();
    assert!(body_len <= u32::MAX as usize, "frame payload too large");
    out.reserve(HEADER_LEN + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    // crc over [request_id][payload] without materialising the body twice:
    // the id bytes are fed through the same table-driven crc as the
    // payload by concatenation.
    let mut body = Vec::with_capacity(body_len);
    body.extend_from_slice(&request_id.to_le_bytes());
    body.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
}

/// Write one frame (a single `write_all`, so concurrent writers holding a
/// lock interleave whole frames, never partial ones).
pub fn write_frame(w: &mut impl Write, request_id: u64, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(HEADER_LEN + 8 + payload.len());
    encode_frame(&mut buf, request_id, payload);
    w.write_all(&buf)
}

/// Fill `buf` from the reader. `at_boundary` distinguishes a clean close
/// (EOF before the first header byte → [`WireError::Closed`]) from a
/// truncated frame (EOF anywhere else → [`WireError::Corrupt`]).
fn read_full(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && at_boundary {
                    WireError::Closed
                } else {
                    WireError::Corrupt("truncated frame".into())
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Read one frame, verifying the length against `max_frame` before
/// allocating and the crc before returning.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    read_full(r, &mut header, true)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len < MIN_BODY_LEN {
        return Err(WireError::Corrupt(format!(
            "frame length {len} below the {MIN_BODY_LEN} B minimum"
        )));
    }
    if len > max_frame {
        return Err(WireError::FrameTooLarge {
            len,
            max: max_frame,
        });
    }
    let mut body = vec![0u8; len as usize];
    read_full(r, &mut body, false)?;
    if crc32(&body) != crc {
        return Err(WireError::Corrupt("crc mismatch".into()));
    }
    let request_id = u64::from_le_bytes(body[0..8].try_into().unwrap());
    Ok(Frame {
        request_id,
        payload: body[8..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(id: u64, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_frame(&mut buf, id, payload);
        buf
    }

    #[test]
    fn round_trip() {
        let bytes = frame_bytes(42, b"hello");
        let f = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(f.request_id, 42);
        assert_eq!(f.payload, b"hello");
    }

    #[test]
    fn empty_payload_is_legal() {
        let bytes = frame_bytes(7, b"");
        let f = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(f.request_id, 7);
        assert!(f.payload.is_empty());
    }

    #[test]
    fn clean_eof_is_closed() {
        let err = read_frame(&mut Cursor::new(&[]), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, WireError::Closed));
    }

    #[test]
    fn truncation_anywhere_is_corrupt() {
        let bytes = frame_bytes(1, b"payload");
        for cut in 1..bytes.len() {
            let err = read_frame(&mut Cursor::new(&bytes[..cut]), DEFAULT_MAX_FRAME).unwrap_err();
            assert!(
                matches!(err, WireError::Corrupt(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        let good = frame_bytes(9, b"payload bytes");
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            // A flip may corrupt the length, the crc, the id, or the
            // payload; whatever it hits must NOT decode as the original
            // frame.
            if let Ok(f) = read_frame(&mut Cursor::new(&bad), DEFAULT_MAX_FRAME) {
                panic!("flip at {i} went undetected: {f:?}");
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_alloc() {
        let mut bytes = frame_bytes(1, b"x");
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&bytes), 1024).unwrap_err();
        assert!(matches!(
            err,
            WireError::FrameTooLarge {
                len: u32::MAX,
                max: 1024
            }
        ));
    }

    #[test]
    fn undersized_length_is_corrupt() {
        let mut bytes = frame_bytes(1, b"x");
        bytes[0..4].copy_from_slice(&4u32.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&bytes), 1024).unwrap_err();
        assert!(matches!(err, WireError::Corrupt(_)));
    }

    #[test]
    fn back_to_back_frames_stream() {
        let mut bytes = frame_bytes(1, b"a");
        bytes.extend_from_slice(&frame_bytes(2, b"bb"));
        let mut cur = Cursor::new(&bytes);
        assert_eq!(read_frame(&mut cur, 1024).unwrap().request_id, 1);
        assert_eq!(read_frame(&mut cur, 1024).unwrap().payload, b"bb");
        assert!(matches!(
            read_frame(&mut cur, 1024).unwrap_err(),
            WireError::Closed
        ));
    }
}
