//! # spade-net — the network front door of the SPADE query service
//!
//! [`spade_server::QueryService`] is an in-process service: sessions are
//! handles and replies travel over channels. This crate puts it on a TCP
//! socket without changing that model:
//!
//! - [`wire`] — versioned length-prefixed frames
//!   `[len][crc32][request_id][payload]` with a pre-allocation size cap;
//!   the crc reuses the write-ahead log's checksum.
//! - [`proto`] — binary encodings of the typed request/response surface
//!   ([`spade_server::QueryRequest`] and friends), reusing the storage
//!   layer's geometry and table codecs, plus the handshake messages
//!   (protocol version, tenant namespace, auth token).
//! - [`server`] — the listener: one reader/writer thread pair per
//!   connection, pipelined out-of-order responses keyed by `request_id`,
//!   cancellation-on-disconnect wired into the engine's cooperative
//!   [`spade_core::CancelToken`]s, and a graceful stop path that drains
//!   the service before closing sockets.
//!
//! The matching client lives in `spade-client`.

pub mod proto;
pub mod server;
pub mod wire;

pub use proto::{ClientMsg, ServerMsg};
pub use server::{NetServer, NetServerConfig};
pub use wire::{Frame, WireError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
