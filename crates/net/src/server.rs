//! The TCP front door over a [`QueryService`].
//!
//! One accept thread hands each connection to its own reader thread, which
//! spawns a paired writer thread; the pair gives every connection the
//! pipelined, out-of-order request/response discipline the protocol
//! promises:
//!
//! - The **reader** performs the handshake (protocol version, namespace,
//!   token → [`QueryService::session_in`]), then decodes request frames
//!   and submits each through [`spade_server::Session::submit_routed`]
//!   with a fresh [`CancelToken`] recorded in the connection's in-flight
//!   map. `Cancel` frames cooperatively cancel the in-flight request with
//!   the same id.
//! - The **writer** drains a `(request_id, reply)` channel fed directly by
//!   the service's worker threads and writes each reply as a frame echoing
//!   the request's id — whichever query finishes first answers first,
//!   regardless of submission order.
//!
//! When the reader sees EOF or a framing error it cancels every in-flight
//! token: a vanished client stops consuming GPU budget at the next grid
//! cell boundary, and the admission ledgers (device-wide and per-tenant)
//! are released by the normal worker completion path, so a disconnect can
//! never leak reserved bytes.
//!
//! [`NetServer::stop`] is the graceful path: stop accepting, drain the
//! service ([`QueryService::shutdown`] — every queued and running query
//! completes and its reply reaches its writer channel), then shut down
//! the read half of every socket. Each unblocked reader joins its writer
//! — which flushes the drained replies — before the socket closes, so a
//! graceful stop never loses an answered request.

use crate::proto::{decode_client, encode_server, ClientMsg, ServerMsg};
use crate::wire::{read_frame, write_frame, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use spade_core::CancelToken;
use spade_server::{QueryService, Reply, ServiceError};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Tuning for [`NetServer::serve`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Per-frame size cap enforced before allocation (both directions use
    /// the same constant; the client enforces its own copy).
    pub max_frame: u32,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

struct Inner {
    service: Arc<QueryService>,
    config: NetServerConfig,
    stop: AtomicBool,
    /// One entry per live connection: a stream clone (to unblock its
    /// reader on shutdown) and the reader thread's handle.
    conns: Mutex<Vec<(TcpStream, thread::JoinHandle<()>)>>,
}

/// A running TCP listener bound to a [`QueryService`].
pub struct NetServer {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Mutex<Option<thread::JoinHandle<()>>>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port — [`NetServer::addr`]
    /// reports the actual one) and start accepting connections against
    /// `service`.
    pub fn serve(
        service: Arc<QueryService>,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept so the accept loop can observe `stop`
        // without needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            service,
            config,
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = thread::Builder::new()
            .name("spade-net-accept".into())
            .spawn(move || accept_loop(&accept_inner, listener))
            .expect("spawn accept thread");
        Ok(NetServer {
            inner,
            addr,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.inner.service
    }

    /// Graceful shutdown: stop accepting, drain the service (queued and
    /// running queries complete and their replies are written), then close
    /// the remaining connections. Idempotent; `Drop` calls it.
    pub fn stop(&self) {
        if self.inner.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(h) = self.accept.lock().unwrap().take() {
            let _ = h.join();
        }
        // Drain before closing sockets: in-flight requests finish and
        // their replies reach the writer threads. New submissions are
        // answered `Shutdown` while draining.
        self.inner.service.shutdown();
        let conns = std::mem::take(&mut *self.inner.conns.lock().unwrap());
        // Read half only: this unblocks each reader (EOF), whose epilogue
        // joins its writer — so replies already drained into the writer
        // channels still reach the client before the socket closes.
        for (stream, _) in &conns {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for (_, handle) in conns {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    let mut next_conn = 0u64;
    while !inner.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // The accepted socket must block: reader and writer
                // threads rely on blocking reads/writes.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let Ok(clone) = stream.try_clone() else {
                    continue;
                };
                let conn_inner = Arc::clone(inner);
                let handle = thread::Builder::new()
                    .name(format!("spade-net-conn-{next_conn}"))
                    .spawn(move || handle_conn(&conn_inner, stream))
                    .expect("spawn connection thread");
                next_conn += 1;
                let mut conns = inner.conns.lock().unwrap();
                // Prune entries whose reader already exited so a chatty
                // workload of short connections does not grow the list.
                conns.retain(|(_, h)| !h.is_finished());
                conns.push((clone, handle));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Handshake, then pump frames until disconnect. Runs on the connection's
/// reader thread.
fn handle_conn(inner: &Arc<Inner>, mut stream: TcpStream) {
    let max_frame = inner.config.max_frame;

    // ---- Handshake: first frame must be Hello. ----
    let hello = match read_frame(&mut stream, max_frame) {
        Ok(f) => f,
        Err(_) => return,
    };
    let (version, namespace, token) = match decode_client(&hello.payload) {
        Ok(ClientMsg::Hello {
            version,
            namespace,
            token,
        }) => (version, namespace, token),
        _ => {
            // Anything else first is a protocol violation; say why and
            // hang up.
            let msg = ServerMsg::HelloErr {
                message: "expected Hello as the first frame".into(),
            };
            let _ = write_frame(&mut stream, hello.request_id, &encode_server(&msg));
            return;
        }
    };
    if version != PROTOCOL_VERSION {
        let msg = ServerMsg::HelloErr {
            message: format!(
                "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
            ),
        };
        let _ = write_frame(&mut stream, hello.request_id, &encode_server(&msg));
        return;
    }
    let session = match inner.service.session_in(&namespace, token.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            let msg = ServerMsg::HelloErr {
                message: e.to_string(),
            };
            let _ = write_frame(&mut stream, hello.request_id, &encode_server(&msg));
            return;
        }
    };
    let ok = ServerMsg::HelloOk {
        version: PROTOCOL_VERSION,
        session: session.id(),
    };
    if write_frame(&mut stream, hello.request_id, &encode_server(&ok)).is_err() {
        return;
    }

    // ---- Steady state: reader pumps requests, writer pumps replies. ----
    let in_flight: Arc<Mutex<HashMap<u64, CancelToken>>> = Arc::new(Mutex::new(HashMap::new()));
    let (tx, rx) = mpsc::channel::<(u64, Reply)>();
    let writer = {
        let mut stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        // The epilogue joins the writer before closing the socket (so a
        // graceful stop delivers every drained reply); a peer that stops
        // reading must not be able to wedge that join on a full socket
        // buffer, so writes time out.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let in_flight = Arc::clone(&in_flight);
        thread::Builder::new()
            .name("spade-net-writer".into())
            .spawn(move || {
                while let Ok((id, reply)) = rx.recv() {
                    in_flight.lock().unwrap().remove(&id);
                    let mut payload = encode_server(&ServerMsg::Reply(reply));
                    // The reader enforces `max_frame` on receive, client
                    // side included: a reply over the cap would be framed,
                    // sent, rejected by the client as FrameTooLarge, and
                    // take the whole connection (and every other in-flight
                    // request) down with it. Substitute a small in-band
                    // error instead — the request fails, the connection
                    // lives. `len` counts the 8-byte request id plus the
                    // payload, so the same sum is compared here.
                    let framed = payload.len() as u64 + 8;
                    if framed > u64::from(max_frame) {
                        let err = ServiceError::ReplyTooLarge {
                            size: framed,
                            max: u64::from(max_frame),
                        };
                        payload = encode_server(&ServerMsg::Reply(Err(err)));
                    }
                    if write_frame(&mut stream, id, &payload).is_err() {
                        // Client gone: stop writing. Dropping `rx` makes
                        // workers' sends no-ops (ReplySink ignores a
                        // closed channel).
                        break;
                    }
                }
            })
            .expect("spawn writer thread")
    };

    // Closed, corrupt, too-large, io — framing errors are not recoverable
    // mid-stream, so any read failure ends the loop.
    while let Ok(frame) = read_frame(&mut stream, max_frame) {
        match decode_client(&frame.payload) {
            Ok(ClientMsg::Request(request)) => {
                let token = CancelToken::new();
                let mut map = in_flight.lock().unwrap();
                if map.contains_key(&frame.request_id) {
                    // Reusing an in-flight id would make two replies
                    // indistinguishable; protocol violation.
                    break;
                }
                map.insert(frame.request_id, token.clone());
                drop(map);
                session.submit_routed(request, token, frame.request_id, tx.clone());
            }
            Ok(ClientMsg::Cancel) => {
                if let Some(t) = in_flight.lock().unwrap().get(&frame.request_id) {
                    t.cancel();
                }
            }
            Ok(ClientMsg::Hello { .. }) | Err(_) => break,
        }
    }

    // Disconnect (or protocol violation): cancel whatever is still in
    // flight so the engine stops at the next cell boundary; the worker
    // completion path releases the admission ledgers as usual.
    for (_, token) in in_flight.lock().unwrap().iter() {
        token.cancel();
    }
    drop(tx);
    // Join the writer BEFORE closing the socket: on a graceful stop the
    // service has already drained every in-flight reply into the channel,
    // and closing first would race the writer and lose answered requests.
    // The writer exits once every outstanding reply has been sent (or the
    // socket broke / a write timed out) and all sender clones held by
    // queued jobs are gone — cancelled jobs still complete and reply.
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

/// The version string servers log on start; handy for examples.
pub fn banner() -> String {
    format!("spade-net protocol v{PROTOCOL_VERSION}")
}
