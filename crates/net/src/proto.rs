//! Wire encoding of the service's typed request/response surface.
//!
//! The protocol reuses the storage layer's little-endian cursor primitives,
//! its WKB-like geometry blob ([`spade_storage::geom`]) and its relational
//! table codec ([`spade_storage::persist`]), so the network layer adds no
//! second serialization scheme to the codebase — a geometry crosses the
//! wire in exactly the bytes it would occupy in a stored cell.
//!
//! Every enum is encoded as a one-byte tag followed by its fields; strings
//! are `u32` length + UTF-8 bytes; nested blobs (geometry, tables) are
//! `u32` length + codec bytes. Decoders are strict: unknown tags, short
//! buffers, and trailing bytes are all [`WireError::Corrupt`] — a decoder
//! that silently tolerated them would mask framing bugs that the crc
//! cannot catch (the crc protects transport, not encoding).

use crate::wire::WireError;
use spade_core::distance::DistanceConstraint;
use spade_core::query::{JoinQuery, QueryResult, SelectQuery};
use spade_core::stats::CacheOutcome;
use spade_core::QueryStats;
use spade_geometry::{BBox, Geometry, Point, Polygon};
use spade_server::{QueryRequest, QueryResponse, ResponsePayload, ServiceError};
use spade_storage::column::DataType;
use spade_storage::cursor::{
    get_bytes, get_f64_le, get_u16_le, get_u32_le, get_u64_le, get_u8, put_f64_le, put_slice,
    put_str, put_u16_le, put_u32_le, put_u64_le, put_u8,
};
use spade_storage::geom::{decode_geometry, encode_geometry};
use spade_storage::persist::{decode_table, encode_table};
use spade_storage::StorageError;
use std::time::Duration;

/// What a client sends. The frame's `request_id` identifies the request a
/// [`ClientMsg::Cancel`] targets and the one a [`ClientMsg::Request`]'s
/// response will echo.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// First frame on every connection: protocol version, tenant
    /// namespace, and that namespace's auth token (if it has one).
    Hello {
        version: u16,
        namespace: String,
        token: Option<String>,
    },
    /// Submit the query; the response frame echoes this frame's id.
    Request(QueryRequest),
    /// Cooperatively cancel the in-flight request whose id this frame
    /// carries. No reply of its own — the cancelled request's reply
    /// reports [`ServiceError::Cancelled`] (or its result, if it won the
    /// race).
    Cancel,
}

/// What the server sends.
// Reply dominates the size, but it also dominates the traffic — every
// frame except the two handshake ones is a Reply — so boxing would add an
// allocation to the hot path to slim the cold one.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ServerMsg {
    /// Handshake accepted; `session` is the server-side session id (useful
    /// in logs and `metrics_text` fairness accounting).
    HelloOk { version: u16, session: u64 },
    /// Handshake refused; the connection closes after this frame.
    HelloErr { message: String },
    /// The reply to the request with this frame's id.
    Reply(Result<QueryResponse, ServiceError>),
}

const CLIENT_HELLO: u8 = 1;
const CLIENT_REQUEST: u8 = 2;
const CLIENT_CANCEL: u8 = 3;

const SERVER_HELLO_OK: u8 = 1;
const SERVER_HELLO_ERR: u8 = 2;
const SERVER_REPLY_OK: u8 = 3;
const SERVER_REPLY_ERR: u8 = 4;

fn corrupt(what: &str) -> WireError {
    WireError::Corrupt(format!("short or invalid {what}"))
}

fn get_string(buf: &mut &[u8]) -> Result<String, WireError> {
    let len = get_u32_le(buf).ok_or_else(|| corrupt("string length"))? as usize;
    let bytes = get_bytes(buf, len).ok_or_else(|| corrupt("string bytes"))?;
    String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string utf-8"))
}

fn put_opt_str(buf: &mut Vec<u8>, s: &Option<String>) {
    match s {
        Some(s) => {
            put_u8(buf, 1);
            put_str(buf, s);
        }
        None => put_u8(buf, 0),
    }
}

fn get_opt_str(buf: &mut &[u8]) -> Result<Option<String>, WireError> {
    match get_u8(buf).ok_or_else(|| corrupt("option flag"))? {
        0 => Ok(None),
        1 => Ok(Some(get_string(buf)?)),
        _ => Err(corrupt("option flag")),
    }
}

/// Geometry as a length-prefixed storage blob.
fn put_geometry(buf: &mut Vec<u8>, g: &Geometry) {
    let blob = encode_geometry(g);
    put_u32_le(buf, blob.len() as u32);
    put_slice(buf, &blob);
}

fn get_geometry(buf: &mut &[u8]) -> Result<Geometry, WireError> {
    let len = get_u32_le(buf).ok_or_else(|| corrupt("geometry length"))? as usize;
    let blob = get_bytes(buf, len).ok_or_else(|| corrupt("geometry bytes"))?;
    decode_geometry(blob).map_err(|e| WireError::Corrupt(format!("geometry blob: {e}")))
}

fn put_polygon(buf: &mut Vec<u8>, p: &Polygon) {
    put_geometry(buf, &Geometry::Polygon(p.clone()));
}

fn get_polygon(buf: &mut &[u8]) -> Result<Polygon, WireError> {
    match get_geometry(buf)? {
        Geometry::Polygon(p) => Ok(p),
        other => Err(WireError::Corrupt(format!(
            "expected polygon blob, got {other:?}"
        ))),
    }
}

fn put_point(buf: &mut Vec<u8>, p: Point) {
    put_f64_le(buf, p.x);
    put_f64_le(buf, p.y);
}

fn get_point(buf: &mut &[u8]) -> Result<Point, WireError> {
    let x = get_f64_le(buf).ok_or_else(|| corrupt("point x"))?;
    let y = get_f64_le(buf).ok_or_else(|| corrupt("point y"))?;
    Ok(Point::new(x, y))
}

fn put_bbox(buf: &mut Vec<u8>, b: &BBox) {
    put_point(buf, b.min);
    put_point(buf, b.max);
}

fn get_bbox(buf: &mut &[u8]) -> Result<BBox, WireError> {
    let min = get_point(buf)?;
    let max = get_point(buf)?;
    Ok(BBox::new(min, max))
}

fn put_duration(buf: &mut Vec<u8>, d: Duration) {
    put_u64_le(buf, d.as_nanos().min(u64::MAX as u128) as u64);
}

fn get_duration(buf: &mut &[u8]) -> Result<Duration, WireError> {
    Ok(Duration::from_nanos(
        get_u64_le(buf).ok_or_else(|| corrupt("duration"))?,
    ))
}

fn put_distance_constraint(buf: &mut Vec<u8>, c: &DistanceConstraint) {
    let g = match c {
        DistanceConstraint::Point(p) => Geometry::Point(*p),
        DistanceConstraint::Line(l) => Geometry::LineString(l.clone()),
        DistanceConstraint::Polygon(p) => Geometry::Polygon(p.clone()),
    };
    put_geometry(buf, &g);
}

fn get_distance_constraint(buf: &mut &[u8]) -> Result<DistanceConstraint, WireError> {
    match get_geometry(buf)? {
        Geometry::Point(p) => Ok(DistanceConstraint::Point(p)),
        Geometry::LineString(l) => Ok(DistanceConstraint::Line(l)),
        Geometry::Polygon(p) => Ok(DistanceConstraint::Polygon(p)),
        other => Err(WireError::Corrupt(format!(
            "multipolygon is not a distance constraint: {other:?}"
        ))),
    }
}

const SELECT_INTERSECTS: u8 = 1;
const SELECT_RANGE: u8 = 2;
const SELECT_CONTAINED: u8 = 3;
const SELECT_WITHIN_DISTANCE: u8 = 4;
const SELECT_KNN: u8 = 5;

fn put_select(buf: &mut Vec<u8>, q: &SelectQuery) {
    match q {
        SelectQuery::Intersects(p) => {
            put_u8(buf, SELECT_INTERSECTS);
            put_polygon(buf, p);
        }
        SelectQuery::Range(b) => {
            put_u8(buf, SELECT_RANGE);
            put_bbox(buf, b);
        }
        SelectQuery::Contained(p) => {
            put_u8(buf, SELECT_CONTAINED);
            put_polygon(buf, p);
        }
        SelectQuery::WithinDistance(c, r) => {
            put_u8(buf, SELECT_WITHIN_DISTANCE);
            put_distance_constraint(buf, c);
            put_f64_le(buf, *r);
        }
        SelectQuery::Knn(p, k) => {
            put_u8(buf, SELECT_KNN);
            put_point(buf, *p);
            put_u64_le(buf, *k as u64);
        }
    }
}

fn get_select(buf: &mut &[u8]) -> Result<SelectQuery, WireError> {
    match get_u8(buf).ok_or_else(|| corrupt("select tag"))? {
        SELECT_INTERSECTS => Ok(SelectQuery::Intersects(get_polygon(buf)?)),
        SELECT_RANGE => Ok(SelectQuery::Range(get_bbox(buf)?)),
        SELECT_CONTAINED => Ok(SelectQuery::Contained(get_polygon(buf)?)),
        SELECT_WITHIN_DISTANCE => {
            let c = get_distance_constraint(buf)?;
            let r = get_f64_le(buf).ok_or_else(|| corrupt("distance radius"))?;
            Ok(SelectQuery::WithinDistance(c, r))
        }
        SELECT_KNN => {
            let p = get_point(buf)?;
            let k = get_u64_le(buf).ok_or_else(|| corrupt("knn k"))? as usize;
            Ok(SelectQuery::Knn(p, k))
        }
        t => Err(WireError::Corrupt(format!("unknown select tag {t}"))),
    }
}

const JOIN_INTERSECTS: u8 = 1;
const JOIN_WITHIN_DISTANCE: u8 = 2;
const JOIN_KNN: u8 = 3;
const JOIN_COUNT_POINTS: u8 = 4;

fn put_join(buf: &mut Vec<u8>, q: &JoinQuery) {
    match q {
        JoinQuery::Intersects => put_u8(buf, JOIN_INTERSECTS),
        JoinQuery::WithinDistance(r) => {
            put_u8(buf, JOIN_WITHIN_DISTANCE);
            put_f64_le(buf, *r);
        }
        JoinQuery::Knn(k) => {
            put_u8(buf, JOIN_KNN);
            put_u64_le(buf, *k as u64);
        }
        JoinQuery::CountPoints => put_u8(buf, JOIN_COUNT_POINTS),
    }
}

fn get_join(buf: &mut &[u8]) -> Result<JoinQuery, WireError> {
    match get_u8(buf).ok_or_else(|| corrupt("join tag"))? {
        JOIN_INTERSECTS => Ok(JoinQuery::Intersects),
        JOIN_WITHIN_DISTANCE => Ok(JoinQuery::WithinDistance(
            get_f64_le(buf).ok_or_else(|| corrupt("join radius"))?,
        )),
        JOIN_KNN => Ok(JoinQuery::Knn(
            get_u64_le(buf).ok_or_else(|| corrupt("join k"))? as usize,
        )),
        JOIN_COUNT_POINTS => Ok(JoinQuery::CountPoints),
        t => Err(WireError::Corrupt(format!("unknown join tag {t}"))),
    }
}

const REQ_SELECT: u8 = 1;
const REQ_JOIN: u8 = 2;
const REQ_SQL: u8 = 3;
const REQ_EXPLAIN: u8 = 4;
const REQ_INSERT: u8 = 5;
const REQ_DELETE: u8 = 6;
const REQ_FLUSH: u8 = 7;
const REQ_SHARD_SELECT: u8 = 8;
const REQ_SHARD_JOIN: u8 = 9;
const REQ_CELL_STATS: u8 = 10;
const REQ_WAL_FETCH: u8 = 11;

fn put_request(buf: &mut Vec<u8>, req: &QueryRequest) {
    match req {
        QueryRequest::Select { dataset, query } => {
            put_u8(buf, REQ_SELECT);
            put_str(buf, dataset);
            put_select(buf, query);
        }
        QueryRequest::Join { left, right, query } => {
            put_u8(buf, REQ_JOIN);
            put_str(buf, left);
            put_str(buf, right);
            put_join(buf, query);
        }
        QueryRequest::Sql(stmt) => {
            put_u8(buf, REQ_SQL);
            put_str(buf, stmt);
        }
        QueryRequest::Explain { analyze, request } => {
            put_u8(buf, REQ_EXPLAIN);
            put_u8(buf, u8::from(*analyze));
            put_request(buf, request);
        }
        QueryRequest::Insert {
            dataset,
            id,
            geometry,
        } => {
            put_u8(buf, REQ_INSERT);
            put_str(buf, dataset);
            put_u32_le(buf, *id);
            put_geometry(buf, geometry);
        }
        QueryRequest::Delete { dataset, id } => {
            put_u8(buf, REQ_DELETE);
            put_str(buf, dataset);
            put_u32_le(buf, *id);
        }
        QueryRequest::Flush { dataset } => {
            put_u8(buf, REQ_FLUSH);
            put_str(buf, dataset);
        }
        QueryRequest::ShardSelect {
            dataset,
            query,
            cells,
            include_delta,
        } => {
            put_u8(buf, REQ_SHARD_SELECT);
            put_str(buf, dataset);
            put_select(buf, query);
            put_u32_le(buf, cells.0);
            put_u32_le(buf, cells.1);
            put_u8(buf, u8::from(*include_delta));
        }
        QueryRequest::ShardJoin {
            left,
            right,
            query,
            pairs,
            include_delta,
        } => {
            put_u8(buf, REQ_SHARD_JOIN);
            put_str(buf, left);
            put_str(buf, right);
            put_join(buf, query);
            put_u32_le(buf, pairs.len() as u32);
            for (l, r) in pairs {
                put_u32_le(buf, *l);
                put_u32_le(buf, *r);
            }
            put_u8(buf, u8::from(*include_delta));
        }
        QueryRequest::CellStats { dataset } => {
            put_u8(buf, REQ_CELL_STATS);
            put_str(buf, dataset);
        }
        QueryRequest::WalFetch { after_seq, limit } => {
            put_u8(buf, REQ_WAL_FETCH);
            put_u64_le(buf, *after_seq);
            put_u32_le(buf, *limit);
        }
    }
}

fn get_bool(buf: &mut &[u8], what: &str) -> Result<bool, WireError> {
    match get_u8(buf).ok_or_else(|| WireError::Corrupt(format!("short or invalid {what}")))? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::Corrupt(format!("short or invalid {what}"))),
    }
}

fn get_request(buf: &mut &[u8]) -> Result<QueryRequest, WireError> {
    match get_u8(buf).ok_or_else(|| corrupt("request tag"))? {
        REQ_SELECT => Ok(QueryRequest::Select {
            dataset: get_string(buf)?,
            query: get_select(buf)?,
        }),
        REQ_JOIN => Ok(QueryRequest::Join {
            left: get_string(buf)?,
            right: get_string(buf)?,
            query: get_join(buf)?,
        }),
        REQ_SQL => Ok(QueryRequest::Sql(get_string(buf)?)),
        REQ_EXPLAIN => {
            let analyze = match get_u8(buf).ok_or_else(|| corrupt("explain flag"))? {
                0 => false,
                1 => true,
                _ => return Err(corrupt("explain flag")),
            };
            Ok(QueryRequest::Explain {
                analyze,
                request: Box::new(get_request(buf)?),
            })
        }
        REQ_INSERT => Ok(QueryRequest::Insert {
            dataset: get_string(buf)?,
            id: get_u32_le(buf).ok_or_else(|| corrupt("insert id"))?,
            geometry: get_geometry(buf)?,
        }),
        REQ_DELETE => Ok(QueryRequest::Delete {
            dataset: get_string(buf)?,
            id: get_u32_le(buf).ok_or_else(|| corrupt("delete id"))?,
        }),
        REQ_FLUSH => Ok(QueryRequest::Flush {
            dataset: get_string(buf)?,
        }),
        REQ_SHARD_SELECT => {
            let dataset = get_string(buf)?;
            let query = get_select(buf)?;
            let lo = get_u32_le(buf).ok_or_else(|| corrupt("shard lo"))?;
            let hi = get_u32_le(buf).ok_or_else(|| corrupt("shard hi"))?;
            let include_delta = get_bool(buf, "shard delta flag")?;
            Ok(QueryRequest::ShardSelect {
                dataset,
                query,
                cells: (lo, hi),
                include_delta,
            })
        }
        REQ_SHARD_JOIN => {
            let left = get_string(buf)?;
            let right = get_string(buf)?;
            let query = get_join(buf)?;
            let n = get_u32_le(buf).ok_or_else(|| corrupt("pair count"))? as usize;
            if n > buf.len() {
                return Err(corrupt("pair count"));
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let l = get_u32_le(buf).ok_or_else(|| corrupt("pair left cell"))?;
                let r = get_u32_le(buf).ok_or_else(|| corrupt("pair right cell"))?;
                pairs.push((l, r));
            }
            let include_delta = get_bool(buf, "shard delta flag")?;
            Ok(QueryRequest::ShardJoin {
                left,
                right,
                query,
                pairs,
                include_delta,
            })
        }
        REQ_CELL_STATS => Ok(QueryRequest::CellStats {
            dataset: get_string(buf)?,
        }),
        REQ_WAL_FETCH => Ok(QueryRequest::WalFetch {
            after_seq: get_u64_le(buf).ok_or_else(|| corrupt("wal-fetch seq"))?,
            limit: get_u32_le(buf).ok_or_else(|| corrupt("wal-fetch limit"))?,
        }),
        t => Err(WireError::Corrupt(format!("unknown request tag {t}"))),
    }
}

const RESULT_IDS: u8 = 1;
const RESULT_RANKED: u8 = 2;
const RESULT_PAIRS: u8 = 3;
const RESULT_RANKED_PAIRS: u8 = 4;
const RESULT_COUNTS: u8 = 5;

fn put_result(buf: &mut Vec<u8>, r: &QueryResult) {
    match r {
        QueryResult::Ids(v) => {
            put_u8(buf, RESULT_IDS);
            put_u32_le(buf, v.len() as u32);
            for id in v {
                put_u32_le(buf, *id);
            }
        }
        QueryResult::Ranked(v) => {
            put_u8(buf, RESULT_RANKED);
            put_u32_le(buf, v.len() as u32);
            for (id, d) in v {
                put_u32_le(buf, *id);
                put_f64_le(buf, *d);
            }
        }
        QueryResult::Pairs(v) => {
            put_u8(buf, RESULT_PAIRS);
            put_u32_le(buf, v.len() as u32);
            for (a, b) in v {
                put_u32_le(buf, *a);
                put_u32_le(buf, *b);
            }
        }
        QueryResult::RankedPairs(v) => {
            put_u8(buf, RESULT_RANKED_PAIRS);
            put_u32_le(buf, v.len() as u32);
            for (a, b, d) in v {
                put_u32_le(buf, *a);
                put_u32_le(buf, *b);
                put_f64_le(buf, *d);
            }
        }
        QueryResult::Counts(v) => {
            put_u8(buf, RESULT_COUNTS);
            put_u32_le(buf, v.len() as u32);
            for (id, n) in v {
                put_u32_le(buf, *id);
                put_u64_le(buf, *n);
            }
        }
    }
}

fn get_result(buf: &mut &[u8]) -> Result<QueryResult, WireError> {
    let tag = get_u8(buf).ok_or_else(|| corrupt("result tag"))?;
    let n = get_u32_le(buf).ok_or_else(|| corrupt("result count"))? as usize;
    // The frame cap bounds `n` indirectly (each element is ≥ 4 bytes and
    // the payload already arrived); still cap the pre-allocation so a
    // corrupt count inside a small frame fails on decode, not on alloc.
    if n > buf.len() {
        return Err(corrupt("result count"));
    }
    match tag {
        RESULT_IDS => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(get_u32_le(buf).ok_or_else(|| corrupt("result id"))?);
            }
            Ok(QueryResult::Ids(v))
        }
        RESULT_RANKED => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let id = get_u32_le(buf).ok_or_else(|| corrupt("ranked id"))?;
                let d = get_f64_le(buf).ok_or_else(|| corrupt("ranked distance"))?;
                v.push((id, d));
            }
            Ok(QueryResult::Ranked(v))
        }
        RESULT_PAIRS => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let a = get_u32_le(buf).ok_or_else(|| corrupt("pair left"))?;
                let b = get_u32_le(buf).ok_or_else(|| corrupt("pair right"))?;
                v.push((a, b));
            }
            Ok(QueryResult::Pairs(v))
        }
        RESULT_RANKED_PAIRS => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let a = get_u32_le(buf).ok_or_else(|| corrupt("pair left"))?;
                let b = get_u32_le(buf).ok_or_else(|| corrupt("pair right"))?;
                let d = get_f64_le(buf).ok_or_else(|| corrupt("pair distance"))?;
                v.push((a, b, d));
            }
            Ok(QueryResult::RankedPairs(v))
        }
        RESULT_COUNTS => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let id = get_u32_le(buf).ok_or_else(|| corrupt("count id"))?;
                let c = get_u64_le(buf).ok_or_else(|| corrupt("count value"))?;
                v.push((id, c));
            }
            Ok(QueryResult::Counts(v))
        }
        t => Err(WireError::Corrupt(format!("unknown result tag {t}"))),
    }
}

const SQL_AFFECTED: u8 = 1;
const SQL_ROWS: u8 = 2;

fn put_sql_result(buf: &mut Vec<u8>, r: &spade_storage::sql::SqlResult) {
    match r {
        spade_storage::sql::SqlResult::Affected(n) => {
            put_u8(buf, SQL_AFFECTED);
            put_u64_le(buf, *n as u64);
        }
        spade_storage::sql::SqlResult::Rows(t) => {
            put_u8(buf, SQL_ROWS);
            let blob = encode_table(t);
            put_u32_le(buf, blob.len() as u32);
            put_slice(buf, &blob);
        }
    }
}

fn get_sql_result(buf: &mut &[u8]) -> Result<spade_storage::sql::SqlResult, WireError> {
    match get_u8(buf).ok_or_else(|| corrupt("sql result tag"))? {
        SQL_AFFECTED => Ok(spade_storage::sql::SqlResult::Affected(
            get_u64_le(buf).ok_or_else(|| corrupt("affected count"))? as usize,
        )),
        SQL_ROWS => {
            let len = get_u32_le(buf).ok_or_else(|| corrupt("table length"))? as usize;
            let blob = get_bytes(buf, len).ok_or_else(|| corrupt("table bytes"))?;
            let t = decode_table(blob).map_err(|e| WireError::Corrupt(format!("table: {e}")))?;
            Ok(spade_storage::sql::SqlResult::Rows(t))
        }
        t => Err(WireError::Corrupt(format!("unknown sql result tag {t}"))),
    }
}

fn put_cache_outcome(buf: &mut Vec<u8>, c: CacheOutcome) {
    put_u8(
        buf,
        match c {
            CacheOutcome::Bypass => 0,
            CacheOutcome::Miss => 1,
            CacheOutcome::Hit => 2,
            CacheOutcome::CoalescedHit => 3,
        },
    );
}

fn get_cache_outcome(buf: &mut &[u8]) -> Result<CacheOutcome, WireError> {
    match get_u8(buf).ok_or_else(|| corrupt("cache outcome"))? {
        0 => Ok(CacheOutcome::Bypass),
        1 => Ok(CacheOutcome::Miss),
        2 => Ok(CacheOutcome::Hit),
        3 => Ok(CacheOutcome::CoalescedHit),
        t => Err(WireError::Corrupt(format!("unknown cache outcome {t}"))),
    }
}

fn put_stats(buf: &mut Vec<u8>, s: &QueryStats) {
    put_duration(buf, s.io_time);
    put_duration(buf, s.gpu_time);
    put_duration(buf, s.polygon_time);
    put_duration(buf, s.cpu_time);
    put_duration(buf, s.total_time);
    put_duration(buf, s.io_hidden);
    put_u64_le(buf, s.bytes_from_disk);
    put_u64_le(buf, s.bytes_to_device);
    put_u64_le(buf, s.passes);
    put_u64_le(buf, s.cells_loaded);
    put_u64_le(buf, s.result_count);
    put_u64_le(buf, s.prefetch_hits);
    put_u64_le(buf, s.prefetch_misses);
    put_u64_le(buf, s.cache_hits);
    put_cache_outcome(buf, s.result_cache);
}

fn get_stats(buf: &mut &[u8]) -> Result<QueryStats, WireError> {
    let stat = |buf: &mut &[u8]| get_u64_le(buf).ok_or_else(|| corrupt("stats"));
    Ok(QueryStats {
        io_time: get_duration(buf)?,
        gpu_time: get_duration(buf)?,
        polygon_time: get_duration(buf)?,
        cpu_time: get_duration(buf)?,
        total_time: get_duration(buf)?,
        io_hidden: get_duration(buf)?,
        bytes_from_disk: stat(buf)?,
        bytes_to_device: stat(buf)?,
        passes: stat(buf)?,
        cells_loaded: stat(buf)?,
        result_count: stat(buf)?,
        prefetch_hits: stat(buf)?,
        prefetch_misses: stat(buf)?,
        cache_hits: stat(buf)?,
        result_cache: get_cache_outcome(buf)?,
    })
}

const PAYLOAD_QUERY: u8 = 1;
const PAYLOAD_SQL: u8 = 2;
const PAYLOAD_EXPLAIN: u8 = 3;
const PAYLOAD_ACK: u8 = 4;
const PAYLOAD_CELL_STATS: u8 = 5;
const PAYLOAD_WAL_BATCH: u8 = 6;

fn put_payload(buf: &mut Vec<u8>, p: &ResponsePayload) {
    match p {
        ResponsePayload::Query(r) => {
            put_u8(buf, PAYLOAD_QUERY);
            put_result(buf, r);
        }
        ResponsePayload::Sql(r) => {
            put_u8(buf, PAYLOAD_SQL);
            put_sql_result(buf, r);
        }
        ResponsePayload::Explain(text) => {
            put_u8(buf, PAYLOAD_EXPLAIN);
            put_str(buf, text);
        }
        ResponsePayload::Ack { seq, generation } => {
            put_u8(buf, PAYLOAD_ACK);
            put_u64_le(buf, *seq);
            put_u64_le(buf, *generation);
        }
        ResponsePayload::CellStats {
            generation,
            seq,
            cells,
        } => {
            put_u8(buf, PAYLOAD_CELL_STATS);
            put_u64_le(buf, *generation);
            put_u64_le(buf, *seq);
            put_u32_le(buf, cells.len() as u32);
            for c in cells {
                put_bbox(buf, &c.bbox);
                put_u64_le(buf, c.bytes);
                put_u32_le(buf, c.objects);
            }
        }
        // WAL records cross the wire as length-prefixed storage blobs —
        // the same bytes they occupy inside a segment, so replication
        // inherits the WAL codec's round-trip guarantees for free.
        ResponsePayload::WalBatch {
            leader_seq,
            records,
        } => {
            put_u8(buf, PAYLOAD_WAL_BATCH);
            put_u64_le(buf, *leader_seq);
            put_u32_le(buf, records.len() as u32);
            for rec in records {
                let blob = spade_storage::wal::encode_record(rec);
                put_u32_le(buf, blob.len() as u32);
                put_slice(buf, &blob);
            }
        }
    }
}

fn get_payload(buf: &mut &[u8]) -> Result<ResponsePayload, WireError> {
    match get_u8(buf).ok_or_else(|| corrupt("payload tag"))? {
        PAYLOAD_QUERY => Ok(ResponsePayload::Query(get_result(buf)?)),
        PAYLOAD_SQL => Ok(ResponsePayload::Sql(get_sql_result(buf)?)),
        PAYLOAD_EXPLAIN => Ok(ResponsePayload::Explain(get_string(buf)?)),
        PAYLOAD_ACK => {
            let seq = get_u64_le(buf).ok_or_else(|| corrupt("ack seq"))?;
            let generation = get_u64_le(buf).ok_or_else(|| corrupt("ack generation"))?;
            Ok(ResponsePayload::Ack { seq, generation })
        }
        PAYLOAD_CELL_STATS => {
            let generation = get_u64_le(buf).ok_or_else(|| corrupt("stats generation"))?;
            let seq = get_u64_le(buf).ok_or_else(|| corrupt("stats seq"))?;
            let n = get_u32_le(buf).ok_or_else(|| corrupt("cell count"))? as usize;
            if n > buf.len() {
                return Err(corrupt("cell count"));
            }
            let mut cells = Vec::with_capacity(n);
            for _ in 0..n {
                let bbox = get_bbox(buf)?;
                let bytes = get_u64_le(buf).ok_or_else(|| corrupt("cell bytes"))?;
                let objects = get_u32_le(buf).ok_or_else(|| corrupt("cell objects"))?;
                cells.push(spade_server::CellInfo {
                    bbox,
                    bytes,
                    objects,
                });
            }
            Ok(ResponsePayload::CellStats {
                generation,
                seq,
                cells,
            })
        }
        PAYLOAD_WAL_BATCH => {
            let leader_seq = get_u64_le(buf).ok_or_else(|| corrupt("batch leader seq"))?;
            let n = get_u32_le(buf).ok_or_else(|| corrupt("batch count"))? as usize;
            if n > buf.len() {
                return Err(corrupt("batch count"));
            }
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                let len = get_u32_le(buf).ok_or_else(|| corrupt("record length"))? as usize;
                let blob = get_bytes(buf, len).ok_or_else(|| corrupt("record bytes"))?;
                let rec = spade_storage::wal::decode_record(blob)
                    .map_err(|e| WireError::Corrupt(format!("wal record: {e}")))?;
                records.push(rec);
            }
            Ok(ResponsePayload::WalBatch {
                leader_seq,
                records,
            })
        }
        t => Err(WireError::Corrupt(format!("unknown payload tag {t}"))),
    }
}

fn put_data_type(buf: &mut Vec<u8>, t: DataType) {
    put_u8(
        buf,
        match t {
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Str => 3,
            DataType::Bytes => 4,
        },
    );
}

fn get_data_type(buf: &mut &[u8]) -> Result<DataType, WireError> {
    match get_u8(buf).ok_or_else(|| corrupt("data type"))? {
        1 => Ok(DataType::Int),
        2 => Ok(DataType::Float),
        3 => Ok(DataType::Str),
        4 => Ok(DataType::Bytes),
        t => Err(WireError::Corrupt(format!("unknown data type {t}"))),
    }
}

const STORAGE_UNKNOWN_TABLE: u8 = 1;
const STORAGE_UNKNOWN_COLUMN: u8 = 2;
const STORAGE_TYPE_MISMATCH: u8 = 3;
const STORAGE_ARITY: u8 = 4;
const STORAGE_DUPLICATE_TABLE: u8 = 5;
const STORAGE_PARSE: u8 = 6;
const STORAGE_IO: u8 = 7;
const STORAGE_CORRUPT: u8 = 8;
const STORAGE_CANCELLED: u8 = 9;

fn put_storage_error(buf: &mut Vec<u8>, e: &StorageError) {
    match e {
        StorageError::UnknownTable(s) => {
            put_u8(buf, STORAGE_UNKNOWN_TABLE);
            put_str(buf, s);
        }
        StorageError::UnknownColumn(s) => {
            put_u8(buf, STORAGE_UNKNOWN_COLUMN);
            put_str(buf, s);
        }
        StorageError::TypeMismatch { column, expected } => {
            put_u8(buf, STORAGE_TYPE_MISMATCH);
            put_str(buf, column);
            put_data_type(buf, *expected);
        }
        StorageError::Arity { expected, got } => {
            put_u8(buf, STORAGE_ARITY);
            put_u64_le(buf, *expected as u64);
            put_u64_le(buf, *got as u64);
        }
        StorageError::DuplicateTable(s) => {
            put_u8(buf, STORAGE_DUPLICATE_TABLE);
            put_str(buf, s);
        }
        StorageError::Parse(s) => {
            put_u8(buf, STORAGE_PARSE);
            put_str(buf, s);
        }
        StorageError::Io(s) => {
            put_u8(buf, STORAGE_IO);
            put_str(buf, s);
        }
        StorageError::Corrupt(s) => {
            put_u8(buf, STORAGE_CORRUPT);
            put_str(buf, s);
        }
        StorageError::Cancelled => put_u8(buf, STORAGE_CANCELLED),
    }
}

fn get_storage_error(buf: &mut &[u8]) -> Result<StorageError, WireError> {
    match get_u8(buf).ok_or_else(|| corrupt("storage error tag"))? {
        STORAGE_UNKNOWN_TABLE => Ok(StorageError::UnknownTable(get_string(buf)?)),
        STORAGE_UNKNOWN_COLUMN => Ok(StorageError::UnknownColumn(get_string(buf)?)),
        STORAGE_TYPE_MISMATCH => Ok(StorageError::TypeMismatch {
            column: get_string(buf)?,
            expected: get_data_type(buf)?,
        }),
        STORAGE_ARITY => Ok(StorageError::Arity {
            expected: get_u64_le(buf).ok_or_else(|| corrupt("arity"))? as usize,
            got: get_u64_le(buf).ok_or_else(|| corrupt("arity"))? as usize,
        }),
        STORAGE_DUPLICATE_TABLE => Ok(StorageError::DuplicateTable(get_string(buf)?)),
        STORAGE_PARSE => Ok(StorageError::Parse(get_string(buf)?)),
        STORAGE_IO => Ok(StorageError::Io(get_string(buf)?)),
        STORAGE_CORRUPT => Ok(StorageError::Corrupt(get_string(buf)?)),
        STORAGE_CANCELLED => Ok(StorageError::Cancelled),
        t => Err(WireError::Corrupt(format!("unknown storage error tag {t}"))),
    }
}

const ERR_REJECTED: u8 = 1;
const ERR_CANCELLED: u8 = 2;
const ERR_DEADLINE: u8 = 3;
const ERR_UNKNOWN_DATASET: u8 = 4;
const ERR_UNKNOWN_NAMESPACE: u8 = 5;
const ERR_UNAUTHORIZED: u8 = 6;
const ERR_INVALID_NAME: u8 = 7;
const ERR_SHUTDOWN: u8 = 8;
const ERR_STORAGE: u8 = 9;
const ERR_REPLY_TOO_LARGE: u8 = 10;

fn put_service_error(buf: &mut Vec<u8>, e: &ServiceError) {
    match e {
        ServiceError::Rejected {
            estimated,
            capacity,
        } => {
            put_u8(buf, ERR_REJECTED);
            put_u64_le(buf, *estimated);
            put_u64_le(buf, *capacity);
        }
        ServiceError::Cancelled => put_u8(buf, ERR_CANCELLED),
        ServiceError::DeadlineExceeded => put_u8(buf, ERR_DEADLINE),
        ServiceError::UnknownDataset(s) => {
            put_u8(buf, ERR_UNKNOWN_DATASET);
            put_str(buf, s);
        }
        ServiceError::UnknownNamespace(s) => {
            put_u8(buf, ERR_UNKNOWN_NAMESPACE);
            put_str(buf, s);
        }
        ServiceError::Unauthorized(s) => {
            put_u8(buf, ERR_UNAUTHORIZED);
            put_str(buf, s);
        }
        ServiceError::InvalidName(s) => {
            put_u8(buf, ERR_INVALID_NAME);
            put_str(buf, s);
        }
        ServiceError::Shutdown => put_u8(buf, ERR_SHUTDOWN),
        ServiceError::ReplyTooLarge { size, max } => {
            put_u8(buf, ERR_REPLY_TOO_LARGE);
            put_u64_le(buf, *size);
            put_u64_le(buf, *max);
        }
        ServiceError::Storage(se) => {
            put_u8(buf, ERR_STORAGE);
            put_storage_error(buf, se);
        }
    }
}

fn get_service_error(buf: &mut &[u8]) -> Result<ServiceError, WireError> {
    match get_u8(buf).ok_or_else(|| corrupt("service error tag"))? {
        ERR_REJECTED => Ok(ServiceError::Rejected {
            estimated: get_u64_le(buf).ok_or_else(|| corrupt("rejected"))?,
            capacity: get_u64_le(buf).ok_or_else(|| corrupt("rejected"))?,
        }),
        ERR_CANCELLED => Ok(ServiceError::Cancelled),
        ERR_DEADLINE => Ok(ServiceError::DeadlineExceeded),
        ERR_UNKNOWN_DATASET => Ok(ServiceError::UnknownDataset(get_string(buf)?)),
        ERR_UNKNOWN_NAMESPACE => Ok(ServiceError::UnknownNamespace(get_string(buf)?)),
        ERR_UNAUTHORIZED => Ok(ServiceError::Unauthorized(get_string(buf)?)),
        ERR_INVALID_NAME => Ok(ServiceError::InvalidName(get_string(buf)?)),
        ERR_SHUTDOWN => Ok(ServiceError::Shutdown),
        ERR_STORAGE => Ok(ServiceError::Storage(get_storage_error(buf)?)),
        ERR_REPLY_TOO_LARGE => Ok(ServiceError::ReplyTooLarge {
            size: get_u64_le(buf).ok_or_else(|| corrupt("reply size"))?,
            max: get_u64_le(buf).ok_or_else(|| corrupt("reply cap"))?,
        }),
        t => Err(WireError::Corrupt(format!("unknown service error tag {t}"))),
    }
}

fn put_response(buf: &mut Vec<u8>, r: &QueryResponse) {
    put_payload(buf, &r.payload);
    put_stats(buf, &r.stats);
    put_duration(buf, r.queue_wait);
    put_duration(buf, r.exec_time);
}

fn get_response(buf: &mut &[u8]) -> Result<QueryResponse, WireError> {
    let payload = get_payload(buf)?;
    let stats = get_stats(buf)?;
    let queue_wait = get_duration(buf)?;
    let exec_time = get_duration(buf)?;
    Ok(QueryResponse {
        payload,
        stats,
        queue_wait,
        exec_time,
    })
}

fn finish(buf: &[u8], what: &str) -> Result<(), WireError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(WireError::Corrupt(format!(
            "{} trailing bytes after {what}",
            buf.len()
        )))
    }
}

/// Encode a client message to a frame payload.
pub fn encode_client(msg: &ClientMsg) -> Vec<u8> {
    let mut buf = Vec::new();
    match msg {
        ClientMsg::Hello {
            version,
            namespace,
            token,
        } => {
            put_u8(&mut buf, CLIENT_HELLO);
            put_u16_le(&mut buf, *version);
            put_str(&mut buf, namespace);
            put_opt_str(&mut buf, token);
        }
        ClientMsg::Request(req) => {
            put_u8(&mut buf, CLIENT_REQUEST);
            put_request(&mut buf, req);
        }
        ClientMsg::Cancel => put_u8(&mut buf, CLIENT_CANCEL),
    }
    buf
}

/// Decode a frame payload as a client message (strict: trailing bytes are
/// corruption).
pub fn decode_client(mut buf: &[u8]) -> Result<ClientMsg, WireError> {
    let msg = match get_u8(&mut buf).ok_or_else(|| corrupt("client tag"))? {
        CLIENT_HELLO => {
            let version = get_u16_le(&mut buf).ok_or_else(|| corrupt("hello version"))?;
            let namespace = get_string(&mut buf)?;
            let token = get_opt_str(&mut buf)?;
            ClientMsg::Hello {
                version,
                namespace,
                token,
            }
        }
        CLIENT_REQUEST => ClientMsg::Request(get_request(&mut buf)?),
        CLIENT_CANCEL => ClientMsg::Cancel,
        t => return Err(WireError::Corrupt(format!("unknown client tag {t}"))),
    };
    finish(buf, "client message")?;
    Ok(msg)
}

/// Encode a server message to a frame payload.
pub fn encode_server(msg: &ServerMsg) -> Vec<u8> {
    let mut buf = Vec::new();
    match msg {
        ServerMsg::HelloOk { version, session } => {
            put_u8(&mut buf, SERVER_HELLO_OK);
            put_u16_le(&mut buf, *version);
            put_u64_le(&mut buf, *session);
        }
        ServerMsg::HelloErr { message } => {
            put_u8(&mut buf, SERVER_HELLO_ERR);
            put_str(&mut buf, message);
        }
        ServerMsg::Reply(Ok(resp)) => {
            put_u8(&mut buf, SERVER_REPLY_OK);
            put_response(&mut buf, resp);
        }
        ServerMsg::Reply(Err(e)) => {
            put_u8(&mut buf, SERVER_REPLY_ERR);
            put_service_error(&mut buf, e);
        }
    }
    buf
}

/// Decode a frame payload as a server message (strict: trailing bytes are
/// corruption).
pub fn decode_server(mut buf: &[u8]) -> Result<ServerMsg, WireError> {
    let msg = match get_u8(&mut buf).ok_or_else(|| corrupt("server tag"))? {
        SERVER_HELLO_OK => {
            let version = get_u16_le(&mut buf).ok_or_else(|| corrupt("hello version"))?;
            let session = get_u64_le(&mut buf).ok_or_else(|| corrupt("hello session"))?;
            ServerMsg::HelloOk { version, session }
        }
        SERVER_HELLO_ERR => ServerMsg::HelloErr {
            message: get_string(&mut buf)?,
        },
        SERVER_REPLY_OK => ServerMsg::Reply(Ok(get_response(&mut buf)?)),
        SERVER_REPLY_ERR => ServerMsg::Reply(Err(get_service_error(&mut buf)?)),
        t => return Err(WireError::Corrupt(format!("unknown server tag {t}"))),
    };
    finish(buf, "server message")?;
    Ok(msg)
}
