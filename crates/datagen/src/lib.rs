//! Synthetic spatial data generators.
//!
//! Two families, matching the paper's evaluation data (§6.1, §6.6):
//!
//! * [`spider`] — Spider-style generators (the paper uses the Spider
//!   generator \[19\]): uniform/gaussian points, uniform/gaussian boxes, and
//!   parcel sets (non-intersecting rectangles of varying sizes), all over
//!   the unit square.
//! * [`urban`] — distribution-shaped stand-ins for the real data sets of
//!   Table 1: clustered city point clouds (taxi/tweet-like), admin-boundary
//!   tessellations (neighborhood/census/county/zip-like, with controllable
//!   vertex complexity), and building-like fields of small polygons.
//!
//! Every generator is deterministic in its seed. The RNG is a local
//! SplitMix64 (no external dependency — the build must work offline);
//! its uniform-`f64` API mirrors the slice of `rand` the generators use.

pub mod spider;
pub mod urban;

/// The uniform-sampling interface the generators draw from.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform in [0, 1) with 53 bits of precision — the `r.gen::<f64>()`
    /// shape the generators were originally written against.
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait SampleUniform {
    fn sample_from<R: Rng>(r: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_from<R: Rng>(r: &mut R) -> f64 {
        (r.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for u64 {
    fn sample_from<R: Rng>(r: &mut R) -> u64 {
        r.next_u64()
    }
}

/// SplitMix64: tiny, fast, and plenty for synthetic data shaping.
pub struct StdRng(u64);

impl StdRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng(seed)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The deterministic RNG used by all generators.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: Vec<f64> = {
            let mut r = rng(7);
            (0..8).map(|_| r.gen::<f64>()).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(7);
            (0..8).map(|_| r.gen::<f64>()).collect()
        };
        let c: Vec<f64> = {
            let mut r = rng(8);
            (0..8).map(|_| r.gen::<f64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|x| (0.0..1.0).contains(x)));
    }
}
