//! Synthetic spatial data generators.
//!
//! Two families, matching the paper's evaluation data (§6.1, §6.6):
//!
//! * [`spider`] — Spider-style generators (the paper uses the Spider
//!   generator \[19\]): uniform/gaussian points, uniform/gaussian boxes, and
//!   parcel sets (non-intersecting rectangles of varying sizes), all over
//!   the unit square.
//! * [`urban`] — distribution-shaped stand-ins for the real data sets of
//!   Table 1: clustered city point clouds (taxi/tweet-like), admin-boundary
//!   tessellations (neighborhood/census/county/zip-like, with controllable
//!   vertex complexity), and building-like fields of small polygons.
//!
//! Every generator is deterministic in its seed.

pub mod spider;
pub mod urban;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The deterministic RNG used by all generators.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
