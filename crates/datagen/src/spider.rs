//! Spider-style synthetic generators (§6.6, Table 4).
//!
//! The paper generates four classes over the unit square — uniform points,
//! gaussian points, uniform boxes, gaussian boxes — plus "parcel" data sets
//! of non-intersecting rectangles used as the polygon side of synthetic
//! joins. Box counts are chosen so a box data set carries the same number
//! of vertices as a point data set of 4× the size, exactly as in Table 4.

use crate::Rng;
use spade_geometry::{BBox, Point, Polygon};

/// Uniformly distributed points over the unit square.
pub fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
    let mut r = crate::rng(seed);
    (0..n)
        .map(|_| Point::new(r.gen::<f64>(), r.gen::<f64>()))
        .collect()
}

/// Normally distributed points centered on the unit square's center
/// (σ = 0.15, clamped to the square, matching Spider's gaussian preset).
pub fn gaussian_points(n: usize, seed: u64) -> Vec<Point> {
    let mut r = crate::rng(seed);
    let normal = Normal {
        mean: 0.5,
        std: 0.15,
    };
    (0..n)
        .map(|_| {
            Point::new(
                normal.sample(&mut r).clamp(0.0, 1.0),
                normal.sample(&mut r).clamp(0.0, 1.0),
            )
        })
        .collect()
}

/// A tiny Box–Muller normal sampler over the local RNG.
struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std * z
    }
}

/// Axis-parallel rectangles of varying sizes, uniformly placed.
/// `max_side` bounds the side length (Spider default ≈ 0.01–0.05 of the
/// square; pass what the experiment needs).
pub fn uniform_boxes(n: usize, max_side: f64, seed: u64) -> Vec<Polygon> {
    let mut r = crate::rng(seed);
    (0..n)
        .map(|_| {
            let w = r.gen::<f64>() * max_side;
            let h = r.gen::<f64>() * max_side;
            let x = r.gen::<f64>() * (1.0 - w);
            let y = r.gen::<f64>() * (1.0 - h);
            Polygon::rect(BBox::new(Point::new(x, y), Point::new(x + w, y + h)))
        })
        .collect()
}

/// Axis-parallel rectangles of varying sizes, normally placed.
pub fn gaussian_boxes(n: usize, max_side: f64, seed: u64) -> Vec<Polygon> {
    let mut r = crate::rng(seed);
    let normal = Normal {
        mean: 0.5,
        std: 0.15,
    };
    (0..n)
        .map(|_| {
            let w = r.gen::<f64>() * max_side;
            let h = r.gen::<f64>() * max_side;
            let x = normal.sample(&mut r).clamp(0.0, 1.0 - w);
            let y = normal.sample(&mut r).clamp(0.0, 1.0 - h);
            Polygon::rect(BBox::new(Point::new(x, y), Point::new(x + w, y + h)))
        })
        .collect()
}

/// Parcels: `n` *non-intersecting* rectangles of varying sizes tiling the
/// unit square (Spider's parcel generator: recursive random splits, each
/// leaf shrunk by a dither factor so neighbours never touch).
pub fn parcels(n: usize, dither: f64, seed: u64) -> Vec<Polygon> {
    let mut r = crate::rng(seed);
    let mut regions = vec![BBox::new(Point::ZERO, Point::new(1.0, 1.0))];
    while regions.len() < n {
        // Split the largest region at a random position.
        let (idx, _) = regions
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.area()
                    .partial_cmp(&b.1.area())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty regions");
        let region = regions.swap_remove(idx);
        let t = 0.3 + 0.4 * r.gen::<f64>();
        let (a, b) = if region.width() >= region.height() {
            let x = region.min.x + region.width() * t;
            (
                BBox::new(region.min, Point::new(x, region.max.y)),
                BBox::new(Point::new(x, region.min.y), region.max),
            )
        } else {
            let y = region.min.y + region.height() * t;
            (
                BBox::new(region.min, Point::new(region.max.x, y)),
                BBox::new(Point::new(region.min.x, y), region.max),
            )
        };
        regions.push(a);
        regions.push(b);
    }
    let shrink = dither.clamp(0.0, 0.49);
    regions
        .into_iter()
        .take(n)
        .map(|b| {
            let dx = b.width() * shrink;
            let dy = b.height() * shrink;
            Polygon::rect(BBox::new(
                b.min + Point::new(dx, dy),
                b.max - Point::new(dx, dy),
            ))
        })
        .collect()
}

/// Scale a unit-square geometry set to an arbitrary extent.
pub fn scale_points(pts: &[Point], extent: &BBox) -> Vec<Point> {
    pts.iter()
        .map(|p| {
            Point::new(
                extent.min.x + p.x * extent.width(),
                extent.min.y + p.y * extent.height(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_geometry::predicates::polygons_intersect;

    #[test]
    fn uniform_points_cover_square() {
        let pts = uniform_points(5000, 1);
        assert_eq!(pts.len(), 5000);
        assert!(pts
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y)));
        // Roughly uniform: each quadrant holds 15–35%.
        let q1 = pts.iter().filter(|p| p.x < 0.5 && p.y < 0.5).count();
        assert!((750..=1750).contains(&q1), "q1 = {q1}");
    }

    #[test]
    fn gaussian_points_concentrate() {
        let pts = gaussian_points(5000, 2);
        let center = Point::new(0.5, 0.5);
        let near = pts.iter().filter(|p| p.dist(center) < 0.2).count();
        let far = pts.iter().filter(|p| p.dist(center) > 0.45).count();
        assert!(near > far * 2, "near={near} far={far}");
    }

    #[test]
    fn determinism() {
        assert_eq!(uniform_points(100, 7), uniform_points(100, 7));
        assert_ne!(uniform_points(100, 7), uniform_points(100, 8));
    }

    #[test]
    fn boxes_inside_square() {
        for b in uniform_boxes(500, 0.05, 3) {
            let bb = b.bbox();
            assert!(bb.min.x >= 0.0 && bb.max.x <= 1.0);
            assert!(bb.min.y >= 0.0 && bb.max.y <= 1.0);
            assert!(bb.width() <= 0.05 + 1e-12);
        }
        for b in gaussian_boxes(500, 0.05, 4) {
            let bb = b.bbox();
            assert!(bb.min.x >= 0.0 && bb.max.x <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn parcels_are_disjoint_and_complete() {
        let ps = parcels(200, 0.05, 5);
        assert_eq!(ps.len(), 200);
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert!(
                    !polygons_intersect(&ps[i], &ps[j]),
                    "parcels {i} and {j} intersect"
                );
            }
        }
    }

    #[test]
    fn parcel_sizes_vary() {
        let ps = parcels(100, 0.02, 6);
        let areas: Vec<f64> = ps.iter().map(|p| p.area()).collect();
        let max = areas.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = areas.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(max > min * 1.5);
    }

    #[test]
    fn scaling_maps_extent() {
        let pts = uniform_points(100, 9);
        let extent = BBox::new(Point::new(-74.3, 40.5), Point::new(-73.7, 40.9));
        let scaled = scale_points(&pts, &extent);
        assert!(scaled.iter().all(|p| extent.contains(*p)));
    }
}
