//! Distribution-shaped stand-ins for the paper's real data sets (Table 1).
//!
//! The evaluation's real data sets are proprietary or huge (1.2 B taxi
//! pickups, 2.3 B tweets, 114 M OSM buildings). These generators reproduce
//! the properties the experiments exercise — clustered urban point
//! densities, admin-boundary tessellations with high vertex counts, fields
//! of small building polygons — at configurable scale (see DESIGN.md's
//! substitution table).

use crate::Rng;
use spade_geometry::{BBox, Point, Polygon};

/// A clustered urban point cloud (taxi-pickup / tweet-like): a mixture of
/// gaussian hotspots over the extent plus a uniform background.
///
/// `hotspots` controls how many centers; density concentrates like urban
/// activity (Fig. 5's selectivity spread comes from this skew).
pub fn clustered_points(n: usize, extent: &BBox, hotspots: usize, seed: u64) -> Vec<Point> {
    let mut r = crate::rng(seed);
    let hotspots = hotspots.max(1);
    let centers: Vec<(Point, f64, f64)> = (0..hotspots)
        .map(|_| {
            let c = Point::new(
                extent.min.x + r.gen::<f64>() * extent.width(),
                extent.min.y + r.gen::<f64>() * extent.height(),
            );
            let sigma = (0.01 + 0.05 * r.gen::<f64>()) * extent.width().max(extent.height());
            let weight = r.gen::<f64>() + 0.2;
            (c, sigma, weight)
        })
        .collect();
    let total_w: f64 = centers.iter().map(|c| c.2).sum();

    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // 85% hotspot traffic, 15% background.
        if r.gen::<f64>() < 0.85 {
            let mut pick = r.gen::<f64>() * total_w;
            let mut chosen = &centers[0];
            for c in &centers {
                if pick < c.2 {
                    chosen = c;
                    break;
                }
                pick -= c.2;
            }
            let (c, sigma, _) = chosen;
            let p = Point::new(c.x + gauss(&mut r) * sigma, c.y + gauss(&mut r) * sigma);
            if extent.contains(p) {
                out.push(p);
            }
        } else {
            out.push(Point::new(
                extent.min.x + r.gen::<f64>() * extent.width(),
                extent.min.y + r.gen::<f64>() * extent.height(),
            ));
        }
    }
    out
}

fn gauss<R: Rng>(r: &mut R) -> f64 {
    let u1: f64 = r.gen::<f64>().max(1e-12);
    let u2: f64 = r.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// An admin-boundary-like tessellation (neighborhood / census / county /
/// zip-code analogue): a kd-tessellation of the extent into `n` convex
/// cells, each boundary subdivided so every polygon carries
/// ≈ `vertices_per_polygon` vertices — the paper's polygon-complexity
/// analyses (counties average 5 183 points!) depend on this knob.
pub fn admin_polygons(
    n: usize,
    extent: &BBox,
    vertices_per_polygon: usize,
    seed: u64,
) -> Vec<Polygon> {
    let mut r = crate::rng(seed);
    let mut regions = vec![*extent];
    while regions.len() < n {
        let (idx, _) = regions
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.area()
                    .partial_cmp(&b.1.area())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("regions");
        let region = regions.swap_remove(idx);
        let t = 0.35 + 0.3 * r.gen::<f64>();
        let (a, b) = if region.width() >= region.height() {
            let x = region.min.x + region.width() * t;
            (
                BBox::new(region.min, Point::new(x, region.max.y)),
                BBox::new(Point::new(x, region.min.y), region.max),
            )
        } else {
            let y = region.min.y + region.height() * t;
            (
                BBox::new(region.min, Point::new(region.max.x, y)),
                BBox::new(Point::new(region.min.x, y), region.max),
            )
        };
        regions.push(a);
        regions.push(b);
    }
    regions
        .into_iter()
        .take(n)
        .map(|bb| {
            // Shrink slightly (admin boundaries rarely touch exactly in
            // digitized data) and subdivide edges to the target complexity
            // with a wobble that keeps the polygon simple.
            let bb = bb.inflate(-0.008 * bb.width().min(bb.height()));
            let corners = bb.corners();
            let per_edge = (vertices_per_polygon / 4).max(1);
            let mut pts = Vec::with_capacity(per_edge * 4);
            // Wobble strictly perpendicular to each edge, inward, bounded
            // well below the half-extent: along-edge ordering is preserved,
            // so the ring stays simple (no self-intersections).
            let wobble = 0.02 * bb.width().min(bb.height());
            for i in 0..4 {
                let a = corners[i];
                let b = corners[(i + 1) % 4];
                // Corners are CCW, so the inward normal is the left normal.
                let inward = (b - a).perp().normalized().unwrap_or(Point::ZERO);
                for k in 0..per_edge {
                    let t = k as f64 / per_edge as f64;
                    let mut p = a.lerp(b, t);
                    if k != 0 {
                        p = p + inward * (r.gen::<f64>() * wobble);
                    }
                    pts.push(p);
                }
            }
            Polygon::new(pts)
        })
        .collect()
}

/// A building-like polygon field: many small quadrilaterals clustered into
/// city blocks (OSM-buildings analogue: the worst case for SPADE's
/// indexing when polygons approach pixel size, §6.2).
pub fn building_polygons(n: usize, extent: &BBox, seed: u64) -> Vec<Polygon> {
    let mut r = crate::rng(seed);
    let blocks = ((n as f64).sqrt() as usize).clamp(1, 256);
    let centers: Vec<Point> = (0..blocks)
        .map(|_| {
            Point::new(
                extent.min.x + r.gen::<f64>() * extent.width(),
                extent.min.y + r.gen::<f64>() * extent.height(),
            )
        })
        .collect();
    let block_size = extent.width().max(extent.height()) / blocks as f64 * 2.0;
    let side = block_size / 12.0;
    (0..n)
        .map(|i| {
            let c = centers[i % blocks];
            let p = Point::new(
                c.x + (r.gen::<f64>() - 0.5) * block_size,
                c.y + (r.gen::<f64>() - 0.5) * block_size,
            );
            let w = side * (0.5 + r.gen::<f64>());
            let h = side * (0.5 + r.gen::<f64>());
            let angle = r.gen::<f64>() * std::f64::consts::FRAC_PI_2;
            let (s, co) = angle.sin_cos();
            let rot = |dx: f64, dy: f64| Point::new(p.x + dx * co - dy * s, p.y + dx * s + dy * co);
            Polygon::new(vec![rot(-w, -h), rot(w, -h), rot(w, h), rot(-w, h)])
        })
        .collect()
}

/// Query constraint polygons resembling neighborhood/county/country
/// boundaries: convex-ish blobs of controllable vertex count and radius,
/// placed within the extent.
pub fn constraint_polygons(
    n: usize,
    extent: &BBox,
    radius_frac: f64,
    vertices: usize,
    seed: u64,
) -> Vec<Polygon> {
    let mut r = crate::rng(seed);
    let base_r = radius_frac * extent.width().min(extent.height());
    (0..n)
        .map(|_| {
            let c = Point::new(
                extent.min.x + (0.2 + 0.6 * r.gen::<f64>()) * extent.width(),
                extent.min.y + (0.2 + 0.6 * r.gen::<f64>()) * extent.height(),
            );
            let k = vertices.max(3);
            // A star-convex blob: the radius varies smoothly around the
            // loop via a few low-frequency harmonics, keeping the ring
            // simple (no self-intersections) while far from circular.
            let harmonics: Vec<(f64, f64, f64)> = (2..5)
                .map(|h| {
                    (
                        h as f64,
                        0.25 / (h - 1) as f64 * r.gen::<f64>(),
                        r.gen::<f64>() * std::f64::consts::TAU,
                    )
                })
                .collect();
            let pts = (0..k)
                .map(|i| {
                    let t = std::f64::consts::TAU * i as f64 / k as f64;
                    let mut rr = 1.0;
                    for &(freq, amp, phase) in &harmonics {
                        rr += amp * (freq * t + phase).sin();
                    }
                    Point::new(c.x + base_r * rr * t.cos(), c.y + base_r * rr * t.sin())
                })
                .collect();
            Polygon::new(pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_geometry::predicates::polygons_intersect;

    fn nyc() -> BBox {
        BBox::new(Point::new(-74.3, 40.5), Point::new(-73.7, 40.95))
    }

    #[test]
    fn clustered_points_in_extent_and_skewed() {
        let e = nyc();
        let pts = clustered_points(5000, &e, 6, 1);
        assert_eq!(pts.len(), 5000);
        assert!(pts.iter().all(|p| e.contains(*p)));
        // Skew: split the extent into a 8×8 grid; the densest cell should
        // hold far more than the uniform share.
        let mut cells = [0usize; 64];
        for p in &pts {
            let cx = (((p.x - e.min.x) / e.width() * 8.0) as usize).min(7);
            let cy = (((p.y - e.min.y) / e.height() * 8.0) as usize).min(7);
            cells[cy * 8 + cx] += 1;
        }
        let max = *cells.iter().max().unwrap();
        assert!(max > 5000 / 64 * 3, "max cell {max} not skewed");
    }

    #[test]
    fn admin_polygons_are_simple() {
        // No two non-adjacent edges of a generated polygon may intersect;
        // a self-intersecting constraint would make the exact predicates
        // (even-odd ray cast) and the triangulation disagree.
        use spade_geometry::predicates::segments_intersect;
        for seed in [2u64, 7, 99] {
            for poly in admin_polygons(10, &nyc(), 64, seed) {
                let edges = poly.boundary_edges();
                let n = edges.len();
                for i in 0..n {
                    for j in i + 2..n {
                        if i == 0 && j == n - 1 {
                            continue; // adjacent around the loop
                        }
                        assert!(
                            !segments_intersect(edges[i], edges[j]),
                            "edges {i} and {j} cross (seed {seed})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn admin_polygons_tile_without_overlap() {
        let e = nyc();
        let polys = admin_polygons(40, &e, 32, 2);
        assert_eq!(polys.len(), 40);
        for p in &polys {
            assert!(p.num_vertices() >= 16, "vertices = {}", p.num_vertices());
            assert!(p.area() > 0.0);
            // Simple polygon sanity: triangulation reproduces the area.
            let tri_area: f64 = p.triangulate().iter().map(|t| t.area()).sum();
            assert!((tri_area - p.area()).abs() < p.area() * 1e-6);
        }
        for i in 0..polys.len() {
            for j in i + 1..polys.len() {
                assert!(
                    !polygons_intersect(&polys[i], &polys[j]),
                    "admin polygons {i}, {j} overlap"
                );
            }
        }
    }

    #[test]
    fn buildings_are_small_and_many() {
        let e = nyc();
        let polys = building_polygons(2000, &e, 3);
        assert_eq!(polys.len(), 2000);
        let total_area: f64 = polys.iter().map(|p| p.area()).sum();
        assert!(total_area < e.area() * 0.5);
        for p in &polys {
            assert_eq!(p.exterior.len(), 4);
        }
    }

    #[test]
    fn constraint_polygons_are_valid() {
        let e = nyc();
        let cs = constraint_polygons(10, &e, 0.1, 48, 4);
        assert_eq!(cs.len(), 10);
        for c in &cs {
            assert_eq!(c.exterior.len(), 48);
            assert!(c.area() > 0.0);
            let tri_area: f64 = c.triangulate().iter().map(|t| t.area()).sum();
            assert!(
                (tri_area - c.area()).abs() < c.area() * 1e-6,
                "constraint not simple"
            );
        }
    }

    #[test]
    fn generators_deterministic() {
        let e = nyc();
        assert_eq!(
            clustered_points(50, &e, 3, 9),
            clustered_points(50, &e, 3, 9)
        );
        assert_eq!(admin_polygons(5, &e, 16, 9), admin_polygons(5, &e, 16, 9));
    }
}
