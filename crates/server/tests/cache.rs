//! Result-cache behavior through the concurrent service: singleflight
//! coalescing under session fan-in, liveness and convergence with a
//! concurrent writer, ledger balance after drains, and the EXPLAIN/metrics
//! surfaces.
//!
//! The quiescent test pins down the singleflight contract exactly: 16
//! sessions hammering one hot query on an unchanging dataset cause exactly
//! one render — every other response is a cache hit or a coalesced wait on
//! the in-flight render. The live-writer test bounds renders by the number
//! of watermarks the writer creates, and proves the cache never wedges the
//! service or serves a result that diverges from the final logical set.

use spade_core::dataset::{Dataset, DatasetKind, IndexedDataset};
use spade_core::query::{QueryResult, SelectQuery};
use spade_core::{CacheOutcome, EngineConfig};
use spade_datagen::spider;
use spade_geometry::{BBox, Geometry, Point};
use spade_index::GridIndex;
use spade_server::{QueryRequest, QueryService, ResponsePayload, ServiceConfig};
use std::sync::Arc;

fn tiny_config() -> EngineConfig {
    let mut c = EngineConfig::test_small();
    c.resolution = 128;
    c.layer_resolution = 128;
    c.filter_resolution = 64;
    c.distance_resolution = 128;
    c.knn_circles = 16;
    c
}

fn scatter(n: usize, extent: f64, seed: u64) -> Vec<Point> {
    let unit = spider::uniform_points(n, seed);
    spider::scale_points(&unit, &BBox::new(Point::ZERO, Point::new(extent, extent)))
}

fn service(workers: usize) -> QueryService {
    QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers,
        fairness_cap: 4,
        wal_dir: None,
    })
}

fn register_points(svc: &QueryService, pts: &[Point]) {
    let d = Dataset::from_points("pts", pts.to_vec());
    let grid = GridIndex::build(None, &d.objects, 25.0).unwrap();
    svc.register_indexed("pts", IndexedDataset::new("pts", DatasetKind::Points, grid));
}

fn hot_query() -> QueryRequest {
    QueryRequest::Select {
        dataset: "pts".into(),
        query: SelectQuery::Range(BBox::new(Point::new(20.0, 20.0), Point::new(70.0, 60.0))),
    }
}

fn ids(payload: &ResponsePayload) -> Vec<u32> {
    match payload {
        ResponsePayload::Query(QueryResult::Ids(ids)) => ids.clone(),
        other => panic!("expected id list, got {other:?}"),
    }
}

/// Quiescent hot tile: 16 sessions × 5 identical queries produce exactly one
/// render; the other 79 responses are hits (or coalesced waits on the single
/// in-flight render), every one byte-identical.
#[test]
fn sixteen_sessions_one_render() {
    let svc = Arc::new(service(8));
    let pts = scatter(500, 100.0, 23);
    register_points(&svc, &pts);

    let want: Vec<u32> = pts
        .iter()
        .enumerate()
        .filter(|(_, p)| (20.0..=70.0).contains(&p.x) && (20.0..=60.0).contains(&p.y))
        .map(|(i, _)| i as u32)
        .collect();

    let handles: Vec<_> = (0..16)
        .map(|_| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let session = svc.session();
                (0..5)
                    .map(|_| {
                        let resp = session.submit(hot_query()).wait().expect("query succeeds");
                        (ids(&resp.payload), resp.stats.result_cache)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let mut outcomes = Vec::new();
    for h in handles {
        for (got, outcome) in h.join().expect("session thread") {
            assert_eq!(got, want, "every response must be byte-identical");
            outcomes.push(outcome);
        }
    }
    assert_eq!(outcomes.len(), 80);
    let misses = outcomes
        .iter()
        .filter(|o| **o == CacheOutcome::Miss)
        .count();
    assert_eq!(misses, 1, "exactly one render for one (key, watermark)");
    assert!(outcomes.iter().all(|o| matches!(
        o,
        CacheOutcome::Miss | CacheOutcome::Hit | CacheOutcome::CoalescedHit
    )));

    let rc = svc.engine().result_cache.stats();
    assert_eq!(rc.misses, 1);
    assert_eq!(rc.hits + rc.coalesced, 79);
    assert_eq!(rc.bypasses, 0);
}

/// A live writer mutating the hot tile while 16 sessions hammer it: the
/// service must stay live (no deadlock), renders are bounded by the number
/// of watermarks the writer creates, the final answer converges on the full
/// logical set, and draining the cache returns every reserved byte.
#[test]
fn hot_tile_with_live_writer_stays_consistent() {
    let svc = Arc::new(service(8));
    let pts = scatter(400, 100.0, 29);
    register_points(&svc, &pts);
    let writes = 24u32;

    let readers: Vec<_> = (0..16)
        .map(|_| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let session = svc.session();
                let mut outcomes = Vec::new();
                for _ in 0..12 {
                    let resp = session.submit(hot_query()).wait().expect("query succeeds");
                    ids(&resp.payload); // shape check only: the set is in motion
                    outcomes.push(resp.stats.result_cache);
                }
                outcomes
            })
        })
        .collect();

    let writer = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || {
            let session = svc.session();
            for i in 0..writes {
                let x = 25.0 + (i % 8) as f64 * 5.0;
                let y = 25.0 + (i / 8) as f64 * 10.0;
                session
                    .submit(QueryRequest::Insert {
                        dataset: "pts".into(),
                        id: 10_000 + i,
                        geometry: Geometry::Point(Point::new(x, y)),
                    })
                    .wait()
                    .expect("insert succeeds");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        })
    };

    let mut outcomes = Vec::new();
    for r in readers {
        outcomes.extend(r.join().expect("reader thread"));
    }
    writer.join().expect("writer thread");

    // Every response was served through the cache path (never bypassed),
    // and the miss count is bounded by the watermarks the writer created:
    // each insert bumps the seq, each (background) compaction bumps the
    // generation, and validate-after-compute can discard a render per
    // transition — so renders stay far below the 192 issued queries.
    assert_eq!(outcomes.len(), 16 * 12);
    let misses = outcomes
        .iter()
        .filter(|o| **o == CacheOutcome::Miss)
        .count();
    assert!(
        !outcomes.contains(&CacheOutcome::Bypass),
        "cache must be on this path"
    );
    let bound = 4 * writes as usize + 16;
    assert!(
        misses <= bound,
        "misses {misses} exceed watermark bound {bound}"
    );

    // Convergence: flush (drain + compact), then the hot query must see the
    // base points in range plus every inserted id.
    let session = svc.session();
    session
        .submit(QueryRequest::Flush {
            dataset: "pts".into(),
        })
        .wait()
        .expect("flush succeeds");
    let resp = session.submit(hot_query()).wait().expect("query succeeds");
    let got = ids(&resp.payload);
    let mut want: Vec<u32> = pts
        .iter()
        .enumerate()
        .filter(|(_, p)| (20.0..=70.0).contains(&p.x) && (20.0..=60.0).contains(&p.y))
        .map(|(i, _)| i as u32)
        .collect();
    want.extend(10_000..10_000 + writes);
    assert_eq!(got, want, "post-flush answer must be the full logical set");

    // Ledger balance: draining the cache releases every reserved byte from
    // the arena gauge and the device ledger.
    let rc = svc.engine().result_cache.stats();
    assert!(rc.inserted as usize <= misses, "stored ≤ rendered");
    svc.engine().result_cache.clear();
    let rc = svc.engine().result_cache.stats();
    assert_eq!(rc.entries, 0);
    assert_eq!(rc.bytes, 0);
    assert_eq!(svc.engine().pipeline.arena().stats().external_bytes, 0);
}

/// EXPLAIN ANALYZE reports cache provenance: a first run is a MISS with the
/// key's fingerprint and watermark in the plan text, a repeat is a HIT, and
/// the service metrics expose the cache counters.
#[test]
fn explain_analyze_reports_cache_provenance() {
    let svc = service(2);
    register_points(&svc, &scatter(300, 100.0, 31));

    let explain = |analyze: bool| QueryRequest::Explain {
        analyze,
        request: Box::new(hot_query()),
    };
    let session = svc.session();
    let first = session.submit(explain(true)).wait().expect("explain runs");
    let text = first.payload.explain().expect("plan text").to_string();
    assert!(text.contains("cache: MISS"), "first run is a miss:\n{text}");
    assert!(text.contains("q=0x"), "plan names the fingerprint:\n{text}");

    let second = session.submit(explain(true)).wait().expect("explain runs");
    let text = second.payload.explain().expect("plan text").to_string();
    assert!(text.contains("cache: HIT"), "repeat is a hit:\n{text}");

    let metrics = svc.metrics_text();
    for name in [
        "spade_result_cache_hits_total",
        "spade_result_cache_misses_total",
        "spade_result_cache_bytes",
        "spade_arena_external_bytes",
    ] {
        assert!(metrics.contains(name), "metrics must expose {name}");
    }
}
