//! Optimizer statistics through the service: per-tenant decision and
//! misprediction counters in the metrics exposition, namespace isolation
//! of those counters, and the EXPLAIN ANALYZE would-have-chosen line.

use spade_core::dataset::{Dataset, DatasetKind, IndexedDataset};
use spade_core::query::SelectQuery;
use spade_core::EngineConfig;
use spade_datagen::spider;
use spade_geometry::{BBox, Point};
use spade_index::GridIndex;
use spade_server::{NamespaceConfig, QueryRequest, QueryService, ServiceConfig};

fn tiny_config() -> EngineConfig {
    let mut c = EngineConfig::test_small();
    c.resolution = 128;
    c.layer_resolution = 128;
    c.filter_resolution = 64;
    c.distance_resolution = 128;
    c.knn_circles = 16;
    // A tiny list-canvas budget so full-cell `n_max` bounds exceed it
    // while selective results fit: 2-pass overshoots (mispredictions)
    // become routine.
    c.max_map_slots = 64;
    c
}

fn scatter(n: usize, extent: f64, seed: u64) -> Vec<Point> {
    let unit = spider::uniform_points(n, seed);
    spider::scale_points(&unit, &BBox::new(Point::ZERO, Point::new(extent, extent)))
}

fn indexed(name: &str, pts: Vec<Point>) -> IndexedDataset {
    let d = Dataset::from_points(name, pts);
    let grid = GridIndex::build(None, &d.objects, 25.0).unwrap();
    IndexedDataset::new(name, DatasetKind::Points, grid)
}

fn range(lo: f64, hi: f64) -> QueryRequest {
    QueryRequest::Select {
        dataset: "pts".into(),
        query: SelectQuery::Range(BBox::new(Point::new(lo, lo), Point::new(hi, hi))),
    }
}

/// Value of the first sample of `family` whose label set contains all of
/// `labels`, or 0.
fn sample(metrics: &str, family: &str, labels: &[&str]) -> u64 {
    metrics
        .lines()
        .filter(|l| l.starts_with(&format!("{family}{{")))
        .find(|l| labels.iter().all(|lab| l.contains(lab)))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn optimizer_counters_exported_per_tenant_and_isolated() {
    let svc = QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 2,
        fairness_cap: 4,
        wal_dir: None,
    });
    svc.create_namespace("acme", NamespaceConfig::default())
        .unwrap();
    svc.create_namespace("globex", NamespaceConfig::default())
        .unwrap();
    // Both tenants hold data; only acme queries.
    svc.register_indexed_in("acme", "pts", indexed("pts", scatter(2_000, 100.0, 1)))
        .unwrap();
    svc.register_indexed_in("globex", "pts", indexed("pts", scatter(2_000, 100.0, 2)))
        .unwrap();
    let acme = svc.session_in("acme", None).unwrap();
    // Distinct windows so the result cache cannot absorb the repeats;
    // small windows so per-cell results fit 64 slots while full-cell
    // bounds (hundreds of points) do not → map_two_pass overshoots.
    for i in 0..4 {
        let lo = 10.0 + i as f64;
        acme.submit(range(lo, lo + 6.0)).wait().unwrap();
    }

    let metrics = svc.metrics_text();
    assert!(
        metrics.contains("# TYPE spade_optimizer_decisions_total counter"),
        "decisions family missing:\n{metrics}"
    );
    assert!(
        metrics.contains("# TYPE spade_optimizer_mispredictions_total counter"),
        "mispredictions family missing:\n{metrics}"
    );
    let acme_dec = sample(
        &metrics,
        "spade_optimizer_decisions_total",
        &["tenant=\"acme\"", "decision=\"map_two_pass\""],
    );
    assert!(acme_dec > 0, "acme ran 2-pass maps:\n{metrics}");
    let acme_mis = sample(
        &metrics,
        "spade_optimizer_mispredictions_total",
        &["tenant=\"acme\"", "decision=\"map_two_pass\""],
    );
    assert!(
        acme_mis > 0,
        "selective windows under a full-cell bound must overshoot:\n{metrics}"
    );
    // The idle tenant's counters stay zero for every decision label —
    // observed statistics are keyed by dataset uid, not engine-global.
    for d in [
        "map_one_pass",
        "map_two_pass",
        "join_layer_index",
        "join_naive_selects",
    ] {
        let v = sample(
            &metrics,
            "spade_optimizer_decisions_total",
            &["tenant=\"globex\"", &format!("decision=\"{d}\"")],
        );
        assert_eq!(v, 0, "globex never queried ({d}):\n{metrics}");
    }
}

#[test]
fn explain_analyze_prints_would_have_chosen_on_mispredict() {
    let svc = QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 1,
        fairness_cap: 2,
        wal_dir: None,
    });
    svc.create_namespace("acme", NamespaceConfig::default())
        .unwrap();
    svc.register_indexed_in("acme", "pts", indexed("pts", scatter(2_000, 100.0, 3)))
        .unwrap();
    let session = svc.session_in("acme", None).unwrap();
    let resp = session
        .submit(QueryRequest::Explain {
            analyze: true,
            request: Box::new(range(20.0, 27.0)),
        })
        .wait()
        .unwrap();
    let plan = resp.payload.explain().unwrap().to_string();
    assert!(
        plan.contains("mispredicted:"),
        "a selective window under a full-cell n_max must mispredict:\n{plan}"
    );
    assert!(
        plan.contains("would-have-chosen OnePass"),
        "verdict names the better choice:\n{plan}"
    );
}
