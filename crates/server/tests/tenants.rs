//! Multi-tenant isolation through the service: separate catalogs and
//! result caches under colliding dataset names, per-tenant admission
//! quotas that defer without starving other tenants, quota-aware
//! rejection, sanitized metric labels, and EXPLAIN ANALYZE cache
//! provenance carrying the namespace.

use spade_core::dataset::{Dataset, DatasetKind, IndexedDataset};
use spade_core::query::SelectQuery;
use spade_core::{CacheOutcome, EngineConfig};
use spade_datagen::spider;
use spade_geometry::{BBox, Point};
use spade_index::GridIndex;
use spade_server::{
    NamespaceConfig, QueryRequest, QueryService, ResponsePayload, ServiceConfig, ServiceError,
};
use std::time::{Duration, Instant};

fn tiny_config() -> EngineConfig {
    let mut c = EngineConfig::test_small();
    c.resolution = 128;
    c.layer_resolution = 128;
    c.filter_resolution = 64;
    c.distance_resolution = 128;
    c.knn_circles = 16;
    c
}

fn scatter(n: usize, extent: f64, seed: u64) -> Vec<Point> {
    let unit = spider::uniform_points(n, seed);
    spider::scale_points(&unit, &BBox::new(Point::ZERO, Point::new(extent, extent)))
}

fn indexed(name: &str, pts: Vec<Point>) -> IndexedDataset {
    let d = Dataset::from_points(name, pts);
    let grid = GridIndex::build(None, &d.objects, 25.0).unwrap();
    IndexedDataset::new(name, DatasetKind::Points, grid)
}

fn range(lo: f64, hi: f64) -> QueryRequest {
    QueryRequest::Select {
        dataset: "pts".into(),
        query: SelectQuery::Range(BBox::new(Point::new(lo, lo), Point::new(hi, hi))),
    }
}

fn ids(payload: &ResponsePayload) -> Vec<u32> {
    let mut v = payload.query().unwrap().ids().unwrap().to_vec();
    v.sort_unstable();
    v
}

#[test]
fn same_dataset_name_is_isolated_per_tenant_including_the_cache() {
    let svc = QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 2,
        fairness_cap: 4,
        wal_dir: None,
    });
    svc.create_namespace("acme", NamespaceConfig::default())
        .unwrap();
    svc.create_namespace("globex", NamespaceConfig::default())
        .unwrap();
    // Same name, same extent, different data.
    svc.register_indexed_in("acme", "pts", indexed("pts", scatter(2_000, 100.0, 1)))
        .unwrap();
    svc.register_indexed_in("globex", "pts", indexed("pts", scatter(2_000, 100.0, 2)))
        .unwrap();

    let acme = svc.session_in("acme", None).unwrap();
    let globex = svc.session_in("globex", None).unwrap();
    let q = || range(10.0, 70.0);

    let a1 = acme.submit(q()).wait().unwrap();
    let g1 = globex.submit(q()).wait().unwrap();
    assert_ne!(
        ids(&a1.payload),
        ids(&g1.payload),
        "tenants with different data must see different results"
    );

    // Repeat in each tenant: a cache hit, and each hit byte-equal to the
    // *same tenant's* first answer — same name, same query fingerprint,
    // but the namespace id in the cache key keeps the entries apart.
    let a2 = acme.submit(q()).wait().unwrap();
    let g2 = globex.submit(q()).wait().unwrap();
    assert_eq!(a2.stats.result_cache, CacheOutcome::Hit);
    assert_eq!(g2.stats.result_cache, CacheOutcome::Hit);
    assert_eq!(ids(&a2.payload), ids(&a1.payload));
    assert_eq!(ids(&g2.payload), ids(&g1.payload));
    assert_ne!(ids(&a2.payload), ids(&g2.payload));
}

#[test]
fn explain_analyze_reports_tenant_cache_provenance() {
    let svc = QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 1,
        fairness_cap: 2,
        wal_dir: None,
    });
    svc.create_namespace("acme", NamespaceConfig::default())
        .unwrap();
    svc.register_indexed_in("acme", "pts", indexed("pts", scatter(1_000, 100.0, 3)))
        .unwrap();
    let session = svc.session_in("acme", None).unwrap();
    // Warm the cache, then EXPLAIN ANALYZE the same query: the plan's
    // cache line must carry the tenant id that produced the entry.
    session.submit(range(5.0, 60.0)).wait().unwrap();
    let resp = session
        .submit(QueryRequest::Explain {
            analyze: true,
            request: Box::new(range(5.0, 60.0)),
        })
        .wait()
        .unwrap();
    let plan = resp.payload.explain().unwrap().to_string();
    assert!(plan.contains("cache: HIT"), "plan:\n{plan}");
    assert!(plan.contains("tenant"), "plan:\n{plan}");
}

/// Probe a namespace with an unmeetable quota to learn the footprint the
/// admission controller charges for `req` there.
fn probe_footprint(svc: &QueryService, data: IndexedDataset, req: QueryRequest) -> u64 {
    svc.create_namespace(
        "probe",
        NamespaceConfig {
            quota_bytes: Some(1),
            token: None,
        },
    )
    .unwrap();
    svc.register_indexed_in("probe", "pts", data).unwrap();
    let session = svc.session_in("probe", None).unwrap();
    match session.submit(req).wait() {
        Err(ServiceError::Rejected { estimated, .. }) => estimated,
        other => panic!("probe should be rejected, got {other:?}"),
    }
}

#[test]
fn tenant_at_quota_defers_without_starving_others() {
    let svc = QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 4,
        fairness_cap: 16,
        wal_dir: None,
    });
    let pts = scatter(20_000, 100.0, 7);
    let footprint = probe_footprint(&svc, indexed("pts", pts.clone()), range(0.0, 99.0));

    // "small" can run exactly one such query at a time; "big" is
    // unlimited.
    svc.create_namespace(
        "small",
        NamespaceConfig {
            quota_bytes: Some(footprint + footprint / 2),
            token: None,
        },
    )
    .unwrap();
    svc.create_namespace("big", NamespaceConfig::default())
        .unwrap();
    svc.register_indexed_in("small", "pts", indexed("pts", pts.clone()))
        .unwrap();
    svc.register_indexed_in("big", "pts", indexed("pts", pts))
        .unwrap();

    let small = svc.session_in("small", None).unwrap();
    let big = svc.session_in("big", None).unwrap();

    // Saturate the small tenant far beyond its quota. Distinct windows so
    // the result cache cannot short-circuit the later queries.
    let small_tickets: Vec<_> = (0..6)
        .map(|i| small.submit(range(i as f64, 99.0 - i as f64)))
        .collect();
    // Then one query from the unencumbered tenant, submitted last: FIFO
    // order alone would trap it behind five quota-blocked queries.
    let big_ticket = big.submit(range(3.0, 96.0));
    let big_resp = big_ticket.wait().expect("big tenant must not starve");
    assert!(big_resp.payload.query().is_some());

    // The small tenant's backlog eventually completes too (deferred, not
    // rejected, not deadlocked).
    let deadline = Instant::now() + Duration::from_secs(60);
    for t in small_tickets {
        assert!(Instant::now() < deadline, "small tenant queries wedged");
        t.wait().expect("quota defers, never fails");
    }

    let metrics = svc.metrics_text();
    let deferrals = metrics
        .lines()
        .find(|l| l.starts_with("spade_tenant_quota_deferrals_total{tenant=\"small\"}"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    assert!(
        deferrals > 0,
        "admission must have skipped the at-quota tenant at least once:\n{metrics}"
    );
    // Tenant admission ledger balanced after the dust settles. (The
    // engine's device ledger is not asserted: pooled buffers legitimately
    // stay resident between queries.)
    assert!(
        metrics.contains("spade_tenant_reserved_bytes{tenant=\"small\"} 0"),
        "{metrics}"
    );
}

#[test]
fn quota_caps_rejection_capacity() {
    let svc = QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 1,
        fairness_cap: 2,
        wal_dir: None,
    });
    svc.create_namespace(
        "capped",
        NamespaceConfig {
            quota_bytes: Some(64),
            token: None,
        },
    )
    .unwrap();
    svc.register_indexed_in("capped", "pts", indexed("pts", scatter(5_000, 100.0, 9)))
        .unwrap();
    let session = svc.session_in("capped", None).unwrap();
    match session.submit(range(0.0, 99.0)).wait() {
        Err(ServiceError::Rejected {
            estimated,
            capacity,
        }) => {
            assert_eq!(capacity, 64, "capacity must report the binding quota");
            assert!(estimated > capacity);
        }
        other => panic!("expected quota rejection, got {other:?}"),
    }
}

#[test]
fn metric_labels_escape_hostile_names() {
    let svc = QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 1,
        fairness_cap: 2,
        wal_dir: None,
    });
    // Quotes and backslashes are legal in names (control chars and ':'
    // are not); the exposition must escape them.
    svc.create_namespace("acme\"corp\\", NamespaceConfig::default())
        .unwrap();
    let session = svc.session_in("acme\"corp\\", None).unwrap();
    // One submission so the tenant shows up in the per-tenant families.
    let _ = session.submit(range(0.0, 1.0)).wait();
    let metrics = svc.metrics_text();
    assert!(
        metrics.contains("tenant=\"acme\\\"corp\\\\\""),
        "label must be escaped:\n{metrics}"
    );
    // Every label value must parse back cleanly: between `tenant="` and
    // the closing quote, a quote may only appear escaped, and unescaping
    // recovers the original hostile name.
    let mut seen = false;
    for line in metrics.lines().filter(|l| l.contains("tenant=\"")) {
        let rest = line.split("tenant=\"").nth(1).unwrap();
        let mut value = String::new();
        let mut chars = rest.chars();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => panic!("bad escape {other:?} in: {line}"),
                },
                Some('"') => break, // properly terminated
                Some(c) => value.push(c),
                None => panic!("label never terminated in: {line}"),
            }
        }
        if value == "acme\"corp\\" {
            seen = true;
        }
    }
    assert!(seen, "escaped tenant label must round-trip:\n{metrics}");
}

#[test]
fn invalid_names_are_rejected_at_creation() {
    let svc = QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 1,
        fairness_cap: 2,
        wal_dir: None,
    });
    for bad in ["", "a:b", "x\ny", &"n".repeat(300)] {
        assert!(
            matches!(
                svc.create_namespace(bad, NamespaceConfig::default()),
                Err(ServiceError::InvalidName(_))
            ),
            "name {bad:?} must be rejected"
        );
    }
    // Duplicate names are invalid too.
    svc.create_namespace("dup", NamespaceConfig::default())
        .unwrap();
    assert!(matches!(
        svc.create_namespace("dup", NamespaceConfig::default()),
        Err(ServiceError::InvalidName(_))
    ));
    // Dataset names are validated on tenant registration.
    assert!(matches!(
        svc.register_in("dup", "a:b", Dataset::from_points("a:b", vec![Point::ZERO])),
        Err(ServiceError::InvalidName(_))
    ));
}

#[test]
fn sql_tables_are_isolated_per_tenant() {
    let svc = QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 2,
        fairness_cap: 4,
        wal_dir: None,
    });
    svc.create_namespace("acme", NamespaceConfig::default())
        .unwrap();
    svc.create_namespace("globex", NamespaceConfig::default())
        .unwrap();
    let acme = svc.session_in("acme", None).unwrap();
    let globex = svc.session_in("globex", None).unwrap();
    let default = svc.session();
    let sql = |s: &str| QueryRequest::Sql(s.into());

    // acme creates and fills a table.
    acme.submit(sql("CREATE TABLE accounts (id INT, balance FLOAT)"))
        .wait()
        .unwrap();
    acme.submit(sql("INSERT INTO accounts VALUES (1, 100.0)"))
        .wait()
        .unwrap();

    // globex must not see acme's table at all — neither to read it...
    let err = globex
        .submit(sql("SELECT id FROM accounts"))
        .wait()
        .unwrap_err();
    assert!(
        matches!(
            err,
            ServiceError::Storage(spade_storage::StorageError::UnknownTable(_))
        ),
        "cross-tenant SQL read must fail: {err}"
    );
    // ...nor to modify it.
    let err = globex
        .submit(sql("INSERT INTO accounts VALUES (666, 0.0)"))
        .wait()
        .unwrap_err();
    assert!(
        matches!(
            err,
            ServiceError::Storage(spade_storage::StorageError::UnknownTable(_))
        ),
        "cross-tenant SQL write must fail: {err}"
    );
    // The default namespace is a tenant like any other.
    assert!(default
        .submit(sql("SELECT id FROM accounts"))
        .wait()
        .is_err());

    // globex can register its own colliding table name with different data
    // and each tenant reads back only its own rows.
    globex
        .submit(sql("CREATE TABLE accounts (id INT, balance FLOAT)"))
        .wait()
        .unwrap();
    globex
        .submit(sql("INSERT INTO accounts VALUES (2, 7.0)"))
        .wait()
        .unwrap();
    let rows = |payload: &ResponsePayload| -> Vec<i64> {
        match payload {
            ResponsePayload::Sql(spade_storage::sql::SqlResult::Rows(t)) => (0..t.num_rows())
                .filter_map(|i| match t.row(i).into_iter().next() {
                    Some(spade_storage::Value::Int(v)) => Some(v),
                    _ => None,
                })
                .collect(),
            other => panic!("expected rows, got {other:?}"),
        }
    };
    let a = acme.submit(sql("SELECT id FROM accounts")).wait().unwrap();
    let g = globex
        .submit(sql("SELECT id FROM accounts"))
        .wait()
        .unwrap();
    assert_eq!(rows(&a.payload), vec![1]);
    assert_eq!(rows(&g.payload), vec![2]);

    // Direct programmatic access agrees: each tenant's store holds exactly
    // its own table contents.
    let acme_rows = svc
        .with_database("acme", |db| {
            spade_storage::sql::execute(db, "SELECT id FROM accounts").unwrap()
        })
        .unwrap();
    match acme_rows {
        spade_storage::sql::SqlResult::Rows(t) => assert_eq!(t.num_rows(), 1),
        other => panic!("expected rows, got {other:?}"),
    }
}
