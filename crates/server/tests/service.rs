//! Integration tests of the concurrent query service.
//!
//! The differential tests pin down the service's core guarantee: routing a
//! query through sessions, admission, and the worker pool changes *when*
//! it runs, never *what* it returns — results are byte-identical
//! (`PartialEq` over [`QueryResult`]) to a fresh single-threaded engine.
//! The property tests pin down the admission/cancellation invariants:
//! reservations never exceed device capacity, every submitted query
//! resolves (no deadlock), and cancellation mid-join leaves the device
//! ledger balanced.

use proptest::prelude::*;
use spade_core::dataset::{Dataset, DatasetKind, IndexedDataset};
use spade_core::query::{self, JoinQuery, QueryResult, SelectQuery};
use spade_core::{CancelToken, EngineConfig, Spade};
use spade_geometry::{BBox, Point, Polygon};
use spade_index::GridIndex;
use spade_server::{QueryRequest, QueryService, ResponsePayload, ServiceConfig, ServiceError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `test_small` with the canvases shrunk further: these tests run many
/// queries through the software rasterizer in debug builds, and both sides
/// of every differential comparison share the config, so resolution only
/// costs time. The throughput test keeps `test_small` proper.
fn tiny_config() -> EngineConfig {
    let mut c = EngineConfig::test_small();
    c.resolution = 128;
    c.layer_resolution = 128;
    c.filter_resolution = 64;
    c.distance_resolution = 128;
    c.knn_circles = 16;
    c
}

fn scatter(n: usize, extent: f64, seed: u64) -> Vec<Point> {
    let unit = spade_datagen::spider::uniform_points(n, seed);
    spade_datagen::spider::scale_points(&unit, &BBox::new(Point::ZERO, Point::new(extent, extent)))
}

fn polygon_field() -> Vec<Polygon> {
    (0..5)
        .flat_map(|i| {
            (0..5).map(move |j| {
                let min = Point::new(i as f64 * 20.0 + 1.5, j as f64 * 20.0 + 1.5);
                Polygon::rect(BBox::new(min, min + Point::new(16.0, 16.0)))
            })
        })
        .collect()
}

fn constraint() -> Polygon {
    Polygon::new(vec![
        Point::new(10.0, 15.0),
        Point::new(85.0, 25.0),
        Point::new(70.0, 80.0),
        Point::new(20.0, 70.0),
    ])
}

fn indexed_points(cell: f64) -> IndexedDataset {
    let d = Dataset::from_points("pts", scatter(800, 100.0, 11));
    let grid = GridIndex::build(None, &d.objects, cell).unwrap();
    IndexedDataset::new("pts", DatasetKind::Points, grid)
}

fn indexed_polys(cell: f64) -> IndexedDataset {
    let d = Dataset::from_polygons("polys", polygon_field());
    let grid = GridIndex::build(None, &d.objects, cell).unwrap();
    IndexedDataset::new("polys", DatasetKind::Polygons, grid)
}

/// The mixed workload every differential test replays.
fn workload() -> Vec<QueryRequest> {
    let r = |a: (f64, f64), b: (f64, f64)| BBox::new(Point::new(a.0, a.1), Point::new(b.0, b.1));
    vec![
        QueryRequest::Select {
            dataset: "pts".into(),
            query: SelectQuery::Range(r((20.0, 20.0), (60.0, 55.0))),
        },
        QueryRequest::Select {
            dataset: "pts".into(),
            query: SelectQuery::Intersects(constraint()),
        },
        QueryRequest::Select {
            dataset: "pts".into(),
            query: SelectQuery::WithinDistance(
                spade_core::distance::DistanceConstraint::Point(Point::new(50.0, 50.0)),
                12.5,
            ),
        },
        QueryRequest::Select {
            dataset: "pts".into(),
            query: SelectQuery::Knn(Point::new(33.0, 66.0), 10),
        },
        QueryRequest::Select {
            dataset: "polys".into(),
            query: SelectQuery::Intersects(constraint()),
        },
        QueryRequest::Select {
            dataset: "polys".into(),
            query: SelectQuery::Contained(constraint()),
        },
        QueryRequest::Join {
            left: "polys".into(),
            right: "pts".into(),
            query: JoinQuery::Intersects,
        },
        QueryRequest::Join {
            left: "polys".into(),
            right: "pts".into(),
            query: JoinQuery::CountPoints,
        },
    ]
}

/// What a fresh, single-threaded engine says each workload entry returns.
fn baseline(config: &EngineConfig) -> Vec<QueryResult> {
    let spade = Spade::new(config.clone());
    let pts = indexed_points(25.0);
    let polys = indexed_polys(25.0);
    workload()
        .iter()
        .map(|req| match req {
            QueryRequest::Select { dataset, query } => {
                let d = if dataset == "pts" { &pts } else { &polys };
                query::run_select_indexed(&spade, d, query).unwrap().result
            }
            QueryRequest::Join { query, .. } => {
                query::run_join_indexed(&spade, &polys, &pts, query)
                    .unwrap()
                    .result
            }
            QueryRequest::Sql(_)
            | QueryRequest::Explain { .. }
            | QueryRequest::Insert { .. }
            | QueryRequest::Delete { .. }
            | QueryRequest::Flush { .. } => {
                unreachable!("workload has no SQL, EXPLAIN, or writes")
            }
        })
        .collect()
}

fn service(config: ServiceConfig) -> QueryService {
    let svc = QueryService::new(config);
    svc.register_indexed("pts", indexed_points(25.0));
    svc.register_indexed("polys", indexed_polys(25.0));
    svc
}

fn expect_query(payload: ResponsePayload) -> QueryResult {
    match payload {
        ResponsePayload::Query(q) => q,
        other => panic!("expected spatial result, got {other:?}"),
    }
}

#[test]
fn differential_one_session() {
    let config = tiny_config();
    let expected = baseline(&config);
    let svc = service(ServiceConfig {
        engine: config,
        workers: 2,
        fairness_cap: 2,
        wal_dir: None,
    });
    let session = svc.session();
    for (req, want) in workload().into_iter().zip(&expected) {
        let resp = session.submit(req).wait().expect("query succeeds");
        assert_eq!(&expect_query(resp.payload), want);
    }
    let snap = svc.stats();
    assert_eq!(snap.completed, expected.len() as u64);
    assert_eq!(snap.failed + snap.rejected + snap.cancelled, 0);
}

#[test]
fn differential_sixteen_sessions() {
    let config = tiny_config();
    let expected = Arc::new(baseline(&config));
    let svc = Arc::new(service(ServiceConfig {
        engine: config,
        workers: 4,
        fairness_cap: 2,
        wal_dir: None,
    }));
    std::thread::scope(|s| {
        for t in 0..16u64 {
            let svc = Arc::clone(&svc);
            let expected = Arc::clone(&expected);
            s.spawn(move || {
                let session = svc.session();
                // Each session walks the workload at a different offset so
                // distinct query classes overlap in flight.
                let reqs = workload();
                let n = reqs.len();
                // Each session runs half the workload; the rotation covers
                // every workload entry (and overlaps every pair of query
                // classes) across the 16 sessions.
                let tickets: Vec<_> = (0..n / 2)
                    .map(|i| (i + t as usize) % n)
                    .map(|i| (i, session.submit(reqs[i].clone())))
                    .collect();
                for (i, ticket) in tickets {
                    let resp = ticket.wait().expect("query succeeds");
                    assert_eq!(&expect_query(resp.payload), &expected[i]);
                }
            });
        }
    });
    let snap = svc.stats();
    assert_eq!(snap.failed + snap.rejected, 0);
    assert_eq!(snap.completed, snap.submitted);
    // All device memory and reservations returned once the result cache
    // (whose resident entries are deliberately ledger-charged) is drained.
    svc.engine().result_cache.clear();
    assert_eq!(svc.engine().device.used(), 0);
}

/// Sixteen reader sessions race one writer session that inserts, replaces,
/// deletes, and periodically flushes a WAL-backed dataset while the
/// background compactor churns generations underneath. Invariants: every
/// ticket resolves (no deadlock), no read is torn (an id appears at most
/// once per result, whatever generation the query ran against), the final
/// state equals the writer's script, and the ledgers balance.
#[test]
fn sixteen_sessions_with_live_writer() {
    let wal_dir = std::env::temp_dir().join(format!("spade-svc-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let mut config = tiny_config();
    config.compact_trigger_bytes = 512; // keep the compactor busy
    let svc = Arc::new(service(ServiceConfig {
        engine: config,
        workers: 4,
        fairness_cap: 2,
        wal_dir: Some(wal_dir.clone()),
    }));

    const WRITES: u32 = 150;
    std::thread::scope(|s| {
        // One writer: fresh inserts, replacements of its own earlier ids,
        // deletes of every tenth, a flush every fortieth.
        {
            let svc = Arc::clone(&svc);
            s.spawn(move || {
                let session = svc.session();
                for i in 0..WRITES {
                    let geometry = spade_geometry::Geometry::Point(Point::new(
                        (i % 23) as f64 * 4.2,
                        (i % 29) as f64 * 3.3,
                    ));
                    let req = if i % 10 == 9 {
                        QueryRequest::Delete {
                            dataset: "pts".into(),
                            id: 20_000 + i - 5, // delete an id inserted earlier
                        }
                    } else {
                        QueryRequest::Insert {
                            dataset: "pts".into(),
                            id: 20_000 + i,
                            geometry,
                        }
                    };
                    let resp = session.submit(req).wait().expect("write succeeds");
                    assert!(resp.payload.ack().is_some());
                    if i % 40 == 39 {
                        session
                            .submit(QueryRequest::Flush {
                                dataset: "pts".into(),
                            })
                            .wait()
                            .expect("flush succeeds");
                    }
                }
            });
        }
        // Sixteen readers: each replays the workload; results vary with the
        // in-flight writes, but every result must be internally consistent.
        for t in 0..16u64 {
            let svc = Arc::clone(&svc);
            s.spawn(move || {
                let session = svc.session();
                // Half the workload each; the rotation still covers every
                // query class across the 16 sessions.
                let reqs = workload();
                for i in 0..reqs.len() / 2 {
                    let req = reqs[(i + t as usize) % reqs.len()].clone();
                    let resp = session.submit(req).wait().expect("query succeeds");
                    if let ResponsePayload::Query(QueryResult::Ids(ids)) = &resp.payload {
                        let mut dedup = ids.clone();
                        dedup.sort_unstable();
                        dedup.dedup();
                        assert_eq!(dedup.len(), ids.len(), "torn read: duplicate ids");
                    }
                }
            });
        }
    });

    // Quiesce: flush folds every surviving write into a fresh generation.
    let session = svc.session();
    session
        .submit(QueryRequest::Flush {
            dataset: "pts".into(),
        })
        .wait()
        .expect("final flush succeeds");

    // The writer's script, replayed sequentially, is the expected state.
    let mut expect: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for i in 0..WRITES {
        if i % 10 == 9 {
            expect.remove(&(20_000 + i - 5));
        } else {
            expect.insert(20_000 + i);
        }
    }
    let resp = session
        .submit(QueryRequest::Select {
            dataset: "pts".into(),
            query: SelectQuery::Range(BBox::new(
                Point::new(-10.0, -10.0),
                Point::new(200.0, 200.0),
            )),
        })
        .wait()
        .expect("final query succeeds");
    let got: Vec<u32> = match resp.payload {
        ResponsePayload::Query(QueryResult::Ids(ids)) => {
            ids.into_iter().filter(|id| *id >= 20_000).collect()
        }
        other => panic!("expected ids, got {other:?}"),
    };
    assert_eq!(got, expect.into_iter().collect::<Vec<u32>>());

    let snap = svc.stats();
    assert_eq!(snap.failed + snap.rejected + snap.cancelled, 0);
    assert_eq!(snap.completed, snap.submitted);
    assert_eq!(snap.accounted(), snap.submitted);
    // Resident cache entries hold ledger-charged bytes by design; drain
    // them, then every reservation must be back.
    svc.engine().result_cache.clear();
    assert_eq!(svc.engine().device.used(), 0);
    drop(svc);
    std::fs::remove_dir_all(&wal_dir).ok();
}

#[test]
fn sql_round_trips_through_sessions() {
    let svc = QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 2,
        fairness_cap: 2,
        wal_dir: None,
    });
    let session = svc.session();
    for stmt in [
        "CREATE TABLE t (id INT, score FLOAT)",
        "INSERT INTO t VALUES (1, 0.25)",
        "INSERT INTO t VALUES (2, 0.75)",
        "INSERT INTO t VALUES (3, 0.5)",
    ] {
        session
            .submit(QueryRequest::Sql(stmt.into()))
            .wait()
            .expect("statement succeeds");
    }
    let resp = session
        .submit(QueryRequest::Sql(
            "SELECT id FROM t WHERE score >= 0.5 ORDER BY score DESC".into(),
        ))
        .wait()
        .expect("select succeeds");

    // The same statements against a standalone database give the same rows.
    let reference = spade_storage::Database::in_memory();
    for stmt in [
        "CREATE TABLE t (id INT, score FLOAT)",
        "INSERT INTO t VALUES (1, 0.25)",
        "INSERT INTO t VALUES (2, 0.75)",
        "INSERT INTO t VALUES (3, 0.5)",
    ] {
        spade_storage::sql::execute(&reference, stmt).unwrap();
    }
    let want = spade_storage::sql::execute(
        &reference,
        "SELECT id FROM t WHERE score >= 0.5 ORDER BY score DESC",
    )
    .unwrap();
    match resp.payload {
        ResponsePayload::Sql(got) => assert_eq!(got, want),
        other => panic!("expected SQL result, got {other:?}"),
    }
}

#[test]
fn unknown_dataset_fails_fast() {
    let svc = service(ServiceConfig {
        engine: tiny_config(),
        workers: 1,
        fairness_cap: 1,
        wal_dir: None,
    });
    let err = svc
        .session()
        .submit(QueryRequest::Select {
            dataset: "nope".into(),
            query: SelectQuery::Range(BBox::new(Point::ZERO, Point::new(1.0, 1.0))),
        })
        .wait()
        .unwrap_err();
    assert_eq!(err, ServiceError::UnknownDataset("nope".into()));
}

#[test]
fn oversized_footprint_is_rejected() {
    // A device smaller than one constraint canvas can never admit an
    // indexed query: the estimate exceeds capacity, so the service rejects
    // at submit instead of queueing forever.
    let mut engine = tiny_config();
    engine.device_memory = 64 << 10;
    let svc = service(ServiceConfig {
        engine,
        workers: 1,
        fairness_cap: 1,
        wal_dir: None,
    });
    let err = svc
        .session()
        .submit(QueryRequest::Select {
            dataset: "pts".into(),
            query: SelectQuery::Intersects(constraint()),
        })
        .wait()
        .unwrap_err();
    match err {
        ServiceError::Rejected {
            estimated,
            capacity,
        } => assert!(estimated > capacity),
        other => panic!("expected rejection, got {other:?}"),
    }
    assert_eq!(svc.stats().rejected, 1);
}

#[test]
fn cancelled_mid_join_leaves_ledger_balanced() {
    // Pace transfers at a very low modeled bandwidth so the join reliably
    // spans many cell boundaries in wall time, then cancel mid-flight.
    let mut engine = tiny_config();
    engine.pace_transfers = true;
    engine.bandwidth = 2.0e6; // 2 MB/s: the constraint canvas alone takes ~130 ms
    let svc = service(ServiceConfig {
        engine,
        workers: 1,
        fairness_cap: 1,
        wal_dir: None,
    });
    let session = svc.session();
    let token = CancelToken::new();
    let ticket = session.submit_with_token(
        QueryRequest::Join {
            left: "polys".into(),
            right: "pts".into(),
            query: JoinQuery::Intersects,
        },
        token.clone(),
    );
    std::thread::sleep(Duration::from_millis(40));
    token.cancel();
    let err = ticket.wait().unwrap_err();
    assert_eq!(err, ServiceError::Cancelled);
    assert_eq!(
        svc.engine().device.used(),
        0,
        "cancellation must free every device allocation"
    );
    assert_eq!(svc.stats().cancelled, 1);
}

#[test]
fn deadline_expires_queued_or_running() {
    let svc = service(ServiceConfig {
        engine: tiny_config(),
        workers: 1,
        fairness_cap: 1,
        wal_dir: None,
    });
    let session = svc.session();
    let ticket = session.submit_with_deadline(
        QueryRequest::Join {
            left: "polys".into(),
            right: "pts".into(),
            query: JoinQuery::Intersects,
        },
        Duration::ZERO,
    );
    let err = ticket.wait().unwrap_err();
    assert_eq!(err, ServiceError::DeadlineExceeded);
    assert_eq!(svc.engine().device.used(), 0);
}

#[test]
fn snapshot_accounts_for_every_submission() {
    let svc = service(ServiceConfig {
        engine: tiny_config(),
        workers: 2,
        fairness_cap: 2,
        wal_dir: None,
    });
    let session = svc.session();
    let mut tickets = Vec::new();
    for _ in 0..3 {
        for req in workload() {
            tickets.push(session.submit(req));
        }
    }
    for t in tickets {
        t.wait().expect("query succeeds");
    }
    let snap = svc.stats();
    assert_eq!(snap.queue_depth, 0);
    assert_eq!(snap.running, 0);
    assert_eq!(snap.accounted(), snap.submitted);
    assert_eq!(snap.admitted, snap.submitted);
    assert!(snap.total_exec > Duration::ZERO);
    assert!(snap.p50_latency > Duration::ZERO);
    assert!(snap.p95_latency >= snap.p50_latency);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random mixes of queries, deadlines, and cancels: every ticket
    /// resolves (no deadlock), reservations never exceed device capacity,
    /// and the idle service holds no device memory or reservations.
    #[test]
    fn admission_invariants_under_random_load(
        seeds in prop::collection::vec(0u64..1_000, 8..16),
        workers in 1usize..4,
        cap in 1usize..3,
    ) {
        let svc = Arc::new(service(ServiceConfig {
            engine: tiny_config(),
            workers,
            fairness_cap: cap,
            wal_dir: None,
        }));
        let reqs = workload();
        let capacity = svc.engine().device.capacity();
        let tickets: Vec<_> = seeds
            .iter()
            .map(|&s| {
                let session = svc.session();
                let req = reqs[(s as usize) % reqs.len()].clone();
                match s % 3 {
                    0 => session.submit(req),
                    1 => session.submit_with_deadline(req, Duration::from_millis(s % 7)),
                    _ => {
                        let t = session.submit(req);
                        if s % 2 == 0 {
                            t.cancel();
                        }
                        t
                    }
                }
            })
            .collect();
        for t in tickets {
            match t.wait() {
                Ok(_)
                | Err(ServiceError::Cancelled)
                | Err(ServiceError::DeadlineExceeded) => {}
                Err(other) => {
                    prop_assert!(false, "unexpected error: {other}");
                }
            }
            prop_assert!(svc.engine().device.used() <= capacity);
        }
        let snap = svc.stats();
        prop_assert_eq!(snap.queue_depth, 0);
        prop_assert_eq!(snap.running, 0);
        prop_assert_eq!(snap.accounted(), snap.submitted);
        // Drain the (ledger-charged) result cache before checking that the
        // device ledger is balanced.
        svc.engine().result_cache.clear();
        prop_assert_eq!(svc.engine().device.used(), 0);
    }
}

/// Acceptance: concurrency must buy wall-clock. With paced transfers the
/// device bus is the modeled bottleneck (§5.4), and four sessions overlap
/// their transfer stalls. Release-only: the CI concurrency job runs it.
#[test]
#[cfg_attr(debug_assertions, ignore = "timing-sensitive; run in release")]
fn four_sessions_beat_one_by_1_5x() {
    let mut engine = EngineConfig::test_small();
    engine.pace_transfers = true;
    engine.bandwidth = 2.0e8; // 200 MB/s: ~5 ms per constraint canvas
    let make = |engine: EngineConfig| {
        service(ServiceConfig {
            engine,
            workers: 4,
            fairness_cap: 2,
            wal_dir: None,
        })
    };
    let req = || QueryRequest::Select {
        dataset: "pts".into(),
        query: SelectQuery::Intersects(constraint()),
    };
    const PER_SESSION: usize = 12;

    // One session, strictly sequential.
    let svc = make(engine.clone());
    let session = svc.session();
    let t0 = Instant::now();
    for _ in 0..4 * PER_SESSION {
        session.submit(req()).wait().expect("query succeeds");
    }
    let solo = t0.elapsed();
    drop(svc);

    // Four sessions, each sequential, running concurrently.
    let svc = Arc::new(make(engine));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let svc = Arc::clone(&svc);
            s.spawn(move || {
                let session = svc.session();
                for _ in 0..PER_SESSION {
                    session.submit(req()).wait().expect("query succeeds");
                }
            });
        }
    });
    let four = t0.elapsed();

    let speedup = solo.as_secs_f64() / four.as_secs_f64();
    assert!(
        speedup > 1.5,
        "expected >1.5x throughput at 4 sessions, got {speedup:.2}x \
         (solo {solo:?}, four sessions {four:?})"
    );
}

/// `metrics_text()` must expose the admission counters, the queue/exec
/// wall-split histograms, and the engine transfer/cache counters in
/// Prometheus text exposition format after real queries ran.
#[test]
fn metrics_text_exposes_service_and_engine_counters() {
    let svc = service(ServiceConfig {
        engine: tiny_config(),
        workers: 2,
        fairness_cap: 4,
        wal_dir: None,
    });
    let session = svc.session();
    for req in workload() {
        session.submit(req).wait().expect("query succeeds");
    }
    let text = svc.metrics_text();

    let value_of = |metric: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(metric) && l.split_whitespace().count() == 2)
            .unwrap_or_else(|| panic!("metric '{metric}' missing:\n{text}"))
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse::<f64>()
            .unwrap() as u64
    };
    let n = workload().len() as u64;
    assert_eq!(value_of("spade_queries_submitted_total"), n);
    assert_eq!(value_of("spade_queries_completed_total"), n);
    assert_eq!(value_of("spade_queries_rejected_total"), 0);
    assert_eq!(value_of("spade_queue_wait_seconds_count"), n);
    assert_eq!(value_of("spade_exec_seconds_count"), n);
    // The out-of-core workload moved bytes and ran pipeline passes.
    assert!(value_of("spade_bytes_to_device_total") > 0);
    assert!(value_of("spade_passes_total") > 0);
    assert!(value_of("spade_cells_loaded_total") > 0);
    // Exposition format: every metric carries HELP/TYPE headers, and the
    // histograms end in a +Inf bucket that equals their count.
    assert!(text.contains("# HELP spade_exec_seconds "));
    assert!(text.contains("# TYPE spade_exec_seconds histogram"));
    assert!(text.contains("spade_exec_seconds_bucket{le=\"+Inf\"}"));
    assert!(text.contains("# TYPE spade_queries_submitted_total counter"));
    assert!(text.contains("# TYPE spade_queue_depth gauge"));
    // The shared render executor and framebuffer arena report through the
    // same endpoint: the workload dispatched parallel pipeline stages and
    // recycled transient render targets.
    assert!(value_of("spade_pool_workers") >= 1);
    assert_eq!(value_of("spade_pool_busy"), 0);
    assert!(value_of("spade_pool_jobs_total") > 0);
    assert!(value_of("spade_pool_tasks_total") >= value_of("spade_pool_jobs_total"));
    assert!(value_of("spade_arena_misses_total") > 0);
    assert!(
        value_of("spade_arena_hits_total") > 0,
        "workload re-renders same-size canvases; arena should hit:\n{text}"
    );
    // Nothing checked out between queries; retained bytes respect the cap.
    assert_eq!(value_of("spade_arena_live_bytes"), 0);
    assert!(text.contains("# TYPE spade_pool_jobs_total counter"));
    assert!(text.contains("# TYPE spade_arena_pooled_bytes gauge"));
}

/// Sixteen sessions hammer one shared executor + arena with draw calls of
/// wildly different sizes (tiny knn circles next to full-canvas joins).
/// Every result must still match the sequential baseline and the arena must
/// end fully returned — the CI concurrency-stress job picks this up by name.
#[test]
fn concurrent_mixed_draw_sizes_share_executor_and_arena() {
    let config = tiny_config();
    let expected = Arc::new(baseline(&config));
    let svc = Arc::new(service(ServiceConfig {
        engine: config,
        workers: 4,
        fairness_cap: 2,
        wal_dir: None,
    }));
    // Mixed draw-call sizes: knn (few small circles), range (no canvas),
    // distance (medium circle canvas), polygon joins (full-resolution
    // two-pass Map). Each session interleaves them in a different order.
    std::thread::scope(|s| {
        for t in 0..16u64 {
            let svc = Arc::clone(&svc);
            let expected = Arc::clone(&expected);
            s.spawn(move || {
                let session = svc.session();
                let reqs = workload();
                let n = reqs.len();
                let order: Vec<usize> = (0..n).map(|i| (i * 3 + t as usize) % n).collect();
                for &i in &order {
                    let resp = session
                        .submit(reqs[i].clone())
                        .wait()
                        .expect("query succeeds");
                    assert_eq!(&expect_query(resp.payload), &expected[i]);
                }
            });
        }
    });
    let snap = svc.stats();
    assert_eq!(snap.failed + snap.rejected + snap.cancelled, 0);
    assert_eq!(snap.completed, snap.submitted);
    // The shared executor processed jobs from every session; the arena has
    // no texture still checked out and its free lists honour the byte cap.
    let pool = svc.engine().pipeline.pool().stats();
    assert!(pool.jobs > 0);
    assert_eq!(pool.busy, 0);
    let arena = svc.engine().pipeline.arena().stats();
    assert_eq!(arena.live_bytes, 0);
    assert!(arena.pooled_bytes <= svc.engine().config.texture_pool_bytes);
    // Resident result-cache entries are the only legitimate remaining
    // charge; draining them must balance the ledger exactly.
    svc.engine().result_cache.clear();
    assert_eq!(svc.engine().device.used(), 0);
}

/// EXPLAIN of a spatial join prints the optimizer's strategy decision with
/// its byte estimates; ANALYZE adds the measured numbers next to them.
#[test]
fn explain_analyze_reports_join_decisions() {
    let svc = service(ServiceConfig {
        engine: tiny_config(),
        workers: 1,
        fairness_cap: 4,
        wal_dir: None,
    });
    let session = svc.session();
    let join = QueryRequest::Join {
        left: "polys".into(),
        right: "pts".into(),
        query: JoinQuery::Intersects,
    };

    let resp = session
        .submit(QueryRequest::Explain {
            analyze: false,
            request: Box::new(join.clone()),
        })
        .wait()
        .expect("explain succeeds");
    let plain = resp.payload.explain().expect("explain payload").to_string();
    assert!(plain.starts_with("EXPLAIN join"), "{plain}");
    assert!(plain.contains("strategy:"), "{plain}");
    assert!(plain.contains("est layer"), "{plain}");
    assert!(plain.contains("cell pairs:"), "{plain}");
    assert!(
        !plain.contains("actual"),
        "plain EXPLAIN has actuals: {plain}"
    );

    let resp = session
        .submit(QueryRequest::Explain {
            analyze: true,
            request: Box::new(join),
        })
        .wait()
        .expect("explain analyze succeeds");
    let analyzed = resp.payload.explain().expect("explain payload").to_string();
    assert!(analyzed.starts_with("EXPLAIN ANALYZE join"), "{analyzed}");
    assert!(analyzed.contains("actual to-device"), "{analyzed}");
    assert!(analyzed.contains("total="), "{analyzed}");
}

/// EXPLAIN of a selection reports the Map implementation choice (1-pass vs
/// 2-pass) with `n_max` against the slot budget.
#[test]
fn explain_select_reports_map_choice() {
    let svc = service(ServiceConfig {
        engine: tiny_config(),
        workers: 1,
        fairness_cap: 4,
        wal_dir: None,
    });
    let session = svc.session();
    let resp = session
        .submit(QueryRequest::Explain {
            analyze: true,
            request: Box::new(QueryRequest::Select {
                dataset: "pts".into(),
                query: SelectQuery::Intersects(constraint()),
            }),
        })
        .wait()
        .expect("explain succeeds");
    let text = resp.payload.explain().expect("explain payload").to_string();
    assert!(text.contains("map:"), "{text}");
    assert!(text.contains("1-pass"), "{text}");
    assert!(text.contains("slots"), "{text}");
    assert!(text.contains("actual results"), "{text}");
}

/// EXPLAIN of a SQL request forwards to the SQL layer's planner.
#[test]
fn explain_sql_forwards_to_sql_planner() {
    let svc = QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 1,
        fairness_cap: 4,
        wal_dir: None,
    });
    let session = svc.session();
    session
        .submit(QueryRequest::Sql("CREATE TABLE t (id INT)".into()))
        .wait()
        .expect("create succeeds");
    let resp = session
        .submit(QueryRequest::Explain {
            analyze: false,
            request: Box::new(QueryRequest::Sql(
                "SELECT id FROM t WHERE id > 3 LIMIT 2".into(),
            )),
        })
        .wait()
        .expect("explain succeeds");
    let text = resp.payload.explain().expect("explain payload").to_string();
    assert!(text.contains("Limit 2"), "{text}");
    assert!(text.contains("Filter"), "{text}");
    assert!(text.contains("Scan t"), "{text}");
}

#[test]
fn submits_racing_shutdown_all_resolve() {
    // Submissions racing `shutdown()` must never strand a ticket: each
    // either executes (drained gracefully) or is refused with `Shutdown`.
    // Before the enqueue path re-checked the drain flags under the queue
    // mutex, a push could land after the workers drained and exited,
    // leaving `wait()` blocked forever — this test then hangs.
    for _ in 0..8 {
        let svc = std::sync::Arc::new(service(ServiceConfig {
            engine: tiny_config(),
            workers: 2,
            fairness_cap: 8,
            wal_dir: None,
        }));
        let submitters: Vec<_> = (0..4)
            .map(|_| {
                let svc = std::sync::Arc::clone(&svc);
                std::thread::spawn(move || {
                    let session = svc.session();
                    for i in 0..50 {
                        let lo = (i % 90) as f64;
                        let ticket = session.submit(QueryRequest::Select {
                            dataset: "pts".into(),
                            query: SelectQuery::Range(BBox::new(
                                Point::new(lo, lo),
                                Point::new(lo + 5.0, lo + 5.0),
                            )),
                        });
                        // Every ticket must resolve, whichever side of the
                        // drain gate it landed on.
                        let _ = ticket.wait();
                    }
                })
            })
            .collect();
        // Let the burst get going, then shut down concurrently.
        std::thread::sleep(std::time::Duration::from_millis(2));
        svc.shutdown();
        for s in submitters {
            s.join().unwrap();
        }
    }
}
