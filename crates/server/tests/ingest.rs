//! Live-ingestion through the service: write requests, WAL durability,
//! crash recovery, and the SQL observer bridge.
//!
//! These tests exercise the full write path — session → WAL append → delta
//! store → (background or forced) compaction — and then kill the service
//! (drop, or drop *plus* a torn WAL tail) and verify that a fresh service
//! over the same directories serves exactly the acknowledged state.

use spade_core::dataset::{Dataset, DatasetKind, IndexedDataset};
use spade_core::query::{QueryResult, SelectQuery};
use spade_core::EngineConfig;
use spade_datagen::spider;
use spade_geometry::{BBox, Geometry, Point};
use spade_index::GridIndex;
use spade_server::{QueryRequest, QueryService, ResponsePayload, ServiceConfig};
use spade_storage::wal::WalSync;
use std::path::PathBuf;

fn tiny_config() -> EngineConfig {
    let mut c = EngineConfig::test_small();
    c.resolution = 128;
    c.layer_resolution = 128;
    c.filter_resolution = 64;
    c.distance_resolution = 128;
    c.knn_circles = 16;
    c
}

/// A config whose compaction never triggers on its own: recovery must go
/// through WAL replay, not through a conveniently persisted generation.
fn no_compact_config() -> EngineConfig {
    let mut c = tiny_config();
    c.compact_trigger_bytes = u64::MAX;
    c.delta_max_bytes = u64::MAX;
    c
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("spade-svc-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn scatter(n: usize, extent: f64, seed: u64) -> Vec<Point> {
    let unit = spider::uniform_points(n, seed);
    spider::scale_points(&unit, &BBox::new(Point::ZERO, Point::new(extent, extent)))
}

/// Build the base "pts" grid on disk under `dir`.
fn build_disk_points(dir: &std::path::Path) -> IndexedDataset {
    let d = Dataset::from_points("pts", scatter(400, 100.0, 11));
    let grid = GridIndex::build(Some(dir.to_path_buf()), &d.objects, 25.0).unwrap();
    // Persist the generation-0 manifest so the dataset is reopenable even
    // if it crashes before its first compaction.
    grid.save_manifest(0).unwrap();
    IndexedDataset::new("pts", DatasetKind::Points, grid)
}

fn svc_config(engine: EngineConfig, wal_dir: &std::path::Path) -> ServiceConfig {
    ServiceConfig {
        engine,
        workers: 2,
        fairness_cap: 2,
        wal_dir: Some(wal_dir.to_path_buf()),
    }
}

fn pt(x: f64, y: f64) -> Geometry {
    Geometry::Point(Point::new(x, y))
}

fn everything() -> QueryRequest {
    QueryRequest::Select {
        dataset: "pts".into(),
        query: SelectQuery::Range(BBox::new(
            Point::new(-50.0, -50.0),
            Point::new(200.0, 200.0),
        )),
    }
}

fn ids_of(svc: &QueryService, req: QueryRequest) -> Vec<u32> {
    let resp = svc.session().submit(req).wait().expect("query succeeds");
    match resp.payload {
        ResponsePayload::Query(QueryResult::Ids(ids)) => ids,
        other => panic!("expected id list, got {other:?}"),
    }
}

fn ack(svc: &QueryService, req: QueryRequest) -> (u64, u64) {
    let resp = svc.session().submit(req).wait().expect("write succeeds");
    resp.payload.ack().expect("write returns an Ack")
}

fn insert(dataset: &str, id: u32, x: f64, y: f64) -> QueryRequest {
    QueryRequest::Insert {
        dataset: dataset.into(),
        id,
        geometry: pt(x, y),
    }
}

fn delete(dataset: &str, id: u32) -> QueryRequest {
    QueryRequest::Delete {
        dataset: dataset.into(),
        id,
    }
}

/// Un-flushed, un-compacted writes survive a service restart purely through
/// WAL replay into the delta store at `register_indexed` time.
#[test]
fn acknowledged_writes_survive_restart() {
    let wal_dir = tmp("restart-wal");
    let idx_dir = tmp("restart-idx");

    let want = {
        let svc = QueryService::new(svc_config(no_compact_config(), &wal_dir));
        svc.register_indexed("pts", build_disk_points(&idx_dir));
        let (s1, _) = ack(&svc, insert("pts", 9001, 110.0, 110.0));
        let (s2, _) = ack(&svc, insert("pts", 9002, 55.0, 45.0));
        let (s3, _) = ack(&svc, delete("pts", 5));
        let (s4, _) = ack(&svc, insert("pts", 7, 61.0, 39.0)); // replace
        assert!(s1 < s2 && s2 < s3 && s3 < s4, "sequences ascend per write");
        let text = svc.metrics_text();
        assert!(text.contains("spade_wal_appends_total 4"), "{text}");
        ids_of(&svc, everything())
        // Drop without Flush: durability comes from the WAL alone.
    };
    assert!(want.contains(&9001) && want.contains(&9002));
    assert!(!want.contains(&5));

    let svc = QueryService::new(svc_config(no_compact_config(), &wal_dir));
    let (data, wal_seq) = IndexedDataset::open("pts", DatasetKind::Points, idx_dir).unwrap();
    assert_eq!(wal_seq, 0, "nothing was ever compacted");
    svc.register_indexed("pts", data);
    let got = ids_of(&svc, everything());
    assert_eq!(got, want, "recovered state differs from acknowledged state");
}

/// `Flush` forces compaction and a checkpoint: recovery then comes from the
/// persisted index generation, and replay skips the folded records.
#[test]
fn flush_checkpoints_and_recovery_skips_folded_records() {
    let wal_dir = tmp("flush-wal");
    let idx_dir = tmp("flush-idx");

    let want = {
        let svc = QueryService::new(svc_config(no_compact_config(), &wal_dir));
        svc.register_indexed("pts", build_disk_points(&idx_dir));
        ack(&svc, insert("pts", 9050, 12.0, 88.0));
        ack(&svc, delete("pts", 3));
        let (ckpt, generation) = ack(
            &svc,
            QueryRequest::Flush {
                dataset: "pts".into(),
            },
        );
        assert!(ckpt >= 2, "checkpoint covers both writes, got {ckpt}");
        assert!(generation >= 1, "flush produced a new generation");
        // One more write *after* the checkpoint: recovery must replay
        // exactly this one.
        ack(&svc, insert("pts", 9051, 91.0, 9.0));
        ids_of(&svc, everything())
    };

    let svc = QueryService::new(svc_config(no_compact_config(), &wal_dir));
    let (data, wal_seq) = IndexedDataset::open("pts", DatasetKind::Points, idx_dir).unwrap();
    assert!(wal_seq >= 2, "manifest carries the checkpointed sequence");
    svc.register_indexed("pts", data);
    let got = ids_of(&svc, everything());
    assert_eq!(got, want);
    // Only the post-checkpoint insert was replayed into the delta.
    let text = svc.metrics_text();
    assert!(text.contains("spade_delta_staged_objects 1"), "{text}");
    assert!(text.contains("spade_delta_tombstones 0"), "{text}");
}

/// A crash that tears the WAL tail mid-record loses exactly the torn write;
/// every earlier acknowledged write still recovers, and the service opens
/// without fuss.
#[test]
fn torn_wal_tail_loses_only_the_final_write() {
    let wal_dir = tmp("torn-wal");
    let idx_dir = tmp("torn-idx");

    {
        let mut cfg = no_compact_config();
        cfg.wal_sync = WalSync::Always;
        let svc = QueryService::new(svc_config(cfg, &wal_dir));
        svc.register_indexed("pts", build_disk_points(&idx_dir));
        ack(&svc, insert("pts", 9080, 110.0, 5.0));
        ack(&svc, insert("pts", 9081, 5.0, 110.0));
        ack(&svc, insert("pts", 9082, 115.0, 115.0));
    }

    // Tear the final record: chop a few bytes off the last segment.
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&wal_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segs.sort();
    let last = segs.pop().unwrap();
    let len = std::fs::metadata(&last).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&last).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    let svc = QueryService::new(svc_config(no_compact_config(), &wal_dir));
    let (data, _) = IndexedDataset::open("pts", DatasetKind::Points, idx_dir).unwrap();
    svc.register_indexed("pts", data);
    let got = ids_of(&svc, everything());
    assert!(got.contains(&9080), "pre-tear write lost");
    assert!(got.contains(&9081), "pre-tear write lost");
    assert!(!got.contains(&9082), "torn write must not half-apply");
}

/// SQL `INSERT` into a table whose name is a registered spatial dataset
/// routes through the observer: the row lands in the relational table, the
/// WAL, and the delta store, so spatial queries see it immediately and it
/// survives a restart.
#[test]
fn sql_insert_is_spatially_visible_and_durable() {
    let wal_dir = tmp("sql-wal");
    let idx_dir = tmp("sql-idx");

    let want = {
        let svc = QueryService::new(svc_config(no_compact_config(), &wal_dir));
        svc.register_indexed("pts", build_disk_points(&idx_dir));
        let session = svc.session();
        for stmt in [
            "CREATE TABLE pts (id INT, x FLOAT, y FLOAT)",
            "INSERT INTO pts VALUES (9200, 42.0, 43.0), (9201, 111.0, 3.0)",
        ] {
            session
                .submit(QueryRequest::Sql(stmt.into()))
                .wait()
                .expect("sql succeeds");
        }
        let ids = ids_of(&svc, everything());
        assert!(ids.contains(&9200) && ids.contains(&9201));
        ids
    };

    let svc = QueryService::new(svc_config(no_compact_config(), &wal_dir));
    let (data, _) = IndexedDataset::open("pts", DatasetKind::Points, idx_dir).unwrap();
    svc.register_indexed("pts", data);
    assert_eq!(ids_of(&svc, everything()), want);
}

/// A SQL `INSERT` into a spatial table with the wrong row shape fails the
/// whole statement — nothing reaches the WAL or the relational table.
#[test]
fn sql_insert_with_wrong_shape_is_rejected() {
    let wal_dir = tmp("sqlbad-wal");
    let idx_dir = tmp("sqlbad-idx");
    let svc = QueryService::new(svc_config(no_compact_config(), &wal_dir));
    svc.register_indexed("pts", build_disk_points(&idx_dir));
    let session = svc.session();
    session
        .submit(QueryRequest::Sql(
            "CREATE TABLE pts (id INT, name TEXT)".into(),
        ))
        .wait()
        .expect("create succeeds");
    let err = session
        .submit(QueryRequest::Sql("INSERT INTO pts VALUES (1, 'a')".into()))
        .wait()
        .expect_err("shape mismatch must fail");
    let msg = format!("{err}");
    assert!(msg.contains("spatial"), "unexpected error: {msg}");
    let text = svc.metrics_text();
    assert!(
        text.contains("spade_wal_appends_total 0"),
        "rejected insert must not reach the WAL: {text}"
    );
}

/// Many writers race explicit flushes. Whatever interleaving of WAL
/// appends, delta drains, and checkpoints the race produces, every
/// acknowledged write must be visible immediately and after a restart —
/// this is the regression test for the append/stage atomicity invariant
/// (a write staged out of order could be drained by a racing compaction
/// yet land past the checkpoint, vanishing on recovery).
#[test]
fn concurrent_writers_racing_flush_lose_nothing() {
    let wal_dir = tmp("race-wal");
    let idx_dir = tmp("race-idx");
    const WRITERS: u32 = 4;
    const PER_WRITER: u32 = 50;

    let want = {
        let mut cfg = no_compact_config();
        cfg.wal_sync = WalSync::GroupCommit;
        let svc = QueryService::new(svc_config(cfg, &wal_dir));
        svc.register_indexed("pts", build_disk_points(&idx_dir));
        std::thread::scope(|s| {
            for t in 0..WRITERS {
                let svc = &svc;
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        let id = 10_000 + t * 1_000 + i;
                        ack(svc, insert("pts", id, (id % 97) as f64, (id % 89) as f64));
                    }
                });
            }
            let svc = &svc;
            s.spawn(move || {
                for _ in 0..10 {
                    let _ = svc
                        .session()
                        .submit(QueryRequest::Flush {
                            dataset: "pts".into(),
                        })
                        .wait();
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
        });
        ids_of(&svc, everything())
    };
    for t in 0..WRITERS {
        for i in 0..PER_WRITER {
            let id = 10_000 + t * 1_000 + i;
            assert!(want.contains(&id), "acknowledged insert {id} not visible");
        }
    }

    let svc = QueryService::new(svc_config(no_compact_config(), &wal_dir));
    let (data, _) = IndexedDataset::open("pts", DatasetKind::Points, idx_dir).unwrap();
    svc.register_indexed("pts", data);
    assert_eq!(
        ids_of(&svc, everything()),
        want,
        "recovered state differs from acknowledged state"
    );
}

/// Background compaction, triggered purely by delta growth, must hold the
/// checkpoint invariant: after the compactor runs, a restart recovers the
/// same state (generation + replayed suffix).
#[test]
fn background_compaction_preserves_recovery_equivalence() {
    let wal_dir = tmp("bg-wal");
    let idx_dir = tmp("bg-idx");

    let want = {
        let mut cfg = tiny_config();
        cfg.compact_trigger_bytes = 256; // compact eagerly
        cfg.delta_max_bytes = 1 << 20;
        let svc = QueryService::new(svc_config(cfg, &wal_dir));
        svc.register_indexed("pts", build_disk_points(&idx_dir));
        for i in 0..120u32 {
            ack(
                &svc,
                insert(
                    "pts",
                    9300 + i,
                    (i % 11) as f64 * 9.5,
                    (i / 11) as f64 * 9.5,
                ),
            );
        }
        ack(&svc, delete("pts", 9305));
        // Give the background compactor a chance to run at least once.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let text = svc.metrics_text();
            if text.contains("spade_compact_runs_total")
                && !text.contains("spade_compact_runs_total 0")
            {
                break;
            }
            if std::time::Instant::now() > deadline {
                break; // don't hang the suite; recovery must hold either way
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        ids_of(&svc, everything())
    };
    assert!(want.contains(&9304) && !want.contains(&9305));

    let svc = QueryService::new(svc_config(tiny_config(), &wal_dir));
    let (data, _) = IndexedDataset::open("pts", DatasetKind::Points, idx_dir).unwrap();
    svc.register_indexed("pts", data);
    assert_eq!(ids_of(&svc, everything()), want);
}
