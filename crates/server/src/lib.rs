//! # spade-server — concurrent query service over the SPADE engine
//!
//! The engine crates answer one query at a time for one caller. This crate
//! turns one shared [`spade_core::Spade`] instance into a *service*: many
//! sessions submit typed [`QueryRequest`]s concurrently and a worker pool
//! executes them against the same engine, device ledger, and catalog.
//!
//! Three service-level mechanisms sit between submission and execution:
//!
//! - **Admission control** ([`AdmissionController`]): each query carries an
//!   estimated device-memory footprint; it starts only when that estimate
//!   fits next to the estimates of every running query, gated against the
//!   [`spade_gpu::DeviceMemory`] capacity. Queries that can never fit are
//!   rejected outright; the rest wait in a FIFO queue with a per-session
//!   fairness cap. This reproduces the paper's observation (§5.4) that the
//!   host–device bus is the bottleneck: thrashing residency between
//!   concurrent queries is worse than briefly queueing one of them.
//! - **Cooperative cancellation** ([`spade_core::CancelToken`]): every
//!   query carries a token, checked by the out-of-core executors at grid
//!   cell boundaries. Cancelling (or an expired deadline) stops the query
//!   at the next boundary with the device ledger balanced.
//! - **Service stats** ([`ServiceSnapshot`]): queue depth, admission
//!   counters, the queue-vs-execution wall split, and p50/p95 latency over
//!   a sliding window of recent completions.
//!
//! ```
//! use spade_core::dataset::Dataset;
//! use spade_core::query::SelectQuery;
//! use spade_core::EngineConfig;
//! use spade_geometry::{BBox, Point};
//! use spade_server::{QueryRequest, QueryService, ServiceConfig};
//!
//! let service = QueryService::new(ServiceConfig {
//!     engine: EngineConfig::test_small(),
//!     workers: 2,
//!     ..Default::default()
//! });
//! let pts = spade_datagen::spider::uniform_points(200, 7);
//! service.register("pts", Dataset::from_points("pts", pts));
//!
//! let session = service.session();
//! let bbox = BBox::new(Point::new(0.2, 0.2), Point::new(0.6, 0.6));
//! let ticket = session.submit(QueryRequest::Select {
//!     dataset: "pts".into(),
//!     query: SelectQuery::Range(bbox),
//! });
//! let response = ticket.wait().unwrap();
//! assert!(response.payload.query().is_some());
//! ```

pub mod admission;
pub mod metrics;
pub mod namespace;
pub mod request;
pub mod service;
pub mod stats;

pub use admission::AdmissionController;
pub use namespace::{NamespaceConfig, DEFAULT_NAMESPACE};
pub use request::{CellInfo, QueryRequest, QueryResponse, ResponsePayload, ServiceError};
pub use service::{QueryService, Reply, ServiceConfig, Session, Ticket};
pub use stats::ServiceSnapshot;
