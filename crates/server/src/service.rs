//! The concurrent query service.
//!
//! One shared [`Spade`] engine behind a worker pool. Sessions submit typed
//! [`QueryRequest`]s and get [`Ticket`]s; workers admit queued queries
//! through the [`AdmissionController`] (FIFO, with a per-session fairness
//! cap), execute them with a per-query [`CancelToken`] threaded into the
//! engine's out-of-core loops, and reply over the ticket's channel.
//!
//! Admission order: the queue is scanned front to back. Entries whose
//! token is cancelled or whose deadline has passed are purged in place.
//! Entries of sessions already running `fairness_cap` queries are skipped
//! (bypassing them is the fairness mechanism — one session cannot occupy
//! every worker while others wait). The first remaining entry must also
//! fit the device-memory reservation; if it does not, the scan *stops*
//! rather than skipping it, so memory admission is strictly FIFO and a
//! large query cannot be starved by a stream of small ones.

use crate::admission::AdmissionController;
use crate::metrics::{
    render_counter, render_gauge, render_labeled_counter, render_labeled_gauge, MetricsRegistry,
};
use crate::namespace::{validate_name, Namespace, NamespaceConfig, DEFAULT_NAMESPACE};
use crate::request::{QueryRequest, QueryResponse, ResponsePayload, ServiceError};
use crate::stats::{ServiceSnapshot, ServiceStats};
use spade_core::cancel::CancelToken;
use spade_core::dataset::{Dataset, IndexedDataset};
use spade_core::query::{self, QueryResult, SelectQuery};
use spade_core::{EngineConfig, QueryStats, Spade};
use spade_storage::wal::{pending_by_dataset, PendingWrites, Wal, WalOp};
use spade_storage::Database;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Engine configuration for the shared [`Spade`] instance.
    pub engine: EngineConfig,
    /// Worker threads executing queries (the concurrency level).
    pub workers: usize,
    /// Maximum queries of one session running at once; further queries of
    /// that session wait even when workers and memory are free.
    pub fairness_cap: usize,
    /// Directory of the write-ahead log. `None` (the default) runs without
    /// durability: writes stage into delta stores but are lost on restart.
    /// With a directory, every insert/delete appends a checksummed WAL
    /// record before it becomes visible, and [`QueryService::with_engine`]
    /// replays unapplied records when the service reopens — datasets
    /// registered afterwards ([`QueryService::register_indexed`]) receive
    /// their pending writes at registration time.
    pub wal_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: EngineConfig::default(),
            workers: 4,
            fairness_cap: 2,
            wal_dir: None,
        }
    }
}

/// The resolution of one submitted query.
pub type Reply = Result<QueryResponse, ServiceError>;

/// Where a completed query's reply goes. Tickets carry a per-query
/// channel; the network server routes many in-flight queries of one
/// connection into a single writer channel, tagged by the wire
/// `request_id`, so responses leave in completion order (out-of-order
/// relative to submission — that is request pipelining).
pub(crate) enum ReplySink {
    Ticket(mpsc::Sender<Reply>),
    Routed {
        tx: mpsc::Sender<(u64, Reply)>,
        id: u64,
    },
}

impl ReplySink {
    fn send(&self, reply: Reply) {
        match self {
            ReplySink::Ticket(tx) => {
                let _ = tx.send(reply);
            }
            ReplySink::Routed { tx, id } => {
                let _ = tx.send((*id, reply));
            }
        }
    }
}

struct Pending {
    session: u64,
    ns: Arc<Namespace>,
    request: QueryRequest,
    cancel: CancelToken,
    footprint: u64,
    enqueued: Instant,
    reply: ReplySink,
}

#[derive(Default)]
struct Queue {
    pending: VecDeque<Pending>,
    running_per_session: HashMap<u64, usize>,
    running: usize,
}

struct Shared {
    spade: Arc<Spade>,
    /// Per-tenant catalogs: keys are `(namespace id, dataset name)`, so
    /// two tenants registering the same name never collide.
    datasets: RwLock<HashMap<(u64, String), Arc<Dataset>>>,
    indexed: RwLock<HashMap<(u64, String), Arc<IndexedDataset>>>,
    /// Tenant namespaces by name. The default namespace (id 0) is created
    /// at construction and cannot be removed.
    namespaces: RwLock<HashMap<String, Arc<Namespace>>>,
    /// The always-present default namespace, held directly so accessors
    /// like [`QueryService::database`] can borrow through it without going
    /// through the map.
    default_ns: Arc<Namespace>,
    next_namespace: AtomicU64,
    admission: AdmissionController,
    queue: Mutex<Queue>,
    work_ready: Condvar,
    stats: ServiceStats,
    metrics: MetricsRegistry,
    fairness_cap: usize,
    /// Graceful-shutdown phase: new submissions are refused while queued
    /// and running queries drain ([`QueryService::shutdown`]).
    draining: AtomicBool,
    shutdown: AtomicBool,
    next_session: AtomicU64,
    /// The write-ahead log, when the service was configured with a
    /// `wal_dir`. Appends serialize under this mutex (the WAL is a single
    /// sequenced stream across datasets); group-commit batching inside
    /// [`Wal`] keeps the fsync rate low regardless of writer count.
    ///
    /// Invariant: a WAL append and the delta staging of its record happen
    /// inside ONE critical section of this mutex. Releasing the lock
    /// between the two would let writers stage out of sequence order and,
    /// worse, let a compaction snapshot+drain race swallow a sequence that
    /// was assigned but not yet staged — a permanently lost acknowledged
    /// write (the checkpoint would tell replay to skip it). Lock order is
    /// always `wal` → dataset `live`; nothing takes them in reverse.
    wal: Option<Mutex<Wal>>,
    /// WAL records replayed at open that still await their dataset: keyed
    /// by dataset name, drained when [`QueryService::register_indexed`]
    /// registers that dataset.
    pending: Mutex<BTreeMap<String, PendingWrites>>,
    /// Datasets whose staged delta crossed `compact_trigger_bytes`,
    /// awaiting the background compactor. Deduplicated on push; entries
    /// carry their namespace so the compactor writes tenant-qualified
    /// checkpoint records.
    compact_queue: Mutex<VecDeque<(Arc<Namespace>, String)>>,
    compact_ready: Condvar,
}

/// A query service over one shared engine. [`QueryService::shutdown`]
/// drains gracefully; dropping the service without it shuts the worker
/// pool down hard — queued queries reply [`ServiceError::Shutdown`].
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    compactor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl QueryService {
    /// Build a service owning a freshly configured engine.
    pub fn new(config: ServiceConfig) -> Self {
        let engine = Arc::new(Spade::new(config.engine.clone()));
        Self::with_engine(engine, config)
    }

    /// Build a service over an existing (shareable) engine. The admission
    /// controller gates on the engine's device capacity.
    pub fn with_engine(engine: Arc<Spade>, config: ServiceConfig) -> Self {
        let (wal, pending) = match &config.wal_dir {
            Some(dir) => {
                let (wal, records) =
                    Wal::open(dir, config.engine.wal_sync).expect("open write-ahead log");
                (Some(Mutex::new(wal)), pending_by_dataset(&records))
            }
            None => (None, BTreeMap::new()),
        };
        let default_ns = Arc::new(Namespace::new(
            0,
            DEFAULT_NAMESPACE.to_string(),
            NamespaceConfig::default(),
        ));
        let mut namespaces = HashMap::new();
        namespaces.insert(DEFAULT_NAMESPACE.to_string(), Arc::clone(&default_ns));
        let shared = Arc::new(Shared {
            admission: AdmissionController::new(engine.device.capacity()),
            spade: engine,
            datasets: RwLock::new(HashMap::new()),
            indexed: RwLock::new(HashMap::new()),
            namespaces: RwLock::new(namespaces),
            default_ns,
            next_namespace: AtomicU64::new(1),
            queue: Mutex::new(Queue::default()),
            work_ready: Condvar::new(),
            stats: ServiceStats::default(),
            metrics: MetricsRegistry::default(),
            fairness_cap: config.fairness_cap.max(1),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            wal,
            pending: Mutex::new(pending),
            compact_queue: Mutex::new(VecDeque::new()),
            compact_ready: Condvar::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spade-svc-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        let compactor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("spade-compact".into())
                .spawn(move || compactor_loop(&shared))
                .expect("spawn compactor")
        };
        QueryService {
            shared,
            workers: Mutex::new(workers),
            compactor: Mutex::new(Some(compactor)),
        }
    }

    /// The shared engine (for inspection: device ledger, config).
    pub fn engine(&self) -> &Arc<Spade> {
        &self.shared.spade
    }

    /// The *default namespace's* embedded relational store, for direct
    /// setup/loading. SQL requests submitted through default-namespace
    /// sessions execute against this database; every other tenant has its
    /// own isolated store ([`QueryService::with_database`]).
    pub fn database(&self) -> MutexGuard<'_, Database> {
        self.shared.default_ns.db.lock().unwrap()
    }

    /// Run `f` against one tenant's relational store, for direct
    /// setup/loading outside the request path. SQL requests submitted
    /// through a session in `namespace` execute against this same store
    /// and no other tenant's.
    pub fn with_database<R>(
        &self,
        namespace: &str,
        f: impl FnOnce(&Database) -> R,
    ) -> Result<R, ServiceError> {
        let ns = self.namespace(namespace)?;
        let db = ns.db.lock().unwrap();
        Ok(f(&db))
    }

    /// Create a tenant namespace. Names are validated (non-empty, at most
    /// [`crate::namespace::MAX_NAME_LEN`] bytes, no control characters, no
    /// `:`); a clashing name fails with [`ServiceError::InvalidName`].
    pub fn create_namespace(
        &self,
        name: impl Into<String>,
        config: NamespaceConfig,
    ) -> Result<(), ServiceError> {
        let name = name.into();
        validate_name("namespace", &name)?;
        let mut namespaces = self.shared.namespaces.write().unwrap();
        if namespaces.contains_key(&name) {
            return Err(ServiceError::InvalidName(format!(
                "namespace '{name}' already exists"
            )));
        }
        let id = self.shared.next_namespace.fetch_add(1, Ordering::Relaxed);
        namespaces.insert(name.clone(), Arc::new(Namespace::new(id, name, config)));
        Ok(())
    }

    /// Resolve a namespace by name.
    fn namespace(&self, name: &str) -> Result<Arc<Namespace>, ServiceError> {
        self.shared
            .namespaces
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownNamespace(name.to_string()))
    }

    /// Register an in-memory dataset under `name` in the default
    /// namespace.
    pub fn register(&self, name: impl Into<String>, data: Dataset) {
        self.register_in(DEFAULT_NAMESPACE, name, data)
            .expect("default namespace always exists");
    }

    /// Register an in-memory dataset under `name` in `namespace`. Dataset
    /// names are validated like namespace names, so they interpolate
    /// safely into WAL keys and metric labels.
    pub fn register_in(
        &self,
        namespace: &str,
        name: impl Into<String>,
        data: Dataset,
    ) -> Result<(), ServiceError> {
        let name = name.into();
        validate_name("dataset", &name)?;
        let ns = self.namespace(namespace)?;
        self.shared
            .datasets
            .write()
            .unwrap()
            .insert((ns.id(), name), Arc::new(data));
        Ok(())
    }

    /// Register a grid-indexed (out-of-core) dataset under `name`. Name
    /// resolution prefers the indexed form when both are registered.
    ///
    /// Crash recovery happens here: WAL records replayed at service open
    /// that name this dataset and postdate its persisted checkpoint are
    /// applied to the delta store before the dataset becomes queryable, so
    /// acknowledged writes survive a crash between WAL append and
    /// compaction.
    pub fn register_indexed(&self, name: impl Into<String>, data: IndexedDataset) {
        self.register_indexed_in(DEFAULT_NAMESPACE, name, data)
            .expect("default namespace always exists");
    }

    /// Register a grid-indexed dataset in `namespace`. WAL records of
    /// non-default tenants are keyed `namespace:dataset`, so replayed
    /// pending writes route back to exactly this tenant's dataset.
    pub fn register_indexed_in(
        &self,
        namespace: &str,
        name: impl Into<String>,
        data: IndexedDataset,
    ) -> Result<(), ServiceError> {
        let name = name.into();
        validate_name("dataset", &name)?;
        let ns = self.namespace(namespace)?;
        let wal_key = ns.wal_key(&name);
        if let Some(pending) = self.shared.pending.lock().unwrap().remove(&wal_key) {
            let floor = data.checkpoint_seq();
            for rec in &pending.ops {
                if rec.seq <= floor {
                    continue; // already folded into the persisted index
                }
                match &rec.op {
                    WalOp::Insert { id, geom } => data.insert_at(rec.seq, *id, geom.clone()),
                    WalOp::Delete { id } => data.delete_at(rec.seq, *id),
                    WalOp::Checkpoint { .. } => {}
                }
            }
        }
        self.shared
            .indexed
            .write()
            .unwrap()
            .insert((ns.id(), name), Arc::new(data));
        Ok(())
    }

    /// Open a new session in the default namespace. Sessions are cheap
    /// id-carrying handles; the fairness cap applies per session id.
    pub fn session(&self) -> Session {
        self.session_in(DEFAULT_NAMESPACE, None)
            .expect("default namespace always exists and has no token")
    }

    /// Open a session in a tenant namespace, presenting its auth token
    /// (`None` for namespaces without one). The wire handshake calls this;
    /// embedded multi-tenant callers can too.
    pub fn session_in(
        &self,
        namespace: &str,
        token: Option<&str>,
    ) -> Result<Session, ServiceError> {
        let ns = self.namespace(namespace)?;
        ns.authorize(token)?;
        Ok(Session {
            shared: Arc::clone(&self.shared),
            ns,
            id: self.shared.next_session.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Gracefully shut the service down: refuse new submissions, let every
    /// queued and running query finish, park the compactor, and flush the
    /// WAL tail so acknowledged writes stay durable. Idempotent; the
    /// network server's stop path calls this, and `Drop` falls back to a
    /// hard variant (queued queries answered [`ServiceError::Shutdown`])
    /// when it never ran.
    pub fn shutdown(&self) {
        // The flag is set while holding the queue mutex, and enqueue
        // re-checks it under that same mutex right before pushing: every
        // submission therefore either lands before this store (and is
        // seen by the drain loop below) or observes the flag and is
        // refused — a push can never slip in after the drain completes.
        {
            let _q = self.shared.queue.lock().unwrap();
            self.shared.draining.store(true, Ordering::Release);
        }
        // Drain: both queued and running counts must reach zero. Workers
        // keep admitting while only `draining` is set.
        loop {
            {
                let q = self.shared.queue.lock().unwrap();
                if q.pending.is_empty() && q.running == 0 {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.stop_threads();
    }

    /// Signal worker/compactor exit and join them, then flush the WAL.
    fn stop_threads(&self) {
        // Set the flag and sweep the queue under the queue mutex (the
        // same discipline as `shutdown`): a submit racing this call either
        // pushed before the store — and is answered by this sweep or by a
        // worker's final drain — or observes the flag under the lock and
        // is refused. Without the sweep, a push landing after the workers
        // exited would leave its ticket waiting forever.
        {
            let mut q = self.shared.queue.lock().unwrap();
            self.shared.shutdown.store(true, Ordering::Release);
            for p in q.pending.drain(..) {
                p.reply.send(Err(ServiceError::Shutdown));
            }
        }
        self.shared.work_ready.notify_all();
        self.shared.compact_ready.notify_all();
        for w in self.workers.lock().unwrap().drain(..) {
            let _ = w.join();
        }
        if let Some(c) = self.compactor.lock().unwrap().take() {
            let _ = c.join();
        }
        // Acknowledged writes stay durable across a clean shutdown even in
        // GroupCommit mode: flush whatever tail the commit window holds.
        if let Some(wal) = &self.shared.wal {
            let _ = wal.lock().unwrap().sync();
        }
    }

    /// A point-in-time view of the service counters.
    pub fn stats(&self) -> ServiceSnapshot {
        let (depth, running) = {
            let q = self.shared.queue.lock().unwrap();
            (q.pending.len(), q.running)
        };
        self.shared.stats.snapshot(depth, running)
    }

    /// A Prometheus-text snapshot of every service metric: admission
    /// counters, the queue-vs-execution wall split as histograms, and the
    /// engine totals (bytes moved, passes, cells, prefetch/cache hit
    /// counters, time components) aggregated across completed queries.
    pub fn metrics_text(&self) -> String {
        let snap = self.stats();
        let m = &self.shared.metrics;
        let mut out = String::new();
        render_counter(
            &mut out,
            "spade_queries_submitted_total",
            "Queries ever submitted (including rejected ones).",
            snap.submitted,
        );
        render_counter(
            &mut out,
            "spade_queries_admitted_total",
            "Queries admitted to a worker.",
            snap.admitted,
        );
        render_counter(
            &mut out,
            "spade_queries_rejected_total",
            "Queries rejected outright by admission control.",
            snap.rejected,
        );
        render_counter(
            &mut out,
            "spade_queries_cancelled_total",
            "Queries cancelled or expired, queued or mid-flight.",
            snap.cancelled,
        );
        render_counter(
            &mut out,
            "spade_queries_completed_total",
            "Queries that completed with a result.",
            snap.completed,
        );
        render_counter(
            &mut out,
            "spade_queries_failed_total",
            "Queries that failed with a storage/engine error.",
            snap.failed,
        );
        render_gauge(
            &mut out,
            "spade_queue_depth",
            "Queries waiting for admission right now.",
            snap.queue_depth as u64,
        );
        render_gauge(
            &mut out,
            "spade_queries_running",
            "Queries executing right now.",
            snap.running as u64,
        );
        m.queue_wait.render(
            &mut out,
            "spade_queue_wait_seconds",
            "Time between submission and admission to a worker.",
        );
        m.exec.render(
            &mut out,
            "spade_exec_seconds",
            "Time between admission and completion.",
        );
        render_counter(
            &mut out,
            "spade_bytes_from_disk_total",
            "Bytes read from disk blocks by completed queries.",
            m.bytes_from_disk.get(),
        );
        render_counter(
            &mut out,
            "spade_bytes_to_device_total",
            "Bytes shipped host to device by completed queries.",
            m.bytes_to_device.get(),
        );
        render_counter(
            &mut out,
            "spade_passes_total",
            "Rendering passes executed by completed queries.",
            m.passes.get(),
        );
        render_counter(
            &mut out,
            "spade_cells_loaded_total",
            "Grid cells delivered to refinement by completed queries.",
            m.cells_loaded.get(),
        );
        render_counter(
            &mut out,
            "spade_prefetch_hits_total",
            "Cells already decoded in the prefetch channel when asked.",
            m.prefetch_hits.get(),
        );
        render_counter(
            &mut out,
            "spade_prefetch_misses_total",
            "Cells the refinement stage had to wait for.",
            m.prefetch_misses.get(),
        );
        render_counter(
            &mut out,
            "spade_cache_hits_total",
            "Cells served from the decoded-cell cache instead of disk.",
            m.cache_hits.get(),
        );
        render_counter(
            &mut out,
            "spade_io_nanoseconds_total",
            "Producer-side I/O time of completed queries, in nanoseconds.",
            m.io_nanos.get(),
        );
        render_counter(
            &mut out,
            "spade_io_hidden_nanoseconds_total",
            "I/O time that overlapped GPU refinement, in nanoseconds.",
            m.io_hidden_nanos.get(),
        );
        render_counter(
            &mut out,
            "spade_gpu_nanoseconds_total",
            "Pipeline-pass time of completed queries, in nanoseconds.",
            m.gpu_nanos.get(),
        );
        // Persistent render executor and framebuffer arena, shared by every
        // session of this service (sized once at construction, not per
        // query — see DESIGN.md on executor/admission interaction).
        let pool = self.shared.spade.pipeline.pool().stats();
        render_gauge(
            &mut out,
            "spade_pool_workers",
            "Parallel lanes of the shared render executor.",
            pool.workers as u64,
        );
        render_gauge(
            &mut out,
            "spade_pool_busy",
            "Executor lanes running pipeline tasks right now.",
            pool.busy as u64,
        );
        render_counter(
            &mut out,
            "spade_pool_jobs_total",
            "Jobs (parallel pipeline stages) dispatched to the executor.",
            pool.jobs,
        );
        render_counter(
            &mut out,
            "spade_pool_tasks_total",
            "Executor tasks run across all jobs.",
            pool.tasks,
        );
        let arena = self.shared.spade.pipeline.arena().stats();
        render_counter(
            &mut out,
            "spade_arena_hits_total",
            "Framebuffer checkouts served from the arena free lists.",
            arena.hits,
        );
        render_counter(
            &mut out,
            "spade_arena_misses_total",
            "Framebuffer checkouts that had to allocate a new texture.",
            arena.misses,
        );
        render_gauge(
            &mut out,
            "spade_arena_pooled_bytes",
            "Bytes held in the arena free lists right now.",
            arena.pooled_bytes,
        );
        render_gauge(
            &mut out,
            "spade_arena_live_bytes",
            "Bytes of arena textures currently checked out.",
            arena.live_bytes,
        );
        render_gauge(
            &mut out,
            "spade_arena_external_bytes",
            "Bytes charged by external arena residents (result cache).",
            arena.external_bytes,
        );
        // Hot-query serving layer: the generation-keyed result cache.
        let rc = self.shared.spade.result_cache.stats();
        render_counter(
            &mut out,
            "spade_result_cache_hits_total",
            "Queries served from the result cache.",
            rc.hits,
        );
        render_counter(
            &mut out,
            "spade_result_cache_coalesced_total",
            "Queries coalesced onto a concurrent identical render.",
            rc.coalesced,
        );
        render_counter(
            &mut out,
            "spade_result_cache_misses_total",
            "Cache probes that had to render cold.",
            rc.misses,
        );
        render_counter(
            &mut out,
            "spade_result_cache_bypass_total",
            "Queries that skipped the result cache (disabled).",
            rc.bypasses,
        );
        render_counter(
            &mut out,
            "spade_result_cache_inserted_total",
            "Results admitted to the cache.",
            rc.inserted,
        );
        render_counter(
            &mut out,
            "spade_result_cache_evicted_total",
            "Entries evicted or purged from the cache.",
            rc.evicted,
        );
        render_counter(
            &mut out,
            "spade_result_cache_not_stored_total",
            "Computed results not admitted (version moved or oversized).",
            rc.not_stored,
        );
        render_gauge(
            &mut out,
            "spade_result_cache_entries",
            "Entries resident in the result cache right now.",
            rc.entries,
        );
        render_gauge(
            &mut out,
            "spade_result_cache_bytes",
            "Bytes resident in the result cache right now.",
            rc.bytes,
        );
        // Live-ingestion surface: WAL write rates, staged delta debt, and
        // compaction work, per the write path in DESIGN.md.
        if let Some(wal) = &self.shared.wal {
            let w = wal.lock().unwrap().stats();
            render_counter(
                &mut out,
                "spade_wal_appends_total",
                "Records appended to the write-ahead log.",
                w.appends,
            );
            render_counter(
                &mut out,
                "spade_wal_fsyncs_total",
                "WAL fsync calls (group commit amortizes these).",
                w.fsyncs,
            );
            render_counter(
                &mut out,
                "spade_wal_bytes_total",
                "Bytes appended to the write-ahead log, framing included.",
                w.bytes_written,
            );
            render_counter(
                &mut out,
                "spade_wal_segments_total",
                "WAL segment rotations.",
                w.segments_rotated,
            );
            render_counter(
                &mut out,
                "spade_wal_segments_deleted_total",
                "Sealed WAL segments reclaimed after checkpoints.",
                w.segments_deleted,
            );
        }
        let (mut staged, mut tombstones, mut delta_bytes) = (0u64, 0u64, 0u64);
        // Tenant names by id, for labeled per-dataset/per-tenant samples.
        let tenant_names: BTreeMap<u64, String> = self
            .shared
            .namespaces
            .read()
            .unwrap()
            .values()
            .map(|ns| (ns.id(), ns.name().to_string()))
            .collect();
        let mut per_dataset: Vec<(String, String, u64)> = Vec::new();
        for ((ns_id, name), d) in self.shared.indexed.read().unwrap().iter() {
            let s = d.delta_stats();
            staged += s.staged as u64;
            tombstones += s.tombstones as u64;
            delta_bytes += s.bytes;
            let tenant = tenant_names
                .get(ns_id)
                .cloned()
                .unwrap_or_else(|| ns_id.to_string());
            per_dataset.push((tenant, name.clone(), s.bytes));
        }
        render_gauge(
            &mut out,
            "spade_delta_staged_objects",
            "Objects staged in delta stores, awaiting compaction.",
            staged,
        );
        render_gauge(
            &mut out,
            "spade_delta_tombstones",
            "Delete tombstones staged in delta stores.",
            tombstones,
        );
        render_gauge(
            &mut out,
            "spade_delta_bytes",
            "Approximate staged delta bytes (compaction debt) right now.",
            delta_bytes,
        );
        // Per-dataset compaction debt, labeled by tenant and dataset. Both
        // label values were validated at creation and are escaped again at
        // render time (`sanitize_label`).
        per_dataset.sort();
        for (i, (tenant, dataset, bytes)) in per_dataset.iter().enumerate() {
            render_labeled_gauge(
                &mut out,
                "spade_dataset_delta_bytes",
                "Staged delta bytes of one dataset.",
                &[("tenant", tenant), ("dataset", dataset)],
                *bytes,
                i == 0,
            );
        }
        // Per-tenant admission and outcome counters. Tenants are rendered
        // in id order so the default namespace leads and output is stable.
        let mut tenants: Vec<Arc<Namespace>> = self
            .shared
            .namespaces
            .read()
            .unwrap()
            .values()
            .cloned()
            .collect();
        tenants.sort_by_key(|a| a.id());
        let tenant_counter =
            |out: &mut String, name: &str, help: &str, first: bool, ns: &Namespace, v: u64| {
                render_labeled_counter(out, name, help, &[("tenant", ns.name())], v, first);
            };
        for (i, ns) in tenants.iter().enumerate() {
            let first = i == 0;
            let s = &ns.stats;
            tenant_counter(
                &mut out,
                "spade_tenant_queries_submitted_total",
                "Queries submitted by this tenant.",
                first,
                ns,
                s.submitted.load(Ordering::Relaxed),
            );
        }
        for (i, ns) in tenants.iter().enumerate() {
            tenant_counter(
                &mut out,
                "spade_tenant_queries_completed_total",
                "Queries of this tenant that completed with a result.",
                i == 0,
                ns,
                ns.stats.completed.load(Ordering::Relaxed),
            );
        }
        for (i, ns) in tenants.iter().enumerate() {
            tenant_counter(
                &mut out,
                "spade_tenant_queries_rejected_total",
                "Queries of this tenant rejected by admission control.",
                i == 0,
                ns,
                ns.stats.rejected.load(Ordering::Relaxed),
            );
        }
        for (i, ns) in tenants.iter().enumerate() {
            tenant_counter(
                &mut out,
                "spade_tenant_queries_cancelled_total",
                "Queries of this tenant cancelled or expired.",
                i == 0,
                ns,
                ns.stats.cancelled.load(Ordering::Relaxed),
            );
        }
        for (i, ns) in tenants.iter().enumerate() {
            tenant_counter(
                &mut out,
                "spade_tenant_queries_failed_total",
                "Queries of this tenant that failed with an error.",
                i == 0,
                ns,
                ns.stats.failed.load(Ordering::Relaxed),
            );
        }
        for (i, ns) in tenants.iter().enumerate() {
            tenant_counter(
                &mut out,
                "spade_tenant_quota_deferrals_total",
                "Admission scans that bypassed this tenant at its quota.",
                i == 0,
                ns,
                ns.stats.quota_deferrals.load(Ordering::Relaxed),
            );
        }
        for (i, ns) in tenants.iter().enumerate() {
            render_labeled_gauge(
                &mut out,
                "spade_tenant_reserved_bytes",
                "Estimated device bytes reserved by this tenant's running queries.",
                &[("tenant", ns.name())],
                ns.reserved(),
                i == 0,
            );
        }
        // Per-tenant optimizer decision and misprediction counters,
        // aggregated from the engine's observed statistics: a tenant owns
        // the counters keyed by its datasets' uids plus every pairwise
        // join key over them (joins attribute their statistics to the
        // dataset pair). Namespaces isolate the aggregation — one tenant's
        // decisions never appear under another's labels.
        let tenant_stat_keys = |ns: &Namespace| -> Vec<u64> {
            let mut uids: Vec<u64> = Vec::new();
            for ((tid, _), d) in self.shared.datasets.read().unwrap().iter() {
                if *tid == ns.id() {
                    uids.push(d.uid());
                }
            }
            for ((tid, _), d) in self.shared.indexed.read().unwrap().iter() {
                if *tid == ns.id() {
                    uids.push(d.uid());
                }
            }
            let mut keys = uids.clone();
            for &a in &uids {
                for &b in &uids {
                    keys.push(spade_core::optimizer::stats::join_key(a, b));
                }
            }
            keys
        };
        use spade_core::optimizer::stats::Decision;
        for (i, ns) in tenants.iter().enumerate() {
            let (dec, _) = self
                .shared
                .spade
                .observed
                .counters_for(&tenant_stat_keys(ns));
            for (j, d) in Decision::ALL.iter().enumerate() {
                render_labeled_counter(
                    &mut out,
                    "spade_optimizer_decisions_total",
                    "Optimizer decisions (Map implementation, join strategy) on this tenant's datasets.",
                    &[("tenant", ns.name()), ("decision", d.label())],
                    dec[j],
                    i == 0 && j == 0,
                );
            }
        }
        for (i, ns) in tenants.iter().enumerate() {
            let (_, mis) = self
                .shared
                .spade
                .observed
                .counters_for(&tenant_stat_keys(ns));
            for (j, d) in Decision::ALL.iter().enumerate() {
                render_labeled_counter(
                    &mut out,
                    "spade_optimizer_mispredictions_total",
                    "Optimizer decisions hindsight proved wrong (1-pass overflows, 2-pass overshoots, join strategy flips).",
                    &[("tenant", ns.name()), ("decision", d.label())],
                    mis[j],
                    i == 0 && j == 0,
                );
            }
        }
        render_counter(
            &mut out,
            "spade_compact_runs_total",
            "Compaction runs completed (background or synchronous).",
            m.compact_runs.get(),
        );
        render_counter(
            &mut out,
            "spade_compact_bytes_read_total",
            "Encoded cell bytes compaction read back to rewrite.",
            m.compact_bytes_read.get(),
        );
        render_counter(
            &mut out,
            "spade_compact_bytes_written_total",
            "Encoded cell bytes compaction wrote for new generations.",
            m.compact_bytes_written.get(),
        );
        render_counter(
            &mut out,
            "spade_compact_cells_split_total",
            "Cells split by compaction to respect the cell byte budget.",
            m.compact_cells_split.get(),
        );
        out
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        // Hard shutdown when `shutdown()` never ran: queued queries are
        // answered `Shutdown` by the draining workers instead of
        // executing.
        self.stop_threads();
    }
}

/// A client handle submitting queries under one session id, inside one
/// tenant namespace.
pub struct Session {
    shared: Arc<Shared>,
    ns: Arc<Namespace>,
    id: u64,
}

impl Session {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The namespace this session operates in.
    pub fn namespace(&self) -> &str {
        self.ns.name()
    }

    /// Submit a query with no deadline.
    pub fn submit(&self, request: QueryRequest) -> Ticket {
        self.submit_with_token(request, CancelToken::new())
    }

    /// Submit a query that cancels automatically `deadline` from now —
    /// while queued or at the next cell boundary once running.
    pub fn submit_with_deadline(&self, request: QueryRequest, deadline: Duration) -> Ticket {
        self.submit_with_token(request, CancelToken::deadline_in(deadline))
    }

    /// Submit with a caller-controlled token (cancel it any time; clones
    /// observe the same flag).
    pub fn submit_with_token(&self, request: QueryRequest, cancel: CancelToken) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket {
            cancel: cancel.clone(),
            rx,
        };
        self.enqueue(request, cancel, ReplySink::Ticket(tx));
        ticket
    }

    /// Submit with the reply routed into a shared `(request id, reply)`
    /// channel instead of a per-query ticket. This is the network server's
    /// entry point: one connection keeps many requests in flight and its
    /// writer thread delivers responses in completion order, keyed by
    /// `id`.
    pub fn submit_routed(
        &self,
        request: QueryRequest,
        cancel: CancelToken,
        id: u64,
        tx: mpsc::Sender<(u64, Reply)>,
    ) {
        self.enqueue(request, cancel, ReplySink::Routed { tx, id });
    }

    fn enqueue(&self, request: QueryRequest, cancel: CancelToken, reply: ReplySink) {
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.ns.stats.submitted.fetch_add(1, Ordering::Relaxed);

        if self.shared.shutdown.load(Ordering::Acquire)
            || self.shared.draining.load(Ordering::Acquire)
        {
            reply.send(Err(ServiceError::Shutdown));
            return;
        }
        // Resolve names and estimate the device footprint up front:
        // unknown datasets and can-never-fit queries fail fast instead of
        // occupying the queue.
        let footprint = match estimate_footprint(&self.shared, &self.ns, &request) {
            Ok(f) => f,
            Err(e) => {
                reply.send(Err(e));
                return;
            }
        };
        if !self.shared.admission.admissible(footprint) || !self.ns.admissible(footprint) {
            self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            self.ns.stats.rejected.fetch_add(1, Ordering::Relaxed);
            // The binding constraint is whichever is smaller: the tenant's
            // quota or the whole device.
            let capacity = self
                .ns
                .quota()
                .unwrap_or(u64::MAX)
                .min(self.shared.admission.capacity());
            reply.send(Err(ServiceError::Rejected {
                estimated: footprint,
                capacity,
            }));
            return;
        }

        let mut q = self.shared.queue.lock().unwrap();
        // Re-check the shutdown flags under the queue mutex: they are set
        // under this same mutex, so either this push happens-before the
        // flag flips (and the drain/sweep paths answer it) or the flip is
        // visible here and the query is refused. The lock-free check above
        // is only a fast path; this one is the correctness gate — without
        // it a submit racing `shutdown` could land in the queue after the
        // workers drained and exited, blocking its ticket forever.
        if self.shared.shutdown.load(Ordering::Acquire)
            || self.shared.draining.load(Ordering::Acquire)
        {
            drop(q);
            reply.send(Err(ServiceError::Shutdown));
            return;
        }
        q.pending.push_back(Pending {
            session: self.id,
            ns: Arc::clone(&self.ns),
            request,
            cancel,
            footprint,
            enqueued: Instant::now(),
            reply,
        });
        drop(q);
        self.shared.work_ready.notify_one();
    }
}

/// The handle to one submitted query.
pub struct Ticket {
    cancel: CancelToken,
    rx: mpsc::Receiver<Reply>,
}

impl Ticket {
    /// This query's cancellation token.
    pub fn token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Request cancellation: a queued query is purged; a running one stops
    /// at its next cell boundary with the device ledger balanced.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Block until the query resolves.
    pub fn wait(self) -> Reply {
        self.rx.recv().unwrap_or(Err(ServiceError::Shutdown))
    }

    /// Non-blocking poll; `None` while the query is still queued/running.
    pub fn try_wait(&self) -> Option<Reply> {
        self.rx.try_recv().ok()
    }
}

/// Estimated device-memory footprint of a request, in bytes. Canvas terms
/// are `resolution² × 16` (four 32-bit channels per pixel); out-of-core
/// requests add the largest grid cell per streamed side, since the
/// executors hold at most one cell per side resident. SQL runs on the
/// host, so its device footprint is zero.
fn estimate_footprint(
    shared: &Shared,
    ns: &Namespace,
    request: &QueryRequest,
) -> Result<u64, ServiceError> {
    let cfg = &shared.spade.config;
    let canvas = |res: u32| (res as u64) * (res as u64) * 16;
    let max_cell = |d: &IndexedDataset| {
        let grid = d.grid();
        grid.cells().iter().map(|c| c.bytes).max().unwrap_or(0)
    };
    let key = |name: &String| (ns.id(), name.clone());
    match request {
        QueryRequest::Select { dataset, query } => {
            if let Some(idx) = shared.indexed.read().unwrap().get(&key(dataset)) {
                let constraint = match query {
                    SelectQuery::WithinDistance(..) | SelectQuery::Knn(..) => {
                        canvas(cfg.distance_resolution)
                    }
                    _ => canvas(cfg.resolution),
                };
                Ok(constraint + canvas(cfg.filter_resolution) + max_cell(idx))
            } else if shared.datasets.read().unwrap().contains_key(&key(dataset)) {
                // In-memory plans render but never allocate device memory;
                // the constraint canvas is still a fair working-set proxy.
                Ok(canvas(cfg.resolution))
            } else {
                Err(ServiceError::UnknownDataset(dataset.clone()))
            }
        }
        QueryRequest::Join { left, right, query } => {
            let idx = shared.indexed.read().unwrap();
            let mem = shared.datasets.read().unwrap();
            let side = |name: &String| -> Result<u64, ServiceError> {
                if let Some(d) = idx.get(&key(name)) {
                    Ok(max_cell(d))
                } else if mem.contains_key(&key(name)) {
                    Ok(0)
                } else {
                    Err(ServiceError::UnknownDataset(name.clone()))
                }
            };
            let base = side(left)? + side(right)?;
            let constraint = match query {
                spade_core::query::JoinQuery::WithinDistance(_)
                | spade_core::query::JoinQuery::Knn(_) => canvas(cfg.distance_resolution),
                _ => canvas(cfg.filter_resolution),
            };
            Ok(base + constraint)
        }
        QueryRequest::Sql(_) => Ok(0),
        // Spatial requests execute to discover their plan, so an EXPLAIN
        // needs the same reservation as the request it wraps.
        QueryRequest::Explain { request, .. } => estimate_footprint(shared, ns, request),
        // Writes stage on the host (WAL + delta store); they reserve no
        // device memory but still resolve the dataset so unknown names
        // fail fast. Flush-triggered compaction also runs host-side.
        QueryRequest::Insert { dataset, .. }
        | QueryRequest::Delete { dataset, .. }
        | QueryRequest::Flush { dataset } => {
            if shared.indexed.read().unwrap().contains_key(&key(dataset)) {
                Ok(0)
            } else {
                Err(ServiceError::UnknownDataset(dataset.clone()))
            }
        }
        // A shard slice streams at most one cell per side resident, same
        // as the full request; reserve identically.
        QueryRequest::ShardSelect { dataset, query, .. } => {
            if let Some(idx) = shared.indexed.read().unwrap().get(&key(dataset)) {
                let constraint = match query {
                    SelectQuery::WithinDistance(..) | SelectQuery::Knn(..) => {
                        canvas(cfg.distance_resolution)
                    }
                    _ => canvas(cfg.resolution),
                };
                Ok(constraint + canvas(cfg.filter_resolution) + max_cell(idx))
            } else {
                Err(ServiceError::UnknownDataset(dataset.clone()))
            }
        }
        QueryRequest::ShardJoin {
            left, right, query, ..
        } => {
            let idx = shared.indexed.read().unwrap();
            let side = |name: &String| -> Result<u64, ServiceError> {
                idx.get(&key(name))
                    .map(|d| max_cell(d))
                    .ok_or_else(|| ServiceError::UnknownDataset(name.clone()))
            };
            let base = side(left)? + side(right)?;
            let constraint = match query {
                spade_core::query::JoinQuery::WithinDistance(_)
                | spade_core::query::JoinQuery::Knn(_) => canvas(cfg.distance_resolution),
                _ => canvas(cfg.filter_resolution),
            };
            Ok(base + constraint)
        }
        // Statistics and WAL streaming run on the host.
        QueryRequest::CellStats { dataset } => {
            if shared.indexed.read().unwrap().contains_key(&key(dataset)) {
                Ok(0)
            } else {
                Err(ServiceError::UnknownDataset(dataset.clone()))
            }
        }
        QueryRequest::WalFetch { .. } => Ok(0),
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    // Drain: every queued query learns the service is gone.
                    // (Graceful shutdown never reaches here with a
                    // non-empty queue — it sets the flag only once both
                    // queued and running counts hit zero.)
                    for p in q.pending.drain(..) {
                        p.reply.send(Err(ServiceError::Shutdown));
                    }
                    return;
                }
                match admit_next(shared, &mut q) {
                    Some(p) => break p,
                    None => {
                        // Timed wait so queued deadlines are re-checked
                        // even when no submit/complete event fires.
                        let (guard, _) = shared
                            .work_ready
                            .wait_timeout(q, Duration::from_millis(5))
                            .unwrap();
                        q = guard;
                    }
                }
            }
        };

        let queue_wait = job.enqueued.elapsed();
        shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .queue_wait_nanos
            .fetch_add(queue_wait.as_nanos() as u64, Ordering::Relaxed);

        let t0 = Instant::now();
        let outcome = execute(shared, &job.ns, &job.request, &job.cancel);
        let exec_time = t0.elapsed();

        shared.admission.release(job.footprint);
        job.ns.release(job.footprint);
        {
            let mut q = shared.queue.lock().unwrap();
            q.running -= 1;
            if let Some(n) = q.running_per_session.get_mut(&job.session) {
                *n -= 1;
                if *n == 0 {
                    q.running_per_session.remove(&job.session);
                }
            }
        }
        // A released reservation (and session slot) may unblock queued
        // queries: wake the pool.
        shared.work_ready.notify_all();

        shared
            .stats
            .exec_nanos
            .fetch_add(exec_time.as_nanos() as u64, Ordering::Relaxed);
        shared.stats.record_latency(queue_wait + exec_time);
        shared.metrics.queue_wait.observe(queue_wait);
        shared.metrics.exec.observe(exec_time);
        let reply = match outcome {
            Ok((payload, stats)) => {
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                job.ns.stats.completed.fetch_add(1, Ordering::Relaxed);
                shared.metrics.record_query(&stats);
                Ok(QueryResponse {
                    payload,
                    stats,
                    queue_wait,
                    exec_time,
                })
            }
            Err(e) => {
                let e = refine_cancel(e, &job.cancel);
                match e {
                    ServiceError::Cancelled | ServiceError::DeadlineExceeded => {
                        shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                        job.ns.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                        job.ns.stats.failed.fetch_add(1, Ordering::Relaxed);
                    }
                };
                Err(e)
            }
        };
        job.reply.send(reply);
    }
}

/// Pick the next admissible queued query. See the module docs for the
/// scan's fairness and FIFO rules. Expired/cancelled entries are purged
/// (replied to) in place.
///
/// Tenant quotas behave like the session fairness cap, not like device
/// memory: a query whose tenant is at its quota is *skipped* (the scan
/// continues), so one tenant saturating its carve-out can never starve
/// another tenant's queries — only device-memory exhaustion stops the
/// scan, keeping memory admission strictly FIFO.
fn admit_next(shared: &Shared, q: &mut Queue) -> Option<Pending> {
    let mut i = 0;
    while i < q.pending.len() {
        if q.pending[i].cancel.is_cancelled() {
            let p = q.pending.remove(i).expect("index in bounds");
            let err = refine_cancel(ServiceError::Cancelled, &p.cancel);
            shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            p.ns.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            p.reply.send(Err(err));
            continue;
        }
        let session = q.pending[i].session;
        let session_running = q.running_per_session.get(&session).copied().unwrap_or(0);
        if session_running >= shared.fairness_cap {
            i += 1; // fairness: bypass a session already at its cap
            continue;
        }
        if !q.pending[i].ns.try_reserve(q.pending[i].footprint) {
            // Tenant at its admission quota: bypass, other tenants (and
            // this tenant's already-running queries) proceed.
            q.pending[i]
                .ns
                .stats
                .quota_deferrals
                .fetch_add(1, Ordering::Relaxed);
            i += 1;
            continue;
        }
        if !shared.admission.try_reserve(q.pending[i].footprint) {
            // Memory admission is strictly FIFO: stop, don't starve the
            // head with later small queries.
            q.pending[i].ns.release(q.pending[i].footprint);
            return None;
        }
        let p = q.pending.remove(i).expect("index in bounds");
        *q.running_per_session.entry(p.session).or_insert(0) += 1;
        q.running += 1;
        return Some(p);
    }
    None
}

/// Distinguish an expired deadline from an explicit cancel in the reply.
fn refine_cancel(e: ServiceError, cancel: &CancelToken) -> ServiceError {
    match e {
        ServiceError::Cancelled => match cancel.deadline() {
            Some(d) if Instant::now() >= d => ServiceError::DeadlineExceeded,
            _ => ServiceError::Cancelled,
        },
        other => other,
    }
}

fn execute(
    shared: &Shared,
    ns: &Arc<Namespace>,
    request: &QueryRequest,
    cancel: &CancelToken,
) -> Result<(ResponsePayload, QueryStats), ServiceError> {
    cancel.check().map_err(ServiceError::from)?;
    let key = |name: &String| (ns.id(), name.clone());
    match request {
        QueryRequest::Select { dataset, query } => {
            // All read paths go through the cached dispatchers: repeated
            // hot-tile queries are served straight from the result cache
            // while the dataset version is unchanged, and identical
            // concurrent misses coalesce into one render. The namespace id
            // joins the cache key, so tenants never share cached bytes.
            let indexed = shared.indexed.read().unwrap().get(&key(dataset)).cloned();
            if let Some(idx) = indexed {
                let out = query::run_select_indexed_cached_in(
                    &shared.spade,
                    ns.id(),
                    &idx,
                    query,
                    cancel,
                )?;
                return Ok((ResponsePayload::Query(out.result), out.stats));
            }
            let mem = shared.datasets.read().unwrap().get(&key(dataset)).cloned();
            match mem {
                Some(d) => {
                    let out = query::run_select_cached_in(&shared.spade, ns.id(), &d, query);
                    Ok((ResponsePayload::Query(out.result), out.stats))
                }
                None => Err(ServiceError::UnknownDataset(dataset.clone())),
            }
        }
        QueryRequest::Join { left, right, query } => {
            let idx = shared.indexed.read().unwrap();
            let (l_idx, r_idx) = (idx.get(&key(left)).cloned(), idx.get(&key(right)).cloned());
            drop(idx);
            if let (Some(l), Some(r)) = (l_idx, r_idx) {
                let out = query::run_join_indexed_cached_in(
                    &shared.spade,
                    ns.id(),
                    &l,
                    &r,
                    query,
                    cancel,
                )?;
                return Ok((ResponsePayload::Query(out.result), out.stats));
            }
            let mem = shared.datasets.read().unwrap();
            let resolve = |name: &String| -> Result<Arc<Dataset>, ServiceError> {
                mem.get(&key(name))
                    .cloned()
                    .ok_or_else(|| ServiceError::UnknownDataset(name.clone()))
            };
            let (l, r) = (resolve(left)?, resolve(right)?);
            drop(mem);
            let out = query::run_join_cached_in(&shared.spade, ns.id(), &l, &r, query);
            Ok((ResponsePayload::Query(out.result), out.stats))
        }
        QueryRequest::Sql(stmt) => {
            // SQL is tenant-scoped like every other request: the statement
            // executes against the submitting session's namespace store,
            // so a tenant (local or over the wire) can never read or
            // modify another tenant's tables.
            let db = ns.db.lock().unwrap();
            let mut observer = SpatialInsertObserver { shared, ns };
            let result = spade_storage::sql::execute_observed(&db, stmt, Some(&mut observer))?;
            Ok((ResponsePayload::Sql(result), QueryStats::default()))
        }
        QueryRequest::Explain { analyze, request } => {
            explain(shared, ns, *analyze, request, cancel)
        }
        QueryRequest::Insert { .. } | QueryRequest::Delete { .. } | QueryRequest::Flush { .. } => {
            execute_write(shared, ns, request)
        }
        // Shard partials bypass the result cache on purpose: a scoped
        // result is not the full answer for its (dataset, query) key, and
        // coordinators already cache at the merged level if they want to.
        QueryRequest::ShardSelect {
            dataset,
            query,
            cells,
            include_delta,
        } => {
            let idx = resolve_indexed(shared, ns, dataset)?;
            let scope = spade_core::CellScope {
                lo: cells.0,
                hi: cells.1,
                include_delta: *include_delta,
            };
            let out = query::run_select_indexed_scoped(&shared.spade, &idx, query, scope, cancel)?;
            Ok((ResponsePayload::Query(out.result), out.stats))
        }
        QueryRequest::ShardJoin {
            left,
            right,
            query,
            pairs,
            include_delta,
        } => {
            let l = resolve_indexed(shared, ns, left)?;
            let r = resolve_indexed(shared, ns, right)?;
            let out = query::run_join_indexed_pairs(
                &shared.spade,
                &l,
                &r,
                query,
                pairs.clone(),
                *include_delta,
                cancel,
            )?;
            Ok((ResponsePayload::Query(out.result), out.stats))
        }
        QueryRequest::CellStats { dataset } => {
            let idx = resolve_indexed(shared, ns, dataset)?;
            let cells = idx
                .grid()
                .cells()
                .iter()
                .map(|c| crate::request::CellInfo {
                    bbox: c.bbox(),
                    bytes: c.bytes,
                    objects: c.num_objects as u32,
                })
                .collect();
            let seq = shared
                .wal
                .as_ref()
                .map_or(0, |w| w.lock().unwrap().next_seq().saturating_sub(1));
            Ok((
                ResponsePayload::CellStats {
                    generation: idx.delta_stats().generation,
                    seq,
                    cells,
                },
                QueryStats::default(),
            ))
        }
        QueryRequest::WalFetch { after_seq, limit } => {
            // Replication is an operator-level facility: only the default
            // namespace may read the raw (cross-tenant) WAL stream.
            if ns.id() != 0 {
                return Err(ServiceError::Unauthorized(ns.name().to_string()));
            }
            let Some(wal) = &shared.wal else {
                return Ok((
                    ResponsePayload::WalBatch {
                        leader_seq: 0,
                        records: Vec::new(),
                    },
                    QueryStats::default(),
                ));
            };
            // Holding the WAL mutex while streaming keeps the tail stable
            // under concurrent appends; `limit` bounds the critical section.
            let wal = wal.lock().unwrap();
            let leader_seq = wal.next_seq().saturating_sub(1);
            let records: Vec<_> = wal
                .records_since(*after_seq)
                .take((*limit).max(1) as usize)
                .collect();
            drop(wal);
            Ok((
                ResponsePayload::WalBatch {
                    leader_seq,
                    records,
                },
                QueryStats::default(),
            ))
        }
    }
}

/// Routes SQL `INSERT` statements into registered spatial datasets through
/// the same WAL + delta-store path as typed [`QueryRequest::Insert`]s. A
/// spatial table row is `(id INT, x, y)`; tables not registered as indexed
/// datasets pass through untouched. The callback fires before the rows
/// land in the relational table, so the WAL append is the durability point
/// for both representations.
struct SpatialInsertObserver<'a> {
    shared: &'a Shared,
    ns: &'a Arc<Namespace>,
}

impl spade_storage::sql::SqlObserver for SpatialInsertObserver<'_> {
    fn before_insert(
        &mut self,
        table: &str,
        rows: &[Vec<spade_storage::Value>],
    ) -> spade_storage::Result<()> {
        let idx = self
            .shared
            .indexed
            .read()
            .unwrap()
            .get(&(self.ns.id(), table.to_string()))
            .cloned();
        let Some(idx) = idx else { return Ok(()) };
        // Parse every row before touching the WAL: a malformed row aborts
        // the whole statement with nothing made durable or visible.
        let parsed: Vec<(u32, spade_geometry::Geometry)> = rows
            .iter()
            .map(|row| spatial_row(table, row))
            .collect::<spade_storage::Result<_>>()?;
        match &self.shared.wal {
            Some(wal) => {
                // Batch append + stage under one WAL critical section (see
                // the `Shared::wal` invariant); one fsync for the statement.
                let mut wal = wal.lock().unwrap();
                let ops = parsed
                    .iter()
                    .map(|(id, geom)| WalOp::Insert {
                        id: *id,
                        geom: geom.clone(),
                    })
                    .collect();
                let seqs = wal.append_batch(&self.ns.wal_key(table), ops)?;
                for (seq, (id, geom)) in seqs.into_iter().zip(parsed) {
                    idx.insert_at(seq, id, geom);
                }
            }
            None => {
                for (id, geom) in parsed {
                    idx.insert(id, geom);
                }
            }
        }
        Ok(())
    }
}

/// Interpret one relational row destined for a spatial table: column 0 is
/// the object id, columns 1–2 the point coordinates.
fn spatial_row(
    table: &str,
    row: &[spade_storage::Value],
) -> spade_storage::Result<(u32, spade_geometry::Geometry)> {
    use spade_storage::Value;
    let num = |v: &Value| -> Option<f64> {
        match v {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    };
    match row {
        [Value::Int(id), x, y] if num(x).is_some() && num(y).is_some() && *id >= 0 => Ok((
            *id as u32,
            spade_geometry::Geometry::Point(spade_geometry::Point::new(
                num(x).unwrap(),
                num(y).unwrap(),
            )),
        )),
        _ => Err(spade_storage::StorageError::Parse(format!(
            "table '{table}' is a registered spatial dataset; INSERT rows must be (id INT, x, y)"
        ))),
    }
}

/// Resolve a grid-indexed dataset in a namespace or fail with
/// [`ServiceError::UnknownDataset`].
fn resolve_indexed(
    shared: &Shared,
    ns: &Namespace,
    name: &str,
) -> Result<Arc<IndexedDataset>, ServiceError> {
    shared
        .indexed
        .read()
        .unwrap()
        .get(&(ns.id(), name.to_string()))
        .cloned()
        .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))
}

/// Execute one write request. The write path is: (1) backpressure — if the
/// staged delta already exceeds `delta_max_bytes`, compact synchronously on
/// the writer's worker before admitting more debt; (2) WAL append (the
/// durability point — `wal_sync` decides whether the append fsyncs); (3)
/// stage into the delta store, which makes the write visible to queries;
/// (4) if the delta crossed `compact_trigger_bytes`, signal the background
/// compactor. Without a WAL the service sequences writes itself and skips
/// the durability step.
fn execute_write(
    shared: &Shared,
    ns: &Arc<Namespace>,
    request: &QueryRequest,
) -> Result<(ResponsePayload, QueryStats), ServiceError> {
    match request {
        QueryRequest::Insert {
            dataset,
            id,
            geometry,
        } => {
            let idx = resolve_indexed(shared, ns, dataset)?;
            backpressure(shared, ns, dataset, &idx)?;
            let seq = match &shared.wal {
                Some(wal) => {
                    // Append and stage under one WAL critical section (see
                    // the `Shared::wal` invariant).
                    let mut wal = wal.lock().unwrap();
                    let seq = wal.append(
                        &ns.wal_key(dataset),
                        WalOp::Insert {
                            id: *id,
                            geom: geometry.clone(),
                        },
                    )?;
                    idx.insert_at(seq, *id, geometry.clone());
                    seq
                }
                None => idx.insert(*id, geometry.clone()),
            };
            let stats = idx.delta_stats();
            maybe_signal_compactor(shared, ns, dataset, stats.bytes);
            Ok((
                ResponsePayload::Ack {
                    seq,
                    generation: stats.generation,
                },
                QueryStats::default(),
            ))
        }
        QueryRequest::Delete { dataset, id } => {
            let idx = resolve_indexed(shared, ns, dataset)?;
            backpressure(shared, ns, dataset, &idx)?;
            let seq = match &shared.wal {
                Some(wal) => {
                    let mut wal = wal.lock().unwrap();
                    let seq = wal.append(&ns.wal_key(dataset), WalOp::Delete { id: *id })?;
                    idx.delete_at(seq, *id);
                    seq
                }
                None => idx.delete(*id),
            };
            let stats = idx.delta_stats();
            maybe_signal_compactor(shared, ns, dataset, stats.bytes);
            Ok((
                ResponsePayload::Ack {
                    seq,
                    generation: stats.generation,
                },
                QueryStats::default(),
            ))
        }
        QueryRequest::Flush { dataset } => {
            let idx = resolve_indexed(shared, ns, dataset)?;
            if let Some(wal) = &shared.wal {
                wal.lock().unwrap().sync()?;
            }
            compact_now(shared, ns, dataset, &idx)?;
            let stats = idx.delta_stats();
            Ok((
                ResponsePayload::Ack {
                    seq: idx.checkpoint_seq(),
                    generation: stats.generation,
                },
                QueryStats::default(),
            ))
        }
        other => unreachable!("execute_write on non-write request {:?}", other.class()),
    }
}

/// Writer backpressure: a write against a delta already at or over
/// `delta_max_bytes` pays for compaction synchronously instead of growing
/// the debt without bound.
fn backpressure(
    shared: &Shared,
    ns: &Arc<Namespace>,
    dataset: &str,
    idx: &Arc<IndexedDataset>,
) -> Result<(), ServiceError> {
    if idx.delta_stats().bytes >= shared.spade.config.delta_max_bytes {
        compact_now(shared, ns, dataset, idx)?;
    }
    Ok(())
}

/// Run one compaction of `idx` and account for it: fold the report into
/// the compaction counters and append a `Checkpoint` record so WAL replay
/// after the *next* open skips everything the new generation persisted.
/// The checkpoint is written after [`IndexedDataset::compact`] returns —
/// i.e. after the new generation's manifest is durable — so a crash
/// between the two only costs a harmless re-application of already-folded
/// records (inserts replace, deletes re-tombstone: replay is idempotent).
fn compact_now(
    shared: &Shared,
    ns: &Arc<Namespace>,
    dataset: &str,
    idx: &Arc<IndexedDataset>,
) -> Result<(), ServiceError> {
    let report = idx.compact(shared.spade.config.max_cell_bytes)?;
    if let Some(report) = report {
        shared.metrics.compact_runs.add(1);
        shared.metrics.compact_bytes_read.add(report.bytes_read);
        shared
            .metrics
            .compact_bytes_written
            .add(report.bytes_written);
        shared
            .metrics
            .compact_cells_split
            .add(report.cells_split as u64);
        // Entries keyed at the superseded version are unreachable now that
        // the generation moved; purge them so their bytes leave the device
        // ledger immediately instead of waiting for LRU pressure.
        shared
            .spade
            .result_cache
            .purge_outdated(idx.uid(), idx.version());
        if let Some(wal) = &shared.wal {
            wal.lock().unwrap().append(
                &ns.wal_key(dataset),
                WalOp::Checkpoint {
                    generation: report.generation,
                    through_seq: idx.checkpoint_seq(),
                },
            )?;
        }
    }
    Ok(())
}

/// Queue `dataset` for background compaction once its staged delta crosses
/// the trigger threshold. Deduplicates: a dataset already queued is not
/// queued twice.
fn maybe_signal_compactor(shared: &Shared, ns: &Arc<Namespace>, dataset: &str, delta_bytes: u64) {
    if delta_bytes < shared.spade.config.compact_trigger_bytes.max(1) {
        return;
    }
    let mut q = shared.compact_queue.lock().unwrap();
    if !q.iter().any(|(n, d)| n.id() == ns.id() && d == dataset) {
        q.push_back((Arc::clone(ns), dataset.to_string()));
        shared.compact_ready.notify_one();
    }
}

/// The background compactor: drains the compaction queue, rewriting each
/// dataset's delta into a fresh index generation while queries keep
/// reading the old one. Compaction failures are absorbed (the delta stays
/// staged and correct; the next trigger retries).
fn compactor_loop(shared: &Shared) {
    loop {
        let (ns, name) = {
            let mut q = shared.compact_queue.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = q.pop_front() {
                    break job;
                }
                let (guard, _) = shared
                    .compact_ready
                    .wait_timeout(q, Duration::from_millis(20))
                    .unwrap();
                q = guard;
            }
        };
        let idx = shared
            .indexed
            .read()
            .unwrap()
            .get(&(ns.id(), name.clone()))
            .cloned();
        if let Some(idx) = idx {
            let _ = compact_now(shared, &ns, &name, &idx);
        }
    }
}

/// Execute an `EXPLAIN` / `EXPLAIN ANALYZE` request. SQL forwards to the
/// SQL layer's own `EXPLAIN` (which plans without executing unless
/// `ANALYZE`); spatial requests run inside a [`spade_core::explain`] plan
/// report — the optimizer decides in-flight, so execution *is* planning —
/// and render the decisions, with actual runtime numbers when `analyze`.
fn explain(
    shared: &Shared,
    ns: &Arc<Namespace>,
    analyze: bool,
    request: &QueryRequest,
    cancel: &CancelToken,
) -> Result<(ResponsePayload, QueryStats), ServiceError> {
    if let QueryRequest::Sql(stmt) = request {
        let prefixed = format!("EXPLAIN {}{stmt}", if analyze { "ANALYZE " } else { "" });
        let db = ns.db.lock().unwrap();
        let result = spade_storage::sql::execute(&db, &prefixed)?;
        let text = match &result {
            spade_storage::sql::SqlResult::Rows(table) => (0..table.num_rows())
                .filter_map(|i| table.row(i).into_iter().next())
                .map(|v| match v {
                    spade_storage::Value::Str(s) => format!("{s}\n"),
                    v => format!("{v}\n"),
                })
                .collect(),
            other => format!("{other:?}\n"),
        };
        return Ok((ResponsePayload::Explain(text), QueryStats::default()));
    }
    spade_core::explain::begin();
    let outcome = execute(shared, ns, request, cancel);
    let report = spade_core::explain::finish();
    let (_, stats) = outcome?;
    let mut text = format!(
        "{} {}\n",
        if analyze {
            "EXPLAIN ANALYZE"
        } else {
            "EXPLAIN"
        },
        describe(request),
    );
    text.push_str(&report.render(if analyze { Some(&stats) } else { None }));
    Ok((ResponsePayload::Explain(text), stats))
}

/// One-line description of a request for the plan header.
fn describe(request: &QueryRequest) -> String {
    match request {
        QueryRequest::Select { dataset, .. } => {
            format!("{} on \"{dataset}\"", request.class())
        }
        QueryRequest::Join { left, right, .. } => {
            format!("{} on \"{left}\" x \"{right}\"", request.class())
        }
        QueryRequest::Sql(stmt) => format!("sql: {stmt}"),
        QueryRequest::Explain { request, .. } => format!("explain of {}", describe(request)),
        QueryRequest::Insert { dataset, id, .. } => format!("insert {id} into \"{dataset}\""),
        QueryRequest::Delete { dataset, id } => format!("delete {id} from \"{dataset}\""),
        QueryRequest::Flush { dataset } => format!("flush \"{dataset}\""),
        QueryRequest::ShardSelect { dataset, cells, .. } => format!(
            "{} on \"{dataset}\" cells [{}, {})",
            request.class(),
            cells.0,
            cells.1
        ),
        QueryRequest::ShardJoin {
            left, right, pairs, ..
        } => format!(
            "{} on \"{left}\" x \"{right}\" ({} pairs)",
            request.class(),
            pairs.len()
        ),
        QueryRequest::CellStats { dataset } => format!("cell-stats on \"{dataset}\""),
        QueryRequest::WalFetch { after_seq, limit } => {
            format!("wal-fetch after {after_seq} limit {limit}")
        }
    }
}

/// Results of spatial queries are plain data and compare bytewise through
/// `PartialEq`; re-exported here so differential tests read naturally.
pub type SpatialResult = QueryResult;
