//! Hand-rolled metrics: lock-free counters and log-scale duration
//! histograms with Prometheus text exposition.
//!
//! The service cannot pull in a metrics crate, so this module provides the
//! two primitives an operator actually scrapes: monotonic [`Counter`]s and
//! fixed-bucket [`Histogram`]s. Histogram buckets are log₂-spaced from
//! 1 µs (bucket *i* covers durations ≤ `1 µs × 2^i`), which spans
//! microsecond-scale in-memory selects to multi-second out-of-core joins
//! in [`BUCKETS`] buckets with no configuration. Exposition follows the
//! Prometheus text format (`# HELP` / `# TYPE`, cumulative `_bucket{le=}`
//! lines, `_sum` / `_count`), so the output of
//! [`crate::QueryService::metrics_text`] can be scraped as-is.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Log₂ histogram buckets: 1 µs × 2^i for i in 0..BUCKETS (≈ 1 µs … 33 s),
/// plus the implicit `+Inf` bucket.
pub const BUCKETS: usize = 26;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A duration histogram with fixed log₂-scale buckets.
#[derive(Debug)]
pub struct Histogram {
    /// Non-cumulative per-bucket counts; index [`BUCKETS`] is `+Inf`.
    buckets: [AtomicU64; BUCKETS + 1],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Upper bound of bucket `i`, in nanoseconds.
fn bound_nanos(i: usize) -> u64 {
    1_000u64 << i
}

impl Histogram {
    pub fn observe(&self, d: Duration) {
        let nanos = d.as_nanos() as u64;
        let idx = (0..BUCKETS)
            .find(|&i| nanos <= bound_nanos(i))
            .unwrap_or(BUCKETS);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Render in Prometheus text format with `le` bounds in seconds.
    pub fn render(&self, out: &mut String, name: &str, help: &str) {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            cum += self.buckets[i].load(Ordering::Relaxed);
            let le = bound_nanos(i) as f64 / 1e9;
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        cum += self.buckets[BUCKETS].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
        out.push_str(&format!(
            "{name}_sum {}\n{name}_count {}\n",
            self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            self.count.load(Ordering::Relaxed),
        ));
    }
}

/// Render one counter (or gauge — the format line only differs in TYPE).
pub fn render_counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
    ));
}

pub fn render_gauge(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

/// Escape a value interpolated into a Prometheus label per the text
/// exposition format: backslash, double quote, and newline must be
/// escaped; everything else passes through. Names reaching here are
/// already length- and charset-validated at namespace/dataset creation,
/// but escaping is still applied so a label can never terminate the
/// quoted string early.
pub fn sanitize_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One labeled sample of a counter family. `# HELP`/`# TYPE` headers are
/// emitted once per family (pass `first = true` for the first sample).
pub fn render_labeled_counter(
    out: &mut String,
    name: &str,
    help: &str,
    labels: &[(&str, &str)],
    value: u64,
    first: bool,
) {
    if first {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
    }
    render_sample(out, name, labels, value);
}

/// One labeled sample of a gauge family; see [`render_labeled_counter`].
pub fn render_labeled_gauge(
    out: &mut String,
    name: &str,
    help: &str,
    labels: &[(&str, &str)],
    value: u64,
    first: bool,
) {
    if first {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
    }
    render_sample(out, name, labels, value);
}

fn render_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{}\"", sanitize_label(v)));
    }
    out.push_str(&format!("}} {value}\n"));
}

/// Engine-side totals the service aggregates across completed queries,
/// plus the service-side wall-split histograms.
#[derive(Debug, Default)]
pub(crate) struct MetricsRegistry {
    /// Time between submission and admission to a worker.
    pub queue_wait: Histogram,
    /// Time between admission and completion.
    pub exec: Histogram,
    pub bytes_from_disk: Counter,
    pub bytes_to_device: Counter,
    pub passes: Counter,
    pub cells_loaded: Counter,
    pub prefetch_hits: Counter,
    pub prefetch_misses: Counter,
    pub cache_hits: Counter,
    pub io_nanos: Counter,
    pub io_hidden_nanos: Counter,
    pub gpu_nanos: Counter,
    /// Compaction runs completed (foreground or background).
    pub compact_runs: Counter,
    /// Encoded cell bytes compaction read back to rewrite.
    pub compact_bytes_read: Counter,
    /// Encoded cell bytes compaction wrote for new generations.
    pub compact_bytes_written: Counter,
    /// Grid cells split because the merged cell exceeded the byte budget.
    pub compact_cells_split: Counter,
}

impl MetricsRegistry {
    /// Fold one completed query's engine stats into the totals.
    pub fn record_query(&self, stats: &spade_core::QueryStats) {
        self.bytes_from_disk.add(stats.bytes_from_disk);
        self.bytes_to_device.add(stats.bytes_to_device);
        self.passes.add(stats.passes);
        self.cells_loaded.add(stats.cells_loaded);
        self.prefetch_hits.add(stats.prefetch_hits);
        self.prefetch_misses.add(stats.prefetch_misses);
        self.cache_hits.add(stats.cache_hits);
        self.io_nanos.add(stats.io_time.as_nanos() as u64);
        self.io_hidden_nanos.add(stats.io_hidden.as_nanos() as u64);
        self.gpu_nanos.add(stats.gpu_time.as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(1)); // bucket 0 (≤ 1 µs)
        h.observe(Duration::from_micros(2)); // bucket 1 (≤ 2 µs)
        h.observe(Duration::from_micros(3)); // bucket 2 (≤ 4 µs)
        h.observe(Duration::from_secs(3600)); // beyond the last bound → +Inf
        assert_eq!(h.count(), 4);
        let mut out = String::new();
        h.render(&mut out, "t", "test");
        // Cumulative counts: 1 at 1 µs, 2 at 2 µs, 3 at 4 µs, 4 at +Inf.
        assert!(out.contains("t_bucket{le=\"0.000001\"} 1\n"));
        assert!(out.contains("t_bucket{le=\"0.000002\"} 2\n"));
        assert!(out.contains("t_bucket{le=\"0.000004\"} 3\n"));
        assert!(out.contains("t_bucket{le=\"+Inf\"} 4\n"));
        assert!(out.contains("t_count 4\n"));
    }

    #[test]
    fn histogram_render_is_cumulative_and_monotone() {
        let h = Histogram::default();
        for ms in [1u64, 5, 20, 80, 300] {
            h.observe(Duration::from_millis(ms));
        }
        let mut out = String::new();
        h.render(&mut out, "lat", "latency");
        let mut last = 0u64;
        for line in out.lines().filter(|l| l.starts_with("lat_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {out}");
            last = v;
        }
        assert_eq!(last, 5);
    }

    #[test]
    fn exposition_format() {
        let mut out = String::new();
        render_counter(&mut out, "spade_x_total", "Things.", 42);
        assert_eq!(
            out,
            "# HELP spade_x_total Things.\n# TYPE spade_x_total counter\nspade_x_total 42\n"
        );
    }

    #[test]
    fn registry_folds_query_stats() {
        let m = MetricsRegistry::default();
        let stats = spade_core::QueryStats {
            bytes_from_disk: 100,
            bytes_to_device: 200,
            passes: 3,
            cells_loaded: 4,
            prefetch_hits: 2,
            prefetch_misses: 1,
            cache_hits: 5,
            io_time: Duration::from_millis(10),
            io_hidden: Duration::from_millis(4),
            gpu_time: Duration::from_millis(6),
            ..Default::default()
        };
        m.record_query(&stats);
        m.record_query(&stats);
        assert_eq!(m.bytes_from_disk.get(), 200);
        assert_eq!(m.passes.get(), 6);
        assert_eq!(m.prefetch_hits.get(), 4);
        assert_eq!(m.io_hidden_nanos.get(), 8_000_000);
    }
}
