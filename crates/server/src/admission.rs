//! GPU-memory admission control.
//!
//! A query that starts while the device is full doesn't fail — the
//! executors tolerate OOM by streaming cells without residency — but it
//! thrashes: every cell it touches re-crosses the bus, and it evicts the
//! residency of the queries that *were* fitting. The controller therefore
//! gates query *start* on an estimated device footprint: a query runs only
//! once its estimate fits next to the estimates of every running query,
//! otherwise it waits in the service queue.
//!
//! The controller keeps its own reservation ledger (reserve-then-commit on
//! an atomic, exactly like [`spade_gpu::DeviceMemory::alloc`]) instead of
//! allocating on the real device ledger: the executors' internal uploads
//! already account there, and double-charging would halve the usable
//! device. The invariant the property tests pin down: the sum of admitted
//! estimates never exceeds the device capacity.

use std::sync::atomic::{AtomicU64, Ordering};

/// Reservation ledger gating admission against the device byte capacity.
#[derive(Debug)]
pub struct AdmissionController {
    capacity: u64,
    reserved: AtomicU64,
}

impl AdmissionController {
    pub fn new(capacity: u64) -> Self {
        AdmissionController {
            capacity,
            reserved: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Currently reserved estimate bytes across running queries.
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Acquire)
    }

    /// Can this footprint *ever* be admitted? Estimates beyond the whole
    /// device are rejected outright rather than queued forever.
    pub fn admissible(&self, bytes: u64) -> bool {
        bytes <= self.capacity
    }

    /// Atomically reserve `bytes` if the total stays within capacity.
    /// Queries whose reservation fails stay queued and retry when a
    /// running query releases.
    pub fn try_reserve(&self, bytes: u64) -> bool {
        let mut cur = self.reserved.load(Ordering::Acquire);
        loop {
            let new = match cur.checked_add(bytes) {
                Some(n) if n <= self.capacity => n,
                _ => return false,
            };
            match self
                .reserved
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Release a reservation made by [`AdmissionController::try_reserve`].
    pub fn release(&self, bytes: u64) {
        let mut cur = self.reserved.load(Ordering::Acquire);
        loop {
            let new = cur.saturating_sub(bytes);
            match self
                .reserved
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_cycle() {
        let a = AdmissionController::new(100);
        assert!(a.try_reserve(60));
        assert!(!a.try_reserve(50), "would exceed capacity");
        assert!(a.try_reserve(40));
        assert_eq!(a.reserved(), 100);
        a.release(60);
        assert_eq!(a.reserved(), 40);
    }

    #[test]
    fn oversized_footprints_are_inadmissible() {
        let a = AdmissionController::new(100);
        assert!(a.admissible(100));
        assert!(!a.admissible(101));
    }

    #[test]
    fn concurrent_reservations_never_exceed_capacity() {
        let a = AdmissionController::new(1_000);
        std::thread::scope(|s| {
            for t in 0..8 {
                let a = &a;
                s.spawn(move || {
                    let mut state = 0x5851_f42d_u64.wrapping_mul(t + 1);
                    for _ in 0..2_000 {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let bytes = 1 + (state >> 33) % 300;
                        if a.try_reserve(bytes) {
                            assert!(a.reserved() <= a.capacity());
                            a.release(bytes);
                        }
                    }
                });
            }
        });
        assert_eq!(a.reserved(), 0);
    }
}
