//! Typed query requests and responses of the service layer.

use spade_core::query::{JoinQuery, QueryResult, SelectQuery};
use spade_core::QueryStats;
use spade_storage::sql::SqlResult;
use std::time::Duration;

/// A query a session submits to the [`crate::QueryService`]. Dataset names
/// refer to the service's catalog ([`crate::QueryService::register`] /
/// [`crate::QueryService::register_indexed`]); selection and join classes
/// reuse the engine's query AST. Name resolution prefers the grid-indexed
/// (out-of-core) form of a dataset when both are registered.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// A selection (intersects / range / containment / distance / kNN)
    /// over one dataset.
    Select { dataset: String, query: SelectQuery },
    /// A join (intersects / distance / kNN / count-points aggregation)
    /// over two datasets.
    Join {
        left: String,
        right: String,
        query: JoinQuery,
    },
    /// A SQL statement against the service's embedded relational store.
    Sql(String),
    /// An `EXPLAIN` / `EXPLAIN ANALYZE` of another request: the response is
    /// the plan text instead of the result. Spatial requests execute to
    /// discover the plan either way (the optimizer decides in-flight);
    /// `analyze` additionally prints actual runtime numbers next to the
    /// estimates. SQL requests are forwarded with an `EXPLAIN` prefix.
    Explain {
        analyze: bool,
        request: Box<QueryRequest>,
    },
    /// Insert (or replace) one object of a grid-indexed dataset. The write
    /// is WAL-logged (when the service has a WAL) and staged in the
    /// dataset's delta store; queries see it immediately.
    Insert {
        dataset: String,
        id: u32,
        geometry: spade_geometry::Geometry,
    },
    /// Delete one object of a grid-indexed dataset (a staged tombstone
    /// masks the base index until compaction folds it in).
    Delete { dataset: String, id: u32 },
    /// Force durability and full compaction of one dataset: fsync the WAL,
    /// drain the delta into a fresh index generation, and checkpoint.
    Flush { dataset: String },
    /// A selection restricted to a half-open cell range `[cells.0, cells.1)`
    /// — one shard's slice of a scatter-gather plan. Exactly one shard of a
    /// covering plan sets `include_delta` so staged writes are counted once.
    /// Shard partials bypass the result cache.
    ShardSelect {
        dataset: String,
        query: SelectQuery,
        cells: (u32, u32),
        include_delta: bool,
    },
    /// A join over an explicit list of `(left_cell, right_cell)` pairs —
    /// one shard's slice of a scatter-gather join plan. Pairs outside the
    /// worker's current cell ranges are dropped (stale shard-map safety);
    /// refinement is exact, so a bbox-superset pair list is harmless.
    ShardJoin {
        left: String,
        right: String,
        query: JoinQuery,
        pairs: Vec<(u32, u32)>,
        include_delta: bool,
    },
    /// Per-cell statistics of a grid-indexed dataset (bbox, byte size,
    /// object count per cell, plus the index generation and last applied
    /// WAL sequence). Coordinators use this to build byte-balanced shard
    /// maps and to cost join-pair routing.
    CellStats { dataset: String },
    /// Stream WAL records with sequence numbers strictly greater than
    /// `after_seq`, at most `limit` of them. The replication pull path:
    /// followers poll this and replay the batch into their own write path.
    /// Restricted to default-namespace sessions.
    WalFetch { after_seq: u64, limit: u32 },
}

impl QueryRequest {
    /// Short class label for logs and stats breakdowns.
    pub fn class(&self) -> &'static str {
        match self {
            QueryRequest::Select { query, .. } => match query {
                SelectQuery::Intersects(_) => "select",
                SelectQuery::Range(_) => "range",
                SelectQuery::Contained(_) => "contained",
                SelectQuery::WithinDistance(..) => "distance",
                SelectQuery::Knn(..) => "knn",
            },
            QueryRequest::Join { query, .. } => match query {
                JoinQuery::Intersects => "join",
                JoinQuery::WithinDistance(_) => "distance-join",
                JoinQuery::Knn(_) => "knn-join",
                JoinQuery::CountPoints => "aggregate",
            },
            QueryRequest::Sql(_) => "sql",
            QueryRequest::Explain { .. } => "explain",
            QueryRequest::Insert { .. } => "insert",
            QueryRequest::Delete { .. } => "delete",
            QueryRequest::Flush { .. } => "flush",
            QueryRequest::ShardSelect { .. } => "shard-select",
            QueryRequest::ShardJoin { .. } => "shard-join",
            QueryRequest::CellStats { .. } => "cell-stats",
            QueryRequest::WalFetch { .. } => "wal-fetch",
        }
    }
}

/// One cell's statistics in a [`ResponsePayload::CellStats`] reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellInfo {
    /// The cell's bounding box.
    pub bbox: spade_geometry::BBox,
    /// On-disk byte size of the cell's fragment data.
    pub bytes: u64,
    /// Number of objects resident in the cell.
    pub objects: u32,
}

/// What a completed query returns.
#[derive(Debug, PartialEq)]
pub enum ResponsePayload {
    /// A spatial query result.
    Query(QueryResult),
    /// A SQL statement result.
    Sql(SqlResult),
    /// The rendered plan of an `EXPLAIN` / `EXPLAIN ANALYZE` request.
    Explain(String),
    /// Acknowledgement of a write: the WAL sequence it was assigned (for
    /// `Flush`, the checkpointed sequence) and the index generation the
    /// dataset is on after the request.
    Ack { seq: u64, generation: u64 },
    /// Per-cell statistics of one grid-indexed dataset.
    CellStats {
        /// Index generation the statistics describe.
        generation: u64,
        /// Last WAL sequence the serving node has applied (0 without a WAL).
        seq: u64,
        /// One entry per grid cell, in cell order.
        cells: Vec<CellInfo>,
    },
    /// A batch of WAL records for replication. `leader_seq` is the highest
    /// sequence the leader has assigned so far; `records` are consecutive
    /// records after the requested sequence (possibly fewer than the
    /// requested limit, empty when the follower is caught up).
    WalBatch {
        leader_seq: u64,
        records: Vec<spade_storage::wal::WalRecord>,
    },
}

impl ResponsePayload {
    /// The spatial result, when the payload is one.
    pub fn query(&self) -> Option<&QueryResult> {
        match self {
            ResponsePayload::Query(q) => Some(q),
            _ => None,
        }
    }

    /// The plan text, when the payload is an `EXPLAIN` response.
    pub fn explain(&self) -> Option<&str> {
        match self {
            ResponsePayload::Explain(t) => Some(t),
            _ => None,
        }
    }

    /// The `(seq, generation)` acknowledgement, when the payload is one.
    pub fn ack(&self) -> Option<(u64, u64)> {
        match self {
            ResponsePayload::Ack { seq, generation } => Some((*seq, *generation)),
            _ => None,
        }
    }
}

/// A completed query: its payload, the engine's per-query stats, and the
/// service-side wall split between time spent queued (admission) and time
/// spent executing.
#[derive(Debug)]
pub struct QueryResponse {
    pub payload: ResponsePayload,
    /// Engine-side breakdown (I/O / GPU / polygon / CPU, transfer bytes,
    /// passes). Zeroed for SQL statements, which bypass the engine.
    pub stats: QueryStats,
    /// Time between submission and admission to a worker.
    pub queue_wait: Duration,
    /// Time between admission and completion.
    pub exec_time: Duration,
}

/// Why a query did not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The admission controller rejected the query outright: its estimated
    /// device footprint can never fit the device.
    Rejected { estimated: u64, capacity: u64 },
    /// The query was cancelled (by its token) before or during execution.
    Cancelled,
    /// The query's deadline expired before or during execution.
    DeadlineExceeded,
    /// The request referenced a dataset the catalog does not know.
    UnknownDataset(String),
    /// The session referenced a namespace the service does not know.
    UnknownNamespace(String),
    /// The presented token does not match the namespace's.
    Unauthorized(String),
    /// A namespace or dataset name failed validation (empty, oversized,
    /// contains control characters or the reserved `:` separator), or a
    /// namespace with that name already exists.
    InvalidName(String),
    /// The service is shutting down; the query will not run.
    Shutdown,
    /// The query completed, but its encoded reply exceeded the
    /// connection's frame-size cap and could not be delivered over the
    /// wire. Narrow the query (or raise the server's `max_frame`).
    ReplyTooLarge { size: u64, max: u64 },
    /// The engine or storage layer failed.
    Storage(spade_storage::StorageError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Rejected {
                estimated,
                capacity,
            } => write!(
                f,
                "rejected: estimated footprint {estimated} B exceeds device capacity {capacity} B"
            ),
            ServiceError::Cancelled => write!(f, "cancelled"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::UnknownDataset(n) => write!(f, "unknown dataset '{n}'"),
            ServiceError::UnknownNamespace(n) => write!(f, "unknown namespace '{n}'"),
            ServiceError::Unauthorized(n) => write!(f, "unauthorized for namespace '{n}'"),
            ServiceError::InvalidName(why) => write!(f, "invalid name: {why}"),
            ServiceError::Shutdown => write!(f, "service shut down"),
            ServiceError::ReplyTooLarge { size, max } => {
                write!(f, "reply of {size} B exceeds the {max} B frame cap")
            }
            ServiceError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<spade_storage::StorageError> for ServiceError {
    fn from(e: spade_storage::StorageError) -> Self {
        match e {
            spade_storage::StorageError::Cancelled => ServiceError::Cancelled,
            other => ServiceError::Storage(other),
        }
    }
}
