//! Multi-tenant namespaces.
//!
//! A namespace is an isolated tenant of one [`crate::QueryService`]: it has
//! its own dataset catalog (two tenants can register different data under
//! the same name), its own embedded relational store (SQL statements —
//! including those arriving over the wire — can only ever touch the
//! submitting tenant's tables), its own result-cache identity (the
//! namespace id joins every cache key, so tenants can never share cached
//! bytes), its own write-ahead-log key prefix (recovery routes replayed
//! records back to the right tenant's dataset), an optional admission
//! quota carved out of the device-memory admission controller, and an
//! optional auth token that sessions — local or over the wire — must
//! present.
//!
//! The default namespace (id 0, name `"default"`) always exists, has no
//! quota and no token, and is what the pre-namespace `QueryService` API
//! (`register`, `session`, …) operates on, so embedded single-tenant use
//! is unchanged.

use crate::request::ServiceError;
use spade_storage::Database;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Name of the always-present default namespace.
pub const DEFAULT_NAMESPACE: &str = "default";

/// Longest accepted namespace or dataset name. Names are interpolated into
/// metric labels and WAL keys; unbounded names would let one tenant bloat
/// both.
pub const MAX_NAME_LEN: usize = 128;

/// Tuning and access control for one namespace.
#[derive(Debug, Clone, Default)]
pub struct NamespaceConfig {
    /// Device-memory admission quota in bytes: the sum of estimated
    /// footprints of this tenant's *running* queries never exceeds it.
    /// A tenant at its quota waits without blocking other tenants'
    /// admissions. `None` shares the whole device (subject to the global
    /// admission controller).
    pub quota_bytes: Option<u64>,
    /// Auth token sessions must present ([`crate::QueryService::session_in`]
    /// and the wire handshake). `None` admits anyone who knows the name.
    pub token: Option<String>,
}

/// Per-tenant admission and outcome counters, rendered with a
/// `tenant="…"` label by [`crate::QueryService::metrics_text`].
#[derive(Debug, Default)]
pub struct TenantStats {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected: AtomicU64,
    pub cancelled: AtomicU64,
    pub failed: AtomicU64,
    /// Times an admission scan skipped one of this tenant's queued queries
    /// because the tenant was at its quota (other tenants proceeded).
    pub quota_deferrals: AtomicU64,
}

/// One tenant of the service. Internal: sessions hold an `Arc` of this and
/// every queued query carries one.
#[derive(Debug)]
pub struct Namespace {
    pub(crate) id: u64,
    pub(crate) name: String,
    pub(crate) token: Option<String>,
    pub(crate) quota: Option<u64>,
    /// Estimated bytes of this tenant's currently running queries.
    reserved: AtomicU64,
    pub(crate) stats: TenantStats,
    /// This tenant's embedded relational store. SQL requests submitted
    /// through a session execute against the submitting session's
    /// namespace only — tenants can never read or modify each other's
    /// tables, matching the dataset-catalog isolation above.
    pub(crate) db: Mutex<Database>,
}

impl Namespace {
    pub(crate) fn new(id: u64, name: String, config: NamespaceConfig) -> Self {
        Namespace {
            id,
            name,
            token: config.token,
            quota: config.quota_bytes,
            reserved: AtomicU64::new(0),
            stats: TenantStats::default(),
            db: Mutex::new(Database::in_memory()),
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn quota(&self) -> Option<u64> {
        self.quota
    }

    /// Estimated bytes of this tenant's running queries right now.
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Acquire)
    }

    /// Check a presented token against the namespace's. A namespace with
    /// no token admits any presentation; one with a token requires an
    /// exact match, compared in constant time — this check is reachable
    /// straight from the wire handshake, so an early-exit comparison
    /// would leak how many leading bytes of a guess were right.
    pub(crate) fn authorize(&self, presented: Option<&str>) -> Result<(), ServiceError> {
        match (&self.token, presented) {
            (None, _) => Ok(()),
            (Some(t), Some(p)) if constant_time_eq(t.as_bytes(), p.as_bytes()) => Ok(()),
            (Some(_), _) => Err(ServiceError::Unauthorized(self.name.clone())),
        }
    }

    /// Can a footprint this large ever run under the quota?
    pub(crate) fn admissible(&self, bytes: u64) -> bool {
        match self.quota {
            Some(q) => bytes <= q,
            None => true,
        }
    }

    /// Atomically reserve quota for one running query; `false` leaves the
    /// query queued without blocking other tenants.
    pub(crate) fn try_reserve(&self, bytes: u64) -> bool {
        let Some(quota) = self.quota else { return true };
        let mut cur = self.reserved.load(Ordering::Acquire);
        loop {
            let new = match cur.checked_add(bytes) {
                Some(n) if n <= quota => n,
                _ => return false,
            };
            match self
                .reserved
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Release a [`Namespace::try_reserve`] reservation.
    pub(crate) fn release(&self, bytes: u64) {
        if self.quota.is_none() {
            return;
        }
        let mut cur = self.reserved.load(Ordering::Acquire);
        loop {
            let new = cur.saturating_sub(bytes);
            match self
                .reserved
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The key this tenant's writes to `dataset` carry in the write-ahead
    /// log. The default namespace uses the bare dataset name, so WAL
    /// directories written before namespaces existed replay unchanged;
    /// other tenants prefix their namespace name (`:` cannot appear in
    /// either part — [`validate_name`] rejects it).
    pub(crate) fn wal_key(&self, dataset: &str) -> String {
        if self.id == 0 {
            dataset.to_string()
        } else {
            format!("{}:{}", self.name, dataset)
        }
    }
}

/// Equality whose timing depends only on the operand lengths, never on
/// where the first differing byte sits: every byte of both operands is
/// folded into an accumulator before a single final comparison decides.
/// `black_box` keeps the optimizer from reintroducing a data-dependent
/// early exit.
pub(crate) fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= std::hint::black_box((x ^ y) as usize);
    }
    diff == 0
}

/// Validate a namespace or dataset name at creation/registration time.
/// Rejects empty and oversized names (they'd bloat metric labels and WAL
/// records), control characters (they'd corrupt the Prometheus text
/// format even escaped), and `:` (the WAL-key separator).
pub fn validate_name(kind: &str, name: &str) -> Result<(), ServiceError> {
    if name.is_empty() {
        return Err(ServiceError::InvalidName(format!("empty {kind} name")));
    }
    if name.len() > MAX_NAME_LEN {
        return Err(ServiceError::InvalidName(format!(
            "{kind} name exceeds {MAX_NAME_LEN} bytes ({} given)",
            name.len()
        )));
    }
    if name.chars().any(|c| c.is_control()) {
        return Err(ServiceError::InvalidName(format!(
            "{kind} name contains control characters"
        )));
    }
    if name.contains(':') {
        return Err(ServiceError::InvalidName(format!(
            "{kind} name contains ':' (reserved as the WAL key separator)"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_reserve_release() {
        let ns = Namespace::new(
            1,
            "t".into(),
            NamespaceConfig {
                quota_bytes: Some(100),
                token: None,
            },
        );
        assert!(ns.try_reserve(60));
        assert!(!ns.try_reserve(50));
        assert!(ns.try_reserve(40));
        ns.release(60);
        assert_eq!(ns.reserved(), 40);
        assert!(!ns.admissible(101));
        assert!(ns.admissible(100));
    }

    #[test]
    fn unlimited_namespace_always_reserves() {
        let ns = Namespace::new(1, "t".into(), NamespaceConfig::default());
        assert!(ns.try_reserve(u64::MAX));
        ns.release(u64::MAX);
        assert_eq!(ns.reserved(), 0);
    }

    #[test]
    fn token_check() {
        let ns = Namespace::new(
            1,
            "t".into(),
            NamespaceConfig {
                quota_bytes: None,
                token: Some("s3cret".into()),
            },
        );
        assert!(ns.authorize(Some("s3cret")).is_ok());
        assert!(ns.authorize(Some("wrong")).is_err());
        assert!(ns.authorize(None).is_err());
        let open = Namespace::new(2, "o".into(), NamespaceConfig::default());
        assert!(open.authorize(None).is_ok());
        assert!(open.authorize(Some("anything")).is_ok());
    }

    #[test]
    fn constant_time_eq_agrees_with_plain_equality() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"", b""),
            (b"", b"a"),
            (b"a", b""),
            (b"s3cret", b"s3cret"),
            (b"s3cret", b"s3cres"),
            (b"s3cret", b"t3cret"),
            (b"s3cret", b"s3cret-longer"),
            (b"short", b"a-much-longer-token"),
        ];
        for (a, b) in cases {
            assert_eq!(constant_time_eq(a, b), a == b, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("namespace", "tenant-a").is_ok());
        assert!(validate_name("namespace", "").is_err());
        assert!(validate_name("namespace", &"x".repeat(MAX_NAME_LEN + 1)).is_err());
        assert!(validate_name("namespace", "a:b").is_err());
        assert!(validate_name("namespace", "a\nb").is_err());
        assert!(validate_name("namespace", "quote\"and\\slash").is_ok());
    }

    #[test]
    fn wal_keys_join_tenant() {
        let default = Namespace::new(0, DEFAULT_NAMESPACE.into(), NamespaceConfig::default());
        assert_eq!(default.wal_key("taxi"), "taxi");
        let t = Namespace::new(3, "acme".into(), NamespaceConfig::default());
        assert_eq!(t.wal_key("taxi"), "acme:taxi");
    }
}
