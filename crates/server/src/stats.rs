//! Service-level statistics.
//!
//! The engine's [`spade_core::QueryStats`] describes one query; the service
//! aggregates across queries and sessions: queue depth, admission counters,
//! the queue-vs-execution wall split, and latency quantiles over a sliding
//! window of recent completions.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How many recent query latencies the p50/p95 window keeps.
const WINDOW: usize = 256;

/// Shared counters, updated lock-free except for the latency window.
#[derive(Debug, Default)]
pub(crate) struct ServiceStats {
    pub submitted: AtomicU64,
    pub admitted: AtomicU64,
    pub rejected: AtomicU64,
    pub cancelled: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub queue_wait_nanos: AtomicU64,
    pub exec_nanos: AtomicU64,
    latencies: Mutex<VecDeque<u64>>,
}

impl ServiceStats {
    pub fn record_latency(&self, total: Duration) {
        let mut w = self.latencies.lock().unwrap();
        if w.len() == WINDOW {
            w.pop_front();
        }
        w.push_back(total.as_nanos() as u64);
    }

    pub fn snapshot(&self, queue_depth: usize, running: usize) -> ServiceSnapshot {
        let (p50, p95) = {
            let w = self.latencies.lock().unwrap();
            let mut sorted: Vec<u64> = w.iter().copied().collect();
            sorted.sort_unstable();
            let q = |p: f64| -> Duration {
                if sorted.is_empty() {
                    return Duration::ZERO;
                }
                // Nearest-rank: the smallest sample whose cumulative
                // frequency is ≥ p — 1-indexed rank ⌈p·n⌉. The previous
                // rounded-linear index overshot by one on even windows
                // (p50 of 1..=100 gave the 51st sample, not the 50th).
                let rank = (p * sorted.len() as f64).ceil() as usize;
                Duration::from_nanos(sorted[rank.clamp(1, sorted.len()) - 1])
            };
            (q(0.50), q(0.95))
        };
        ServiceSnapshot {
            queue_depth,
            running,
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            total_queue_wait: Duration::from_nanos(self.queue_wait_nanos.load(Ordering::Relaxed)),
            total_exec: Duration::from_nanos(self.exec_nanos.load(Ordering::Relaxed)),
            p50_latency: p50,
            p95_latency: p95,
        }
    }
}

/// A point-in-time view of the service counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// Queries waiting for admission right now.
    pub queue_depth: usize,
    /// Queries executing right now.
    pub running: usize,
    /// Queries ever submitted (including rejected ones).
    pub submitted: u64,
    /// Queries admitted to a worker.
    pub admitted: u64,
    /// Queries rejected outright (footprint beyond device capacity).
    pub rejected: u64,
    /// Queries cancelled or expired, queued or mid-flight.
    pub cancelled: u64,
    /// Queries that completed with a result.
    pub completed: u64,
    /// Queries that failed with a storage/engine error.
    pub failed: u64,
    /// Sum of all time queries spent waiting in the admission queue.
    pub total_queue_wait: Duration,
    /// Sum of all time queries spent executing.
    pub total_exec: Duration,
    /// Median end-to-end latency over the recent-completion window.
    pub p50_latency: Duration,
    /// 95th-percentile end-to-end latency over the window.
    pub p95_latency: Duration,
}

impl ServiceSnapshot {
    /// Every submitted query is accounted exactly once when idle:
    /// completed + failed + cancelled + rejected + queued + running.
    pub fn accounted(&self) -> u64 {
        self.completed
            + self.failed
            + self.cancelled
            + self.rejected
            + self.queue_depth as u64
            + self.running as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_over_window() {
        let s = ServiceStats::default();
        for ms in 1..=100u64 {
            s.record_latency(Duration::from_millis(ms));
        }
        let snap = s.snapshot(0, 0);
        // Nearest-rank over 1..=100 ms: p50 is the 50th sample, p95 the
        // 95th (the old rounded-linear index off-by-one gave 51 ms).
        assert_eq!(snap.p50_latency, Duration::from_millis(50));
        assert_eq!(snap.p95_latency, Duration::from_millis(95));
    }

    /// Warm-up: with one sample both percentiles are that sample; with two,
    /// p50 is the smaller and p95 the larger.
    #[test]
    fn warmup_windows() {
        let s = ServiceStats::default();
        s.record_latency(Duration::from_millis(7));
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.p50_latency, Duration::from_millis(7));
        assert_eq!(snap.p95_latency, Duration::from_millis(7));

        s.record_latency(Duration::from_millis(3));
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.p50_latency, Duration::from_millis(3));
        assert_eq!(snap.p95_latency, Duration::from_millis(7));
    }

    /// Property test against the exact oracle: for every window size the
    /// reported percentile must be the smallest sample whose cumulative
    /// frequency reaches p·n.
    #[test]
    fn percentiles_match_nearest_rank_oracle() {
        fn oracle(samples: &[u64], p: f64) -> u64 {
            let mut sorted = samples.to_vec();
            sorted.sort_unstable();
            let need = ((p * sorted.len() as f64).ceil() as usize).max(1);
            *sorted
                .iter()
                .find(|&&v| sorted.iter().filter(|&&x| x <= v).count() >= need)
                .expect("some sample reaches the rank")
        }
        let mut seed = 0x9e3779b97f4a7c15u64;
        for n in 1..=80usize {
            let s = ServiceStats::default();
            let mut samples = Vec::new();
            for _ in 0..n {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let ms = (seed >> 33) % 40 + 1; // duplicates are likely
                samples.push(Duration::from_millis(ms).as_nanos() as u64);
                s.record_latency(Duration::from_millis(ms));
            }
            let snap = s.snapshot(0, 0);
            for (p, got) in [(0.50, snap.p50_latency), (0.95, snap.p95_latency)] {
                assert_eq!(
                    got.as_nanos() as u64,
                    oracle(&samples, p),
                    "p{} over window of {n}",
                    (p * 100.0) as u32
                );
            }
        }
    }

    #[test]
    fn window_slides() {
        let s = ServiceStats::default();
        for _ in 0..WINDOW {
            s.record_latency(Duration::from_millis(1));
        }
        for _ in 0..WINDOW {
            s.record_latency(Duration::from_millis(9));
        }
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.p50_latency, Duration::from_millis(9));
    }

    #[test]
    fn empty_window_is_zero() {
        let s = ServiceStats::default();
        let snap = s.snapshot(3, 1);
        assert_eq!(snap.p50_latency, Duration::ZERO);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.running, 1);
    }
}
