//! Property tests of WAL recovery: whatever the write interleaving and
//! wherever the crash lands, replay-on-open recovers a *prefix* of the
//! acknowledged history — never a gap, never garbage, never a panic — and
//! is idempotent (reopening a recovered log changes nothing).

use proptest::prelude::*;
use spade_geometry::{Geometry, Point};
use spade_storage::wal::{pending_by_dataset, Wal, WalOp, WalRecord, WalSync};
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "spade-walrec-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn pt(x: f64, y: f64) -> Geometry {
    Geometry::Point(Point::new(x, y))
}

/// Decode a raw op spec `(kind, id)` into a deterministic WAL operation.
/// Kind 0/1 insert, 2 delete, 3 checkpoint (folding nothing, so replayed
/// pending sets stay comparable).
fn op_of(kind: u32, id: u32) -> WalOp {
    match kind % 4 {
        0 | 1 => WalOp::Insert {
            id,
            geom: pt(id as f64, kind as f64),
        },
        2 => WalOp::Delete { id },
        _ => WalOp::Checkpoint {
            generation: 0,
            through_seq: 0,
        },
    }
}

fn dataset_of(sel: u32) -> &'static str {
    if sel.is_multiple_of(2) {
        "left"
    } else {
        "right"
    }
}

/// Write `ops` through a WAL with the given segment threshold, return the
/// records in append order.
fn write_all(dir: &PathBuf, ops: &[(u32, u32, u32)], segment_bytes: u64) -> Vec<WalRecord> {
    let (mut wal, old) = Wal::open_with(dir, WalSync::Never, segment_bytes).unwrap();
    assert!(old.is_empty());
    let mut written = Vec::new();
    for &(ds, kind, id) in ops {
        let dataset = dataset_of(ds);
        let op = op_of(kind, id);
        let seq = wal.append(dataset, op.clone()).unwrap();
        written.push(WalRecord {
            seq,
            dataset: dataset.to_string(),
            op,
        });
    }
    wal.sync().unwrap();
    written
}

/// Last segment file in `dir` (highest index), with its byte length.
fn last_segment(dir: &PathBuf) -> (PathBuf, u64) {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segs.sort();
    let last = segs.pop().expect("at least one segment");
    let len = std::fs::metadata(&last).unwrap().len();
    (last, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of inserts/deletes/checkpoints across two
    /// datasets, random segment sizes (forcing rotation), and a crash at a
    /// random byte of the final segment: recovery yields a contiguous
    /// *window* of the written history. The tail cut comes from the crash;
    /// the head may have been garbage-collected by checkpoint-triggered
    /// truncation — but since these checkpoints fold nothing
    /// (`through_seq: 0`), no insert or delete is ever covered, so only
    /// checkpoint records may be dropped from the head.
    #[test]
    fn recovery_is_window_under_random_interleaving_and_crash_point(
        ops in prop::collection::vec((0u32..2, 0u32..4, 0u32..50), 1..40),
        segment_bytes in 64u64..512,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = tmp("prop");
        let written = write_all(&dir, &ops, segment_bytes);

        // Crash: truncate the final segment at an arbitrary byte.
        let (seg, len) = last_segment(&dir);
        let cut = (len as f64 * cut_frac) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (_, recovered) = Wal::open(&dir, WalSync::Never).unwrap();
        prop_assert!(recovered.len() <= written.len());
        if let Some(first) = recovered.first() {
            // Sequences are dense from 1, so the window start is seq - 1.
            let k = (first.seq - 1) as usize;
            prop_assert_eq!(&recovered[..], &written[k..k + recovered.len()]);
            prop_assert!(
                written[..k].iter().all(|r| matches!(r.op, WalOp::Checkpoint { .. })),
                "GC dropped an uncovered insert/delete from the head"
            );
            // The pending fold over the window matches the fold over the
            // full crash-consistent prefix for every dataset that has
            // pending operations: the dropped head held no insert/delete.
            let full = pending_by_dataset(&written[..k + recovered.len()]);
            let window = pending_by_dataset(&recovered);
            for (ds, pend) in &full {
                if pend.ops.is_empty() {
                    continue; // checkpoint-only entry; its record may be GC'd
                }
                prop_assert_eq!(&window[ds].ops, &pend.ops);
            }
        }

        // Idempotence: a second open over the truncated log recovers the
        // same records and a third party sees a stable file set.
        let (_, again) = Wal::open(&dir, WalSync::Never).unwrap();
        prop_assert_eq!(recovered, again);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Sequence numbers keep ascending across a crash: appends after
    /// recovery never reuse a surviving sequence number.
    #[test]
    fn sequences_stay_monotonic_across_recovery(
        ops in prop::collection::vec((0u32..2, 0u32..3, 0u32..20), 1..20),
        lost_bytes in 0u64..64,
    ) {
        let dir = tmp("seq");
        let written = write_all(&dir, &ops, 1 << 20);
        let (seg, len) = last_segment(&dir);
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len.saturating_sub(lost_bytes)).unwrap();
        drop(f);

        let (mut wal, recovered) = Wal::open(&dir, WalSync::Never).unwrap();
        let max_surviving = recovered.last().map(|r| r.seq).unwrap_or(0);
        let fresh = wal.append("left", WalOp::Delete { id: 9999 }).unwrap();
        prop_assert!(fresh > max_surviving);
        prop_assert!(fresh <= written.last().map(|r| r.seq + 1).unwrap_or(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Exhaustive crash points: with multiple sealed segments plus a live
/// tail, truncate the *final record* at every byte boundary. Everything
/// before that record must always survive; the torn record itself must
/// never half-apply.
#[test]
fn every_crash_point_of_final_record_recovers_all_prior_records() {
    let dir = tmp("exhaustive");
    // Small segments: 12 records spread over several files.
    let ops: Vec<(u32, u32, u32)> = (0..12u32).map(|i| (i, i % 3, i)).collect();
    let written = write_all(&dir, &ops, 200);
    let (seg, len) = last_segment(&dir);
    let tail = std::fs::read(&seg).unwrap();

    // Find the final record's start: scan frames ([len][crc][payload]).
    let mut off = 0usize;
    let mut last_start = 0usize;
    while off < tail.len() {
        let flen = u32::from_le_bytes(tail[off..off + 4].try_into().unwrap()) as usize;
        last_start = off;
        off += 8 + flen;
    }
    assert_eq!(off, tail.len(), "segment ends on a frame boundary");

    for cut in last_start..=tail.len() {
        let d2 = tmp(&format!("exh-{cut}"));
        std::fs::create_dir_all(&d2).unwrap();
        // Copy all segments, then truncate the last at `cut`.
        for e in std::fs::read_dir(&dir).unwrap() {
            let p = e.unwrap().path();
            std::fs::copy(&p, d2.join(p.file_name().unwrap())).unwrap();
        }
        let cut_file = d2.join(seg.file_name().unwrap());
        std::fs::write(&cut_file, &tail[..cut]).unwrap();

        let (_, recovered) = Wal::open(&d2, WalSync::Never).unwrap();
        let want = if cut == tail.len() {
            written.len()
        } else {
            written.len() - 1
        };
        assert_eq!(
            recovered.len(),
            want,
            "cut at byte {cut}/{len} of the final segment"
        );
        assert_eq!(&recovered[..], &written[..want]);
        std::fs::remove_dir_all(&d2).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A crash that tears a *sealed* (non-final) segment drops every later
/// segment too: ordering past the tear is untrustworthy, so recovery keeps
/// the longest trustworthy prefix only.
#[test]
fn torn_middle_segment_drops_later_segments() {
    let dir = tmp("middle");
    let ops: Vec<(u32, u32, u32)> = (0..16u32).map(|i| (0, 0, i)).collect();
    let written = write_all(&dir, &ops, 200);

    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    segs.sort();
    assert!(segs.len() >= 3, "need several segments, got {}", segs.len());

    // Count the records of the first segment, then tear the second in half.
    let mut first_seg_records = Vec::new();
    {
        let (_, all) = Wal::open(&dir, WalSync::Never).unwrap();
        assert_eq!(all.len(), written.len());
        let first_len = std::fs::metadata(&segs[0]).unwrap().len();
        let data = std::fs::read(&segs[0]).unwrap();
        let mut off = 0usize;
        while off < first_len as usize {
            let flen = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            off += 8 + flen;
            first_seg_records.push(());
        }
    }
    let second_len = std::fs::metadata(&segs[1]).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&segs[1])
        .unwrap();
    f.set_len(second_len / 2).unwrap();
    drop(f);

    let (_, recovered) = Wal::open(&dir, WalSync::Never).unwrap();
    assert!(recovered.len() >= first_seg_records.len());
    assert!(recovered.len() < written.len());
    assert_eq!(&recovered[..], &written[..recovered.len()]);
    // Later segments are gone from disk (at most the torn one — possibly
    // truncated to its good prefix — and an emptied successor survive
    // alongside the first).
    let remaining: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    assert!(
        remaining.len() <= 3,
        "later segments deleted: {remaining:?}"
    );
    // Recovery is stable: a reopen replays the identical prefix.
    let (_, again) = Wal::open(&dir, WalSync::Never).unwrap();
    assert_eq!(recovered, again);
    std::fs::remove_dir_all(&dir).unwrap();
}
