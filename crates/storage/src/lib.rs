//! An embedded relational column store.
//!
//! SPADE stores all data, indexes and metadata as relational tables and
//! accesses them through an embedded column store — the paper uses
//! MonetDBLite via its C/SQL API (§3 "Relational Data Store"). This crate
//! is that substrate, built from scratch:
//!
//! * typed columns ([`mod@column`]) and tables with a catalog ([`table`],
//!   [`catalog`]),
//! * a scan/filter/project executor with scalar predicates ([`exec`]),
//! * a small SQL subset (`CREATE TABLE`, `INSERT`, `SELECT … WHERE`)
//!   ([`sql`]) so integration mirrors the paper's "load and store data
//!   using SQL",
//! * binary disk persistence with per-column pages and byte-accounted reads
//!   ([`persist`]) — the out-of-core grid index stores its cell blocks
//!   through this layer,
//! * geometry encoding ([`geom`]): geometries serialize to a compact
//!   WKB-like binary column plus bbox columns for coarse filtering.

pub mod catalog;
pub mod column;
pub mod cursor;
pub mod exec;
pub mod geom;
pub mod persist;
pub mod sql;
pub mod table;
pub mod value;
pub mod wal;

pub use catalog::Database;
pub use column::{Column, DataType};
pub use table::{Schema, Table};
pub use value::Value;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    UnknownTable(String),
    UnknownColumn(String),
    TypeMismatch {
        column: String,
        expected: DataType,
    },
    Arity {
        expected: usize,
        got: usize,
    },
    DuplicateTable(String),
    Parse(String),
    Io(String),
    Corrupt(String),
    /// The operation was cooperatively cancelled (explicit cancel or an
    /// expired deadline) before completing.
    Cancelled,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            StorageError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            StorageError::TypeMismatch { column, expected } => {
                write!(
                    f,
                    "type mismatch for column '{column}': expected {expected:?}"
                )
            }
            StorageError::Arity { expected, got } => {
                write!(f, "arity mismatch: expected {expected} values, got {got}")
            }
            StorageError::DuplicateTable(t) => write!(f, "table '{t}' already exists"),
            StorageError::Parse(m) => write!(f, "SQL parse error: {m}"),
            StorageError::Io(m) => write!(f, "I/O error: {m}"),
            StorageError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            StorageError::Cancelled => write!(f, "operation cancelled"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
