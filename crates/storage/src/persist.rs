//! Binary table persistence.
//!
//! Tables serialize to a compact column-wise binary format — one file per
//! table, each column a contiguous "page" (null bitmap + dense values), so
//! reading a block is a sequential scan like a column store's. Read and
//! write return byte counts: the engine charges them to the I/O component
//! of the paper's time breakdown (§6.2).

use crate::column::{Column, ColumnData, DataType};
use crate::cursor::{
    get_bytes, get_f64_le, get_i64_le, get_u32_le, get_u64_le, get_u8, put_f64_le, put_i64_le,
    put_slice, put_str, put_u16_le, put_u32_le, put_u64_le, put_u8,
};
use crate::table::{Schema, Table};
use crate::{Result, StorageError};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: u32 = 0x53505442; // "SPTB"
const VERSION: u16 = 1;

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bytes => 3,
    }
}

fn tag_dtype(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bytes,
        t => return Err(StorageError::Corrupt(format!("bad dtype tag {t}"))),
    })
}

/// Encode a table into a byte buffer.
pub fn encode_table(table: &Table) -> Vec<u8> {
    let mut buf = Vec::with_capacity(table.byte_size() + 256);
    put_u32_le(&mut buf, MAGIC);
    put_u16_le(&mut buf, VERSION);
    put_str(&mut buf, &table.name);
    put_u32_le(&mut buf, table.columns.len() as u32);
    put_u64_le(&mut buf, table.num_rows() as u64);
    for c in &table.columns {
        put_str(&mut buf, &c.name);
        put_u8(&mut buf, dtype_tag(c.data_type()));
    }
    for c in &table.columns {
        encode_column(&mut buf, c);
    }
    buf
}

fn encode_column(buf: &mut Vec<u8>, c: &Column) {
    // Null bitmap, packed.
    let nulls = c.nulls();
    let nbytes = nulls.len().div_ceil(8);
    let mut bitmap = vec![0u8; nbytes];
    for (i, &n) in nulls.iter().enumerate() {
        if n {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    put_slice(buf, &bitmap);
    match c.data() {
        ColumnData::Int(d) => {
            for v in d {
                put_i64_le(buf, *v);
            }
        }
        ColumnData::Float(d) => {
            for v in d {
                put_f64_le(buf, *v);
            }
        }
        ColumnData::Str(d) => {
            for s in d {
                put_u32_le(buf, s.len() as u32);
                put_slice(buf, s.as_bytes());
            }
        }
        ColumnData::Bytes(d) => {
            for b in d {
                put_u32_le(buf, b.len() as u32);
                put_slice(buf, b);
            }
        }
    }
}

/// Decode a table from bytes.
pub fn decode_table(mut buf: &[u8]) -> Result<Table> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if get_u32_le(&mut buf) != Some(MAGIC) {
        return Err(corrupt("bad magic"));
    }
    match crate::cursor::get_u16_le(&mut buf) {
        Some(VERSION) => {}
        Some(version) => return Err(StorageError::Corrupt(format!("bad version {version}"))),
        None => return Err(corrupt("truncated header")),
    }
    let name = get_str(&mut buf)?;
    let ncols = get_u32_le(&mut buf).ok_or_else(|| corrupt("truncated header"))? as usize;
    let nrows = get_u64_le(&mut buf).ok_or_else(|| corrupt("truncated header"))? as usize;
    if ncols > buf.len() {
        return Err(corrupt("column count exceeds buffer"));
    }
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = get_str(&mut buf)?;
        let tag = get_u8(&mut buf).ok_or_else(|| corrupt("truncated column header"))?;
        let dt = tag_dtype(tag)?;
        fields.push((cname, dt));
    }
    // A corrupt header can claim billions of rows; every column decode
    // below pre-allocates `nrows` slots, so reject row counts whose
    // *minimum* encoding (null bitmap + the narrowest per-row payload)
    // cannot fit the remaining bytes before allocating anything.
    let min_bytes: u64 = fields
        .iter()
        .map(|(_, dt)| {
            let per_row: u64 = match dt {
                DataType::Int | DataType::Float => 8,
                DataType::Str | DataType::Bytes => 4, // length prefix
            };
            (nrows as u64)
                .div_ceil(8)
                .saturating_add((nrows as u64).saturating_mul(per_row))
        })
        .fold(0u64, u64::saturating_add);
    if min_bytes > buf.len() as u64 {
        return Err(corrupt("row count exceeds buffer"));
    }
    let schema = Schema::new(fields.clone());
    let mut columns = Vec::with_capacity(ncols);
    for (cname, dt) in fields {
        columns.push(decode_column(&mut buf, cname, dt, nrows)?);
    }
    Ok(Table {
        name,
        schema,
        columns,
    })
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    let len = get_u32_le(buf).ok_or_else(|| StorageError::Corrupt("truncated string".into()))?;
    let body = get_bytes(buf, len as usize)
        .ok_or_else(|| StorageError::Corrupt("truncated string body".into()))?;
    String::from_utf8(body.to_vec()).map_err(|_| StorageError::Corrupt("invalid utf8".into()))
}

fn decode_column(buf: &mut &[u8], name: String, dt: DataType, nrows: usize) -> Result<Column> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    let nbytes = nrows.div_ceil(8);
    let bitmap = get_bytes(buf, nbytes).ok_or_else(|| corrupt("truncated null bitmap"))?;
    let mut nulls = Vec::with_capacity(nrows);
    for i in 0..nrows {
        nulls.push(bitmap[i / 8] & (1 << (i % 8)) != 0);
    }
    let data = match dt {
        DataType::Int => {
            let mut d = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                d.push(get_i64_le(buf).ok_or_else(|| corrupt("truncated int column"))?);
            }
            ColumnData::Int(d)
        }
        DataType::Float => {
            let mut d = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                d.push(get_f64_le(buf).ok_or_else(|| corrupt("truncated float column"))?);
            }
            ColumnData::Float(d)
        }
        DataType::Str => {
            let mut d = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                d.push(get_str(buf)?);
            }
            ColumnData::Str(d)
        }
        DataType::Bytes => {
            let mut d = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let len = get_u32_le(buf).ok_or_else(|| corrupt("truncated blob length"))?;
                let body =
                    get_bytes(buf, len as usize).ok_or_else(|| corrupt("truncated blob body"))?;
                d.push(body.to_vec());
            }
            ColumnData::Bytes(d)
        }
    };
    Ok(Column::from_parts(name, data, nulls))
}

/// Write `bytes` to `path` and fsync the file before returning — for
/// files that a crash-recovery protocol treats as durable once written
/// (WAL-adjacent blocks and manifests). The containing directory still
/// needs a [`sync_dir`] before the *name* is durable.
pub fn write_durable(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}

/// fsync a directory so recently created/renamed/removed entries in it
/// survive a crash. On platforms where directories cannot be opened for
/// sync this degrades to a no-op error swallow — the worst case is the
/// pre-fsync behavior.
pub fn sync_dir(dir: &Path) -> Result<()> {
    if let Ok(d) = std::fs::File::open(dir) {
        d.sync_all()?;
    }
    Ok(())
}

/// Write a table file; returns bytes written.
pub fn write_table(path: &Path, table: &Table) -> Result<u64> {
    let bytes = encode_table(table);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(bytes.len() as u64)
}

/// Read a table file; returns the table and bytes read.
pub fn read_table(path: &Path) -> Result<(Table, u64)> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    let t = decode_table(&buf)?;
    Ok((t, buf.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample() -> Table {
        let mut t = Table::new(
            "sample",
            Schema::new(vec![
                ("id".into(), DataType::Int),
                ("w".into(), DataType::Float),
                ("s".into(), DataType::Str),
                ("b".into(), DataType::Bytes),
            ]),
        );
        t.insert(vec![1.into(), 0.5.into(), "a".into(), vec![1u8, 2].into()])
            .unwrap();
        t.insert(vec![2.into(), Value::Null, Value::Null, Value::Null])
            .unwrap();
        t.insert(vec![
            (-3).into(),
            (-1.25).into(),
            "xyz".into(),
            Vec::new().into(),
        ])
        .unwrap();
        t
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample();
        let bytes = encode_table(&t);
        let back = decode_table(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = Table::new("empty", Schema::new(vec![("id".into(), DataType::Int)]));
        let back = decode_table(&encode_table(&t)).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.name, "empty");
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(decode_table(&[]).is_err());
        assert!(decode_table(&[0xde, 0xad, 0xbe, 0xef, 0, 0]).is_err());
        let mut good = encode_table(&sample());
        good.truncate(good.len() / 2);
        assert!(decode_table(&good).is_err());
    }

    /// Regression for the pre-allocation guard: a header claiming a huge
    /// row count must be rejected from the byte budget alone, before any
    /// `Vec::with_capacity(nrows)` tries to reserve terabytes.
    #[test]
    fn absurd_row_count_rejected_before_allocation() {
        let t = sample();
        let mut bytes = encode_table(&t);
        // Header layout: magic u32, version u16, name (u32 len + body),
        // ncols u32, nrows u64.
        let nrows_at = 4 + 2 + (4 + t.name.len()) + 4;
        for claimed in [u64::MAX, 1u64 << 60, (t.num_rows() as u64) + 1] {
            bytes[nrows_at..nrows_at + 8].copy_from_slice(&claimed.to_le_bytes());
            let err = decode_table(&bytes).unwrap_err();
            assert!(
                matches!(err, StorageError::Corrupt(_)),
                "claimed {claimed} rows: {err:?}"
            );
        }
        // Restoring the real count decodes again.
        bytes[nrows_at..nrows_at + 8].copy_from_slice(&(t.num_rows() as u64).to_le_bytes());
        assert_eq!(decode_table(&bytes).unwrap(), t);
    }

    /// One-column roundtrip for each supported column type, with nulls and
    /// boundary values.
    #[test]
    fn per_type_roundtrip() {
        let cases: Vec<(DataType, Vec<Value>)> = vec![
            (
                DataType::Int,
                vec![i64::MIN.into(), 0.into(), i64::MAX.into(), Value::Null],
            ),
            (
                DataType::Float,
                vec![f64::MIN.into(), (-0.0).into(), f64::MAX.into(), Value::Null],
            ),
            (
                DataType::Str,
                vec!["".into(), "αβγ — utf8".into(), Value::Null, "x".into()],
            ),
            (
                DataType::Bytes,
                vec![
                    Vec::new().into(),
                    vec![0u8, 255, 42].into(),
                    Value::Null,
                    vec![7u8; 100].into(),
                ],
            ),
        ];
        for (dt, values) in cases {
            let mut t = Table::new("one", Schema::new(vec![("c".into(), dt)]));
            for v in values {
                t.insert(vec![v]).unwrap();
            }
            let back = decode_table(&encode_table(&t)).unwrap();
            assert_eq!(back, t, "{dt:?} roundtrip");
        }
    }

    /// Every strict prefix of a valid encoding must decode to `Err` —
    /// never panic, never return a partial table.
    #[test]
    fn every_truncation_errors_without_panic() {
        let bytes = encode_table(&sample());
        for len in 0..bytes.len() {
            assert!(
                decode_table(&bytes[..len]).is_err(),
                "prefix of {len}/{} bytes decoded",
                bytes.len()
            );
        }
    }

    /// Flipping any single byte must not panic (decoding may legitimately
    /// succeed with different data when the flip hits a value byte).
    #[test]
    fn flipped_bytes_never_panic() {
        let bytes = encode_table(&sample());
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xff;
            let _ = decode_table(&mutated);
        }
    }

    #[test]
    fn file_roundtrip_reports_bytes() {
        let dir = std::env::temp_dir().join(format!("spade-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tbl");
        let t = sample();
        let written = write_table(&path, &t).unwrap();
        let (back, read) = read_table(&path).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, t);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wide_null_bitmap() {
        // More than 8 rows exercises multi-byte bitmaps.
        let mut t = Table::new("n", Schema::new(vec![("v".into(), DataType::Int)]));
        for i in 0..20 {
            let v = if i % 3 == 0 {
                Value::Null
            } else {
                Value::Int(i)
            };
            t.insert(vec![v]).unwrap();
        }
        let back = decode_table(&encode_table(&t)).unwrap();
        for i in 0..20 {
            assert_eq!(back.columns[0].is_null(i as usize), i % 3 == 0, "row {i}");
        }
    }
}
