//! Binary table persistence.
//!
//! Tables serialize to a compact column-wise binary format — one file per
//! table, each column a contiguous "page" (null bitmap + dense values), so
//! reading a block is a sequential scan like a column store's. Read and
//! write return byte counts: the engine charges them to the I/O component
//! of the paper's time breakdown (§6.2).

use crate::column::{Column, ColumnData, DataType};
use crate::table::{Schema, Table};
use crate::{Result, StorageError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: u32 = 0x53505442; // "SPTB"
const VERSION: u16 = 1;

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bytes => 3,
    }
}

fn tag_dtype(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bytes,
        t => return Err(StorageError::Corrupt(format!("bad dtype tag {t}"))),
    })
}

/// Encode a table into a byte buffer.
pub fn encode_table(table: &Table) -> Bytes {
    let mut buf = BytesMut::with_capacity(table.byte_size() + 256);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    put_str(&mut buf, &table.name);
    buf.put_u32_le(table.columns.len() as u32);
    buf.put_u64_le(table.num_rows() as u64);
    for c in &table.columns {
        put_str(&mut buf, &c.name);
        buf.put_u8(dtype_tag(c.data_type()));
    }
    for c in &table.columns {
        encode_column(&mut buf, c);
    }
    buf.freeze()
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn encode_column(buf: &mut BytesMut, c: &Column) {
    // Null bitmap, packed.
    let nulls = c.nulls();
    let nbytes = nulls.len().div_ceil(8);
    let mut bitmap = vec![0u8; nbytes];
    for (i, &n) in nulls.iter().enumerate() {
        if n {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    buf.put_slice(&bitmap);
    match c.data() {
        ColumnData::Int(d) => {
            for v in d {
                buf.put_i64_le(*v);
            }
        }
        ColumnData::Float(d) => {
            for v in d {
                buf.put_f64_le(*v);
            }
        }
        ColumnData::Str(d) => {
            for s in d {
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
        ColumnData::Bytes(d) => {
            for b in d {
                buf.put_u32_le(b.len() as u32);
                buf.put_slice(b);
            }
        }
    }
}

/// Decode a table from bytes.
pub fn decode_table(mut buf: &[u8]) -> Result<Table> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if buf.remaining() < 6 || buf.get_u32_le() != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(StorageError::Corrupt(format!("bad version {version}")));
    }
    let name = get_str(&mut buf)?;
    if buf.remaining() < 12 {
        return Err(corrupt("truncated header"));
    }
    let ncols = buf.get_u32_le() as usize;
    let nrows = buf.get_u64_le() as usize;
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = get_str(&mut buf)?;
        if buf.remaining() < 1 {
            return Err(corrupt("truncated column header"));
        }
        let dt = tag_dtype(buf.get_u8())?;
        fields.push((cname, dt));
    }
    let schema = Schema::new(fields.clone());
    let mut columns = Vec::with_capacity(ncols);
    for (cname, dt) in fields {
        columns.push(decode_column(&mut buf, cname, dt, nrows)?);
    }
    Ok(Table {
        name,
        schema,
        columns,
    })
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(StorageError::Corrupt("truncated string".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(StorageError::Corrupt("truncated string body".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|_| StorageError::Corrupt("invalid utf8".into()))?;
    buf.advance(len);
    Ok(s)
}

fn decode_column(buf: &mut &[u8], name: String, dt: DataType, nrows: usize) -> Result<Column> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    let nbytes = nrows.div_ceil(8);
    if buf.remaining() < nbytes {
        return Err(corrupt("truncated null bitmap"));
    }
    let mut nulls = Vec::with_capacity(nrows);
    for i in 0..nrows {
        nulls.push(buf[i / 8] & (1 << (i % 8)) != 0);
    }
    buf.advance(nbytes);
    let data = match dt {
        DataType::Int => {
            if buf.remaining() < nrows * 8 {
                return Err(corrupt("truncated int column"));
            }
            let mut d = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                d.push(buf.get_i64_le());
            }
            ColumnData::Int(d)
        }
        DataType::Float => {
            if buf.remaining() < nrows * 8 {
                return Err(corrupt("truncated float column"));
            }
            let mut d = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                d.push(buf.get_f64_le());
            }
            ColumnData::Float(d)
        }
        DataType::Str => {
            let mut d = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                d.push(get_str(buf)?);
            }
            ColumnData::Str(d)
        }
        DataType::Bytes => {
            let mut d = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                if buf.remaining() < 4 {
                    return Err(corrupt("truncated blob length"));
                }
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(corrupt("truncated blob body"));
                }
                d.push(buf[..len].to_vec());
                buf.advance(len);
            }
            ColumnData::Bytes(d)
        }
    };
    Ok(Column::from_parts(name, data, nulls))
}

/// Write a table file; returns bytes written.
pub fn write_table(path: &Path, table: &Table) -> Result<u64> {
    let bytes = encode_table(table);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(bytes.len() as u64)
}

/// Read a table file; returns the table and bytes read.
pub fn read_table(path: &Path) -> Result<(Table, u64)> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    let t = decode_table(&buf)?;
    Ok((t, buf.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample() -> Table {
        let mut t = Table::new(
            "sample",
            Schema::new(vec![
                ("id".into(), DataType::Int),
                ("w".into(), DataType::Float),
                ("s".into(), DataType::Str),
                ("b".into(), DataType::Bytes),
            ]),
        );
        t.insert(vec![1.into(), 0.5.into(), "a".into(), vec![1u8, 2].into()])
            .unwrap();
        t.insert(vec![2.into(), Value::Null, Value::Null, Value::Null])
            .unwrap();
        t.insert(vec![
            (-3).into(),
            (-1.25).into(),
            "xyz".into(),
            Vec::new().into(),
        ])
        .unwrap();
        t
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample();
        let bytes = encode_table(&t);
        let back = decode_table(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = Table::new(
            "empty",
            Schema::new(vec![("id".into(), DataType::Int)]),
        );
        let back = decode_table(&encode_table(&t)).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.name, "empty");
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(decode_table(&[]).is_err());
        assert!(decode_table(&[0xde, 0xad, 0xbe, 0xef, 0, 0]).is_err());
        let mut good = encode_table(&sample()).to_vec();
        good.truncate(good.len() / 2);
        assert!(decode_table(&good).is_err());
    }

    #[test]
    fn file_roundtrip_reports_bytes() {
        let dir = std::env::temp_dir().join(format!("spade-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tbl");
        let t = sample();
        let written = write_table(&path, &t).unwrap();
        let (back, read) = read_table(&path).unwrap();
        assert_eq!(read, written);
        assert_eq!(back, t);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wide_null_bitmap() {
        // More than 8 rows exercises multi-byte bitmaps.
        let mut t = Table::new("n", Schema::new(vec![("v".into(), DataType::Int)]));
        for i in 0..20 {
            let v = if i % 3 == 0 { Value::Null } else { Value::Int(i) };
            t.insert(vec![v]).unwrap();
        }
        let back = decode_table(&encode_table(&t)).unwrap();
        for i in 0..20 {
            assert_eq!(back.columns[0].is_null(i as usize), i % 3 == 0, "row {i}");
        }
    }
}
