//! Tables: a schema plus one column per field.

use crate::column::{Column, DataType};
use crate::value::Value;
use crate::{Result, StorageError};

/// A table schema: ordered `(name, type)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    pub fields: Vec<(String, DataType)>,
}

impl Schema {
    pub fn new(fields: Vec<(String, DataType)>) -> Self {
        Schema { fields }
    }

    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|(n, _)| n.eq_ignore_ascii_case(name))
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// A column-oriented table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    pub name: String,
    pub schema: Schema,
    pub columns: Vec<Column>,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields
            .iter()
            .map(|(n, t)| Column::new(n.clone(), *t))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
        }
    }

    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Validate a row's arity and value types against the schema without
    /// inserting it. Callers with side effects ordered around the insert
    /// (e.g. the SQL observer's WAL append) use this to reject a doomed
    /// row *before* any of those effects happen.
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(StorageError::Arity {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (col, v) in self.columns.iter().zip(row) {
            if let Some(t) = v.data_type() {
                let ok = t == col.data_type()
                    || (col.data_type() == DataType::Float && t == DataType::Int);
                if !ok {
                    return Err(StorageError::TypeMismatch {
                        column: col.name.clone(),
                        expected: col.data_type(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Append a row; all columns advance together. Validates first so a
    /// failed insert leaves the table unchanged.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<()> {
        self.check_row(&row)?;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v)?;
        }
        Ok(())
    }

    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .field_index(name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))?;
        Ok(&self.columns[idx])
    }

    /// Materialize one row (for small results and tests).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Checked row materialization: an out-of-bounds index (or a column
    /// shorter than its siblings, as a corrupt block can produce) is a
    /// [`StorageError::Corrupt`] instead of a panic.
    pub fn try_row(&self, i: usize) -> Result<Vec<Value>> {
        self.columns.iter().map(|c| c.try_get(i)).collect()
    }

    /// Total byte footprint across columns.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id".into(), DataType::Int),
            ("name".into(), DataType::Str),
            ("score".into(), DataType::Float),
        ])
    }

    #[test]
    fn insert_and_read() {
        let mut t = Table::new("t", schema());
        t.insert(vec![1.into(), "a".into(), 0.5.into()]).unwrap();
        t.insert(vec![2.into(), "b".into(), Value::Null]).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0), vec![1.into(), "a".into(), 0.5.into()]);
        assert_eq!(t.row(1)[2], Value::Null);
        assert_eq!(t.column("name").unwrap().get_str(1), Some("b"));
    }

    #[test]
    fn schema_lookup_is_case_insensitive() {
        let t = Table::new("t", schema());
        assert!(t.column("ID").is_ok());
        assert!(matches!(
            t.column("missing"),
            Err(StorageError::UnknownColumn(_))
        ));
    }

    #[test]
    fn arity_and_type_checks_are_atomic() {
        let mut t = Table::new("t", schema());
        assert!(matches!(
            t.insert(vec![1.into()]),
            Err(StorageError::Arity { .. })
        ));
        // A type error in the last column must not partially insert.
        let err = t.insert(vec![1.into(), "a".into(), "not a float".into()]);
        assert!(matches!(err, Err(StorageError::TypeMismatch { .. })));
        assert_eq!(t.num_rows(), 0);
        for c in &t.columns {
            assert_eq!(c.len(), 0);
        }
    }

    /// `try_row` propagates on an out-of-bounds index and on a column
    /// shorter than its siblings (the shape a corrupt block produces),
    /// where `row` would panic mid-query.
    #[test]
    fn try_row_checks_bounds_and_ragged_columns() {
        let mut t = Table::new("t", schema());
        t.insert(vec![1.into(), "a".into(), 0.5.into()]).unwrap();
        assert_eq!(t.try_row(0).unwrap(), t.row(0));
        assert!(matches!(t.try_row(1), Err(StorageError::Corrupt(_))));

        // Ragged: grow only the first column, so num_rows() advances past
        // the length of the others.
        t.columns[0].push(2.into()).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert!(matches!(t.try_row(1), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut t = Table::new("t", schema());
        t.insert(vec![1.into(), "a".into(), 3.into()]).unwrap();
        assert_eq!(t.row(0)[2], Value::Float(3.0));
    }

    #[test]
    fn empty_table() {
        let t = Table::new("t", schema());
        assert_eq!(t.num_rows(), 0);
        assert!(t.byte_size() < 64);
    }
}
