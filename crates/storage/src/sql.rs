//! A small SQL subset.
//!
//! SPADE's integration contract with the relational store is "load and
//! store data using SQL" (§3). The subset implemented here covers that
//! surface:
//!
//! ```sql
//! CREATE TABLE t (id INT, name TEXT, score FLOAT, payload BLOB);
//! INSERT INTO t VALUES (1, 'a', 0.5, NULL);
//! SELECT id, name FROM t WHERE score >= 0.5 AND name <> 'x';
//! SELECT COUNT(*), AVG(score) FROM t WHERE name IS NOT NULL;
//! SELECT name FROM t ORDER BY score DESC LIMIT 10;
//! EXPLAIN ANALYZE SELECT COUNT(*) FROM t;
//! DROP TABLE t;
//! ```
//!
//! `EXPLAIN [ANALYZE] SELECT ...` returns the plan as a one-column table
//! of indented operator lines (outermost first). Plain `EXPLAIN` only
//! plans; `ANALYZE` also executes the statement and appends actual row
//! count and wall time.

use crate::catalog::Database;
use crate::column::DataType;
use crate::exec::{scan, CmpOp, Expr};
use crate::table::{Schema, Table};
use crate::value::Value;
use crate::{Result, StorageError};

/// Result of executing a statement.
#[derive(Debug, PartialEq)]
pub enum SqlResult {
    /// DDL / DML statement: number of affected rows.
    Affected(usize),
    /// A query result table.
    Rows(Table),
}

/// Hook into DML execution, letting an embedding engine mirror relational
/// writes into other subsystems. SPADE's query service routes SQL `INSERT`
/// into registered spatial datasets through its write-ahead log with this,
/// so SQL and typed-request writes share one durability path.
pub trait SqlObserver {
    /// Called once per `INSERT` statement, with the parsed rows, *before*
    /// they become visible in the table — the observer's side effects
    /// (e.g. a WAL append) happen at the durability point. An error aborts
    /// the statement; no row is inserted. Rows are validated against the
    /// table schema (arity and types) before this fires, so the relational
    /// insert that follows a successful callback cannot fail — the two
    /// representations commit or abort together.
    fn before_insert(&mut self, table: &str, rows: &[Vec<Value>]) -> Result<()>;
}

/// Parse and execute one SQL statement against a database.
pub fn execute(db: &Database, sql: &str) -> Result<SqlResult> {
    execute_observed(db, sql, None)
}

/// [`execute`] with an optional [`SqlObserver`] receiving DML callbacks.
pub fn execute_observed(
    db: &Database,
    sql: &str,
    observer: Option<&mut dyn SqlObserver>,
) -> Result<SqlResult> {
    let mut toks = Lexer::new(sql).tokenize()?;
    toks.retain(|t| !matches!(t, Tok::Semi));
    let mut p = Parser { toks, pos: 0 };
    match p.peek_keyword().as_deref() {
        Some("CREATE") => p.create(db),
        Some("DROP") => p.drop(db),
        Some("INSERT") => p.insert(db, observer),
        Some("SELECT") => p.select(db),
        Some("EXPLAIN") => p.explain(db),
        other => Err(StorageError::Parse(format!(
            "expected statement, found {other:?}"
        ))),
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    Int(i64),
    Punct(char),
    Op(String),
    Semi,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(s: &'a str) -> Self {
        Lexer {
            src: s.as_bytes(),
            pos: 0,
        }
    }

    fn tokenize(&mut self) -> Result<Vec<Tok>> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b';' => {
                    out.push(Tok::Semi);
                    self.pos += 1;
                }
                b'(' | b')' | b',' | b'*' => {
                    out.push(Tok::Punct(c as char));
                    self.pos += 1;
                }
                b'\'' => out.push(self.string()?),
                b'<' | b'>' | b'=' | b'!' => out.push(self.operator()),
                c if c.is_ascii_digit() || c == b'-' || c == b'+' || c == b'.' => {
                    out.push(self.number()?)
                }
                c if c.is_ascii_alphabetic() || c == b'_' => out.push(self.ident()),
                c => {
                    return Err(StorageError::Parse(format!(
                        "unexpected character '{}'",
                        c as char
                    )))
                }
            }
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<Tok> {
        self.pos += 1; // opening quote
        let mut s = String::new();
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            self.pos += 1;
            if c == b'\'' {
                // Doubled quote is an escaped quote.
                if self.src.get(self.pos) == Some(&b'\'') {
                    s.push('\'');
                    self.pos += 1;
                } else {
                    return Ok(Tok::Str(s));
                }
            } else {
                s.push(c as char);
            }
        }
        Err(StorageError::Parse("unterminated string literal".into()))
    }

    fn operator(&mut self) -> Tok {
        let c = self.src[self.pos] as char;
        self.pos += 1;
        let next = self.src.get(self.pos).copied();
        let two = match (c, next) {
            ('<', Some(b'=')) => Some("<="),
            ('>', Some(b'=')) => Some(">="),
            ('<', Some(b'>')) => Some("<>"),
            ('!', Some(b'=')) => Some("!="),
            _ => None,
        };
        if let Some(op) = two {
            self.pos += 1;
            Tok::Op(op.to_string())
        } else {
            Tok::Op(c.to_string())
        }
    }

    fn number(&mut self) -> Result<Tok> {
        let start = self.pos;
        if matches!(self.src[self.pos], b'-' | b'+') {
            self.pos += 1;
        }
        let mut is_float = false;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.src.get(self.pos), Some(b'-') | Some(b'+')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| StorageError::Parse("bad number".into()))?;
        if is_float {
            text.parse()
                .map(Tok::Num)
                .map_err(|_| StorageError::Parse(format!("bad number '{text}'")))
        } else {
            text.parse()
                .map(Tok::Int)
                .map_err(|_| StorageError::Parse(format!("bad number '{text}'")))
        }
    }

    fn ident(&mut self) -> Tok {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        Tok::Ident(String::from_utf8_lossy(&self.src[start..self.pos]).to_string())
    }
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_keyword(&self) -> Option<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| StorageError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next()? {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            t => Err(StorageError::Parse(format!("expected {kw}, found {t:?}"))),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<()> {
        match self.next()? {
            Tok::Punct(p) if p == c => Ok(()),
            t => Err(StorageError::Parse(format!("expected '{c}', found {t:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            t => Err(StorageError::Parse(format!(
                "expected identifier, found {t:?}"
            ))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn create(&mut self, db: &Database) -> Result<SqlResult> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("TABLE")?;
        let name = self.ident()?;
        self.expect_punct('(')?;
        let mut fields = Vec::new();
        loop {
            let col = self.ident()?;
            let ty_name = self.ident()?;
            let ty = DataType::parse(&ty_name)
                .ok_or_else(|| StorageError::Parse(format!("unknown type '{ty_name}'")))?;
            fields.push((col, ty));
            match self.next()? {
                Tok::Punct(',') => continue,
                Tok::Punct(')') => break,
                t => {
                    return Err(StorageError::Parse(format!(
                        "expected ',' or ')', found {t:?}"
                    )))
                }
            }
        }
        if !self.at_end() {
            return Err(StorageError::Parse("trailing tokens after CREATE".into()));
        }
        db.create_table(&name, Schema::new(fields))?;
        Ok(SqlResult::Affected(0))
    }

    fn drop(&mut self, db: &Database) -> Result<SqlResult> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("TABLE")?;
        let name = self.ident()?;
        db.drop_table(&name)?;
        Ok(SqlResult::Affected(0))
    }

    fn insert(
        &mut self,
        db: &Database,
        observer: Option<&mut dyn SqlObserver>,
    ) -> Result<SqlResult> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let name = self.ident()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_punct('(')?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                match self.next()? {
                    Tok::Punct(',') => continue,
                    Tok::Punct(')') => break,
                    t => {
                        return Err(StorageError::Parse(format!(
                            "expected ',' or ')', found {t:?}"
                        )))
                    }
                }
            }
            rows.push(row);
            if matches!(self.peek(), Some(Tok::Punct(','))) {
                self.pos += 1;
                continue;
            }
            break;
        }
        let n = rows.len();
        // Validate every row against the schema (and that the table exists)
        // before the observer fires: the observer's side effects (a WAL
        // append) are the durability point, so nothing after it may fail.
        db.with_table(&name, |t| -> Result<()> {
            rows.iter().try_for_each(|row| t.check_row(row))
        })??;
        if let Some(obs) = observer {
            obs.before_insert(&name, &rows)?;
        }
        db.with_table_mut(&name, |t| -> Result<()> {
            for row in rows {
                t.insert(row)?;
            }
            Ok(())
        })??;
        Ok(SqlResult::Affected(n))
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next()? {
            Tok::Int(v) => Ok(Value::Int(v)),
            Tok::Num(v) => Ok(Value::Float(v)),
            Tok::Str(s) => Ok(Value::Str(s)),
            Tok::Ident(s) if s.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            t => Err(StorageError::Parse(format!(
                "expected literal, found {t:?}"
            ))),
        }
    }

    fn select(&mut self, db: &Database) -> Result<SqlResult> {
        let stmt = self.parse_select()?;
        run_select(db, &stmt)
    }

    fn explain(&mut self, db: &Database) -> Result<SqlResult> {
        self.expect_keyword("EXPLAIN")?;
        let analyze = if self.peek_keyword().as_deref() == Some("ANALYZE") {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.peek_keyword().as_deref() != Some("SELECT") {
            return Err(StorageError::Parse(
                "EXPLAIN supports SELECT statements only".into(),
            ));
        }
        let stmt = self.parse_select()?;
        let mut lines = plan_lines(&stmt);
        if analyze {
            let t0 = std::time::Instant::now();
            let result = run_select(db, &stmt)?;
            let elapsed = t0.elapsed();
            let n = match &result {
                SqlResult::Rows(t) => t.num_rows(),
                SqlResult::Affected(n) => *n,
            };
            lines.push(format!("actual rows: {n}"));
            lines.push(format!("actual time: {:.6}s", elapsed.as_secs_f64()));
        }
        let mut out = Table::new("plan", Schema::new(vec![("plan".into(), DataType::Str)]));
        for line in lines {
            out.insert(vec![Value::Str(line)])?;
        }
        Ok(SqlResult::Rows(out))
    }

    /// Parse a full SELECT statement (the `SELECT` keyword included) into
    /// its clauses without executing it.
    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let mut cols = Vec::new();
        let mut aggs: Vec<(Agg, Option<String>)> = Vec::new();
        if matches!(self.peek(), Some(Tok::Punct('*'))) {
            self.pos += 1;
        } else {
            loop {
                let ident = self.ident()?;
                if let Some(agg) = Agg::parse(&ident) {
                    if matches!(self.peek(), Some(Tok::Punct('('))) {
                        self.pos += 1;
                        let arg = match self.peek() {
                            Some(Tok::Punct('*')) => {
                                self.pos += 1;
                                None
                            }
                            _ => Some(self.ident()?),
                        };
                        self.expect_punct(')')?;
                        aggs.push((agg, arg));
                    } else {
                        cols.push(ident);
                    }
                } else {
                    cols.push(ident);
                }
                if matches!(self.peek(), Some(Tok::Punct(','))) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        if !aggs.is_empty() && !cols.is_empty() {
            return Err(StorageError::Parse(
                "mixing aggregates and plain columns needs GROUP BY, which is unsupported".into(),
            ));
        }
        self.expect_keyword("FROM")?;
        let name = self.ident()?;
        let filter = if self.peek_keyword().as_deref() == Some("WHERE") {
            self.pos += 1;
            Some(self.expr()?)
        } else {
            None
        };
        let order = if self.peek_keyword().as_deref() == Some("ORDER") {
            self.pos += 1;
            self.expect_keyword("BY")?;
            let col = self.ident()?;
            let desc = match self.peek_keyword().as_deref() {
                Some("DESC") => {
                    self.pos += 1;
                    true
                }
                Some("ASC") => {
                    self.pos += 1;
                    false
                }
                _ => false,
            };
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.peek_keyword().as_deref() == Some("LIMIT") {
            self.pos += 1;
            match self.next()? {
                Tok::Int(n) if n >= 0 => Some(n as usize),
                t => {
                    return Err(StorageError::Parse(format!(
                        "expected LIMIT count, found {t:?}"
                    )))
                }
            }
        } else {
            None
        };
        if !self.at_end() {
            return Err(StorageError::Parse("trailing tokens after SELECT".into()));
        }
        Ok(SelectStmt {
            cols,
            aggs,
            table: name,
            filter,
            order,
            limit,
        })
    }

    // (statement execution, aggregate evaluation and row utilities live
    // below the parser)

    // expr := term (OR term)*
    fn expr(&mut self) -> Result<Expr> {
        let mut e = self.term()?;
        while self.peek_keyword().as_deref() == Some("OR") {
            self.pos += 1;
            e = e.or(self.term()?);
        }
        Ok(e)
    }

    // term := factor (AND factor)*
    fn term(&mut self) -> Result<Expr> {
        let mut e = self.factor()?;
        while self.peek_keyword().as_deref() == Some("AND") {
            self.pos += 1;
            e = e.and(self.factor()?);
        }
        Ok(e)
    }

    // factor := NOT factor | '(' expr ')' | operand [cmp operand | IS [NOT] NULL]
    fn factor(&mut self) -> Result<Expr> {
        if self.peek_keyword().as_deref() == Some("NOT") {
            self.pos += 1;
            return Ok(Expr::Not(Box::new(self.factor()?)));
        }
        if matches!(self.peek(), Some(Tok::Punct('('))) {
            self.pos += 1;
            let e = self.expr()?;
            self.expect_punct(')')?;
            return Ok(e);
        }
        let lhs = self.operand()?;
        if self.peek_keyword().as_deref() == Some("IS") {
            self.pos += 1;
            let negate = if self.peek_keyword().as_deref() == Some("NOT") {
                self.pos += 1;
                true
            } else {
                false
            };
            self.expect_keyword("NULL")?;
            let e = Expr::IsNull(Box::new(lhs));
            return Ok(if negate { Expr::Not(Box::new(e)) } else { e });
        }
        let op = match self.next()? {
            Tok::Op(op) => match op.as_str() {
                "=" => CmpOp::Eq,
                "<>" | "!=" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                o => return Err(StorageError::Parse(format!("unknown operator '{o}'"))),
            },
            t => {
                return Err(StorageError::Parse(format!(
                    "expected operator, found {t:?}"
                )))
            }
        };
        let rhs = self.operand()?;
        Ok(Expr::cmp(op, lhs, rhs))
    }

    fn operand(&mut self) -> Result<Expr> {
        match self.next()? {
            Tok::Ident(s) if s.eq_ignore_ascii_case("NULL") => Ok(Expr::Literal(Value::Null)),
            Tok::Ident(s) => Ok(Expr::Column(s)),
            Tok::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            Tok::Num(v) => Ok(Expr::Literal(Value::Float(v))),
            Tok::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            t => Err(StorageError::Parse(format!(
                "expected operand, found {t:?}"
            ))),
        }
    }
}

/// A parsed SELECT statement: the clauses, unexecuted.
#[derive(Debug, Clone)]
struct SelectStmt {
    cols: Vec<String>,
    aggs: Vec<(Agg, Option<String>)>,
    table: String,
    filter: Option<Expr>,
    order: Option<(String, bool)>,
    limit: Option<usize>,
}

/// Execute a parsed SELECT against the database.
fn run_select(db: &Database, stmt: &SelectStmt) -> Result<SqlResult> {
    // Scan all columns first when ordering needs one outside the
    // projection; project afterwards.
    let scan_cols: Vec<String> = if stmt.order.is_some() {
        Vec::new()
    } else {
        stmt.cols.clone()
    };
    let mut out = db.with_table(&stmt.table, |t| scan(t, &scan_cols, stmt.filter.as_ref()))??;

    if !stmt.aggs.is_empty() {
        return aggregate(&out, &stmt.aggs);
    }

    if let Some((col, desc)) = &stmt.order {
        out = order_rows(&out, col, *desc)?;
        if !stmt.cols.is_empty() {
            out = scan(&out, &stmt.cols, None)?;
        }
    }
    if let Some(n) = stmt.limit {
        out = truncate_rows(&out, n)?;
    }
    Ok(SqlResult::Rows(out))
}

/// Render a parsed SELECT as indented plan operator lines, outermost
/// operator first (mirroring the execution order of [`run_select`] read
/// bottom-up).
fn plan_lines(stmt: &SelectStmt) -> Vec<String> {
    let mut ops: Vec<String> = Vec::new();
    if let Some(n) = stmt.limit {
        ops.push(format!("Limit {n}"));
    }
    if let Some((col, desc)) = &stmt.order {
        ops.push(format!("Sort {col} {}", if *desc { "DESC" } else { "ASC" }));
    }
    if !stmt.aggs.is_empty() {
        let labels: Vec<String> = stmt
            .aggs
            .iter()
            .map(|(a, arg)| match arg {
                Some(c) => format!("{}({c})", a.name()),
                None => format!("{}(*)", a.name()),
            })
            .collect();
        ops.push(format!("Aggregate {}", labels.join(", ")));
    } else if !stmt.cols.is_empty() {
        ops.push(format!("Project [{}]", stmt.cols.join(", ")));
    }
    if let Some(f) = &stmt.filter {
        ops.push(format!("Filter {f:?}"));
    }
    ops.push(format!("Scan {}", stmt.table));
    ops.iter()
        .enumerate()
        .map(|(i, op)| format!("{}{op}", "  ".repeat(i)))
        .collect()
}

/// Aggregate functions of the SELECT subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Agg {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl Agg {
    fn parse(s: &str) -> Option<Agg> {
        match s.to_ascii_uppercase().as_str() {
            "COUNT" => Some(Agg::Count),
            "SUM" => Some(Agg::Sum),
            "MIN" => Some(Agg::Min),
            "MAX" => Some(Agg::Max),
            "AVG" => Some(Agg::Avg),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Agg::Count => "count",
            Agg::Sum => "sum",
            Agg::Min => "min",
            Agg::Max => "max",
            Agg::Avg => "avg",
        }
    }
}

/// Evaluate aggregates over the (already filtered) scan result.
///
/// Result typing comes from the *operator and source column*, not from the
/// computed value: SUM/MIN/MAX preserve an INT source's type, AVG and any
/// FLOAT source yield FLOAT, COUNT is always INT. Deriving the type from
/// the value would mistype an empty or all-NULL input — the NULL result
/// used to fall through to FLOAT even when `MIN(id)` was taken over an INT
/// column.
fn aggregate(rows: &Table, aggs: &[(Agg, Option<String>)]) -> Result<SqlResult> {
    use crate::column::DataType;
    let mut fields = Vec::new();
    let mut values = Vec::new();
    for (agg, arg) in aggs {
        let label = match arg {
            Some(c) => format!("{}_{}", agg.name(), c),
            None => agg.name().to_string(),
        };
        let (value, dtype) = match (agg, arg) {
            (Agg::Count, None) => (Value::Int(rows.num_rows() as i64), DataType::Int),
            (Agg::Count, Some(col)) => {
                let c = rows.column(col)?;
                (
                    Value::Int((0..rows.num_rows()).filter(|&r| !c.is_null(r)).count() as i64),
                    DataType::Int,
                )
            }
            (_, None) => {
                return Err(StorageError::Parse(format!(
                    "{}(*) is only valid for COUNT",
                    agg.name().to_uppercase()
                )))
            }
            (op, Some(col)) => {
                let c = rows.column(col)?;
                let idx = rows
                    .schema
                    .field_index(col)
                    .ok_or_else(|| StorageError::UnknownColumn(col.clone()))?;
                let src = rows.schema.fields[idx].1;
                let dtype = match (op, src) {
                    (Agg::Avg, _) => DataType::Float,
                    (_, DataType::Int) => DataType::Int,
                    _ => DataType::Float,
                };
                let nums: Vec<f64> = (0..rows.num_rows())
                    .filter_map(|r| c.get_float(r))
                    .collect();
                let value = if nums.is_empty() {
                    Value::Null
                } else {
                    let v = match op {
                        Agg::Sum => nums.iter().sum(),
                        Agg::Min => nums.iter().cloned().fold(f64::INFINITY, f64::min),
                        Agg::Max => nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                        Agg::Avg => nums.iter().sum::<f64>() / nums.len() as f64,
                        Agg::Count => unreachable!(),
                    };
                    match dtype {
                        DataType::Int => Value::Int(v as i64),
                        _ => Value::Float(v),
                    }
                };
                (value, dtype)
            }
        };
        fields.push((label, dtype));
        values.push(value);
    }
    let mut out = Table::new("agg", Schema::new(fields));
    out.insert(values)?;
    Ok(SqlResult::Rows(out))
}

/// Sort rows by a column (NULLs last), SQL-style.
fn order_rows(rows: &Table, col: &str, desc: bool) -> Result<Table> {
    let key = rows.column(col)?;
    let mut order: Vec<usize> = (0..rows.num_rows()).collect();
    order.sort_by(|&a, &b| {
        use std::cmp::Ordering;
        let cmp = match (key.is_null(a), key.is_null(b)) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater, // NULLs last
            (false, true) => Ordering::Less,
            (false, false) => key.get(a).compare(&key.get(b)).unwrap_or(Ordering::Equal),
        };
        if desc {
            cmp.reverse()
        } else {
            cmp
        }
    });
    let mut out = Table::new(rows.name.clone(), rows.schema.clone());
    for r in order {
        out.insert(rows.try_row(r)?)?;
    }
    Ok(out)
}

fn truncate_rows(rows: &Table, n: usize) -> Result<Table> {
    let mut out = Table::new(rows.name.clone(), rows.schema.clone());
    for r in 0..rows.num_rows().min(n) {
        out.insert(rows.try_row(r)?)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_data() -> Database {
        let db = Database::in_memory();
        execute(
            &db,
            "CREATE TABLE pts (id INT, city TEXT, x FLOAT, y FLOAT)",
        )
        .unwrap();
        execute(
            &db,
            "INSERT INTO pts VALUES (1, 'nyc', -74.0, 40.7), (2, 'sf', -122.4, 37.8), (3, 'nyc', -73.9, 40.8), (4, NULL, 0.0, 0.0)",
        )
        .unwrap();
        db
    }

    fn rows(r: SqlResult) -> Table {
        match r {
            SqlResult::Rows(t) => t,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn create_insert_select() {
        let db = db_with_data();
        let t = rows(execute(&db, "SELECT * FROM pts").unwrap());
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.schema.len(), 4);
    }

    #[test]
    fn where_clause() {
        let db = db_with_data();
        let t = rows(execute(&db, "SELECT id FROM pts WHERE city = 'nyc'").unwrap());
        assert_eq!(t.num_rows(), 2);
        let t = rows(execute(&db, "SELECT id FROM pts WHERE x < -100").unwrap());
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.column("id").unwrap().get_int(0), Some(2));
    }

    #[test]
    fn compound_predicates() {
        let db = db_with_data();
        let t = rows(execute(&db, "SELECT id FROM pts WHERE city = 'nyc' AND y > 40.75").unwrap());
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.column("id").unwrap().get_int(0), Some(3));
        let t = rows(
            execute(
                &db,
                "SELECT id FROM pts WHERE city = 'sf' OR (city = 'nyc' AND id = 1)",
            )
            .unwrap(),
        );
        assert_eq!(t.num_rows(), 2);
        let t = rows(execute(&db, "SELECT id FROM pts WHERE NOT city = 'nyc'").unwrap());
        assert_eq!(t.num_rows(), 1); // NULL city row is rejected too
    }

    #[test]
    fn is_null() {
        let db = db_with_data();
        let t = rows(execute(&db, "SELECT id FROM pts WHERE city IS NULL").unwrap());
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.column("id").unwrap().get_int(0), Some(4));
        let t = rows(execute(&db, "SELECT id FROM pts WHERE city IS NOT NULL").unwrap());
        assert_eq!(t.num_rows(), 3);
    }

    #[test]
    fn string_escape() {
        let db = Database::in_memory();
        execute(&db, "CREATE TABLE s (v TEXT)").unwrap();
        execute(&db, "INSERT INTO s VALUES ('it''s')").unwrap();
        let t = rows(execute(&db, "SELECT v FROM s").unwrap());
        assert_eq!(t.column("v").unwrap().get_str(0), Some("it's"));
    }

    #[test]
    fn drop_table_works() {
        let db = db_with_data();
        execute(&db, "DROP TABLE pts").unwrap();
        assert!(execute(&db, "SELECT * FROM pts").is_err());
    }

    #[test]
    fn operators_all_forms() {
        let db = db_with_data();
        for (sql, expected) in [
            ("SELECT id FROM pts WHERE id <> 1", 3),
            ("SELECT id FROM pts WHERE id != 1", 3),
            ("SELECT id FROM pts WHERE id >= 3", 2),
            ("SELECT id FROM pts WHERE id <= 2", 2),
        ] {
            assert_eq!(
                rows(execute(&db, sql).unwrap()).num_rows(),
                expected,
                "{sql}"
            );
        }
    }

    #[test]
    fn parse_errors() {
        let db = db_with_data();
        assert!(execute(&db, "").is_err());
        assert!(execute(&db, "SELEC * FROM pts").is_err());
        assert!(execute(&db, "SELECT FROM pts").is_err());
        assert!(execute(&db, "SELECT * FROM pts WHERE").is_err());
        assert!(execute(&db, "CREATE TABLE x (a GEOMETRY)").is_err());
        assert!(execute(&db, "SELECT * FROM pts garbage").is_err());
        assert!(execute(&db, "INSERT INTO pts VALUES (1)").is_err());
    }

    #[test]
    fn aggregates() {
        let db = db_with_data();
        let t = rows(execute(&db, "SELECT COUNT(*) FROM pts").unwrap());
        assert_eq!(t.row(0), vec![Value::Int(4)]);
        let t = rows(execute(&db, "SELECT COUNT(city) FROM pts").unwrap());
        assert_eq!(t.row(0), vec![Value::Int(3)]); // NULL city excluded
        let t = rows(execute(&db, "SELECT COUNT(*) FROM pts WHERE city = 'nyc'").unwrap());
        assert_eq!(t.row(0), vec![Value::Int(2)]);
        let t = rows(execute(&db, "SELECT MIN(x), MAX(x), AVG(y), SUM(id) FROM pts").unwrap());
        assert_eq!(t.schema.fields[0].0, "min_x");
        assert_eq!(t.row(0)[0], Value::Float(-122.4));
        assert_eq!(t.row(0)[1], Value::Float(0.0));
        // SUM over an INT column stays INT.
        assert_eq!(t.row(0)[3], Value::Int(10));
        assert_eq!(t.schema.fields[3].1, DataType::Int);
        // Aggregates over an empty filter → NULL (COUNT → 0).
        let t = rows(execute(&db, "SELECT COUNT(*), SUM(x) FROM pts WHERE id > 100").unwrap());
        assert_eq!(t.row(0), vec![Value::Int(0), Value::Null]);
    }

    /// Regression: a NULL aggregate result must carry the type the
    /// aggregate *would* produce from its source column, not fall through
    /// to FLOAT. Empty-after-filter and all-NULL inputs both hit this.
    #[test]
    fn null_aggregates_typed_from_source_column() {
        let db = db_with_data();
        // Empty after filter: MIN/MAX/SUM over INT id → NULL typed INT;
        // AVG is always FLOAT; over FLOAT x everything stays FLOAT.
        let t = rows(
            execute(
                &db,
                "SELECT MIN(id), MAX(id), SUM(id), AVG(id), MIN(x) FROM pts WHERE id > 100",
            )
            .unwrap(),
        );
        assert_eq!(t.row(0), vec![Value::Null; 5]);
        assert_eq!(t.schema.fields[0].1, DataType::Int, "min_id");
        assert_eq!(t.schema.fields[1].1, DataType::Int, "max_id");
        assert_eq!(t.schema.fields[2].1, DataType::Int, "sum_id");
        assert_eq!(t.schema.fields[3].1, DataType::Float, "avg_id");
        assert_eq!(t.schema.fields[4].1, DataType::Float, "min_x");

        // All-NULL column: same typing.
        let db = Database::in_memory();
        execute(&db, "CREATE TABLE n (a INT, b FLOAT)").unwrap();
        execute(&db, "INSERT INTO n VALUES (NULL, NULL), (NULL, NULL)").unwrap();
        let t = rows(execute(&db, "SELECT MIN(a), MAX(a), AVG(a), SUM(b) FROM n").unwrap());
        assert_eq!(t.row(0), vec![Value::Null; 4]);
        assert_eq!(t.schema.fields[0].1, DataType::Int);
        assert_eq!(t.schema.fields[1].1, DataType::Int);
        assert_eq!(t.schema.fields[2].1, DataType::Float);
        assert_eq!(t.schema.fields[3].1, DataType::Float);
    }

    #[test]
    fn int_aggregates_preserve_int_type() {
        let db = db_with_data();
        let t = rows(execute(&db, "SELECT MIN(id), MAX(id) FROM pts").unwrap());
        assert_eq!(t.row(0), vec![Value::Int(1), Value::Int(4)]);
        // AVG over INT promotes to FLOAT.
        let t = rows(execute(&db, "SELECT AVG(id) FROM pts").unwrap());
        assert_eq!(t.row(0), vec![Value::Float(2.5)]);
    }

    #[test]
    fn explain_renders_plan_without_executing() {
        let db = db_with_data();
        let t = rows(
            execute(
                &db,
                "EXPLAIN SELECT id FROM pts WHERE city = 'nyc' ORDER BY x DESC LIMIT 2",
            )
            .unwrap(),
        );
        let plan: Vec<String> = (0..t.num_rows())
            .map(|i| t.column("plan").unwrap().get_str(i).unwrap().to_string())
            .collect();
        assert_eq!(plan[0], "Limit 2");
        assert!(plan[1].contains("Sort x DESC"));
        assert!(plan[2].contains("Project [id]"));
        assert!(plan[3].contains("Filter"));
        assert!(plan[4].contains("Scan pts"));
        // Indentation deepens per operator.
        assert!(plan[4].starts_with("        "));
        // No "actual" lines without ANALYZE.
        assert!(!plan.iter().any(|l| l.contains("actual")));
    }

    #[test]
    fn explain_analyze_appends_actuals() {
        let db = db_with_data();
        let t = rows(
            execute(
                &db,
                "EXPLAIN ANALYZE SELECT COUNT(*) FROM pts WHERE city = 'nyc'",
            )
            .unwrap(),
        );
        let plan: Vec<String> = (0..t.num_rows())
            .map(|i| t.column("plan").unwrap().get_str(i).unwrap().to_string())
            .collect();
        assert!(plan.iter().any(|l| l.contains("Aggregate count(*)")));
        assert!(plan.iter().any(|l| l == "actual rows: 1"));
        assert!(plan.iter().any(|l| l.starts_with("actual time: ")));
    }

    #[test]
    fn explain_rejects_non_select() {
        let db = db_with_data();
        assert!(execute(&db, "EXPLAIN DROP TABLE pts").is_err());
        assert!(execute(
            &db,
            "EXPLAIN ANALYZE INSERT INTO pts VALUES (9, 'x', 0.0, 0.0)"
        )
        .is_err());
        // The rejected EXPLAIN must not have executed anything.
        assert_eq!(
            rows(execute(&db, "SELECT * FROM pts").unwrap()).num_rows(),
            4
        );
    }

    #[test]
    fn aggregates_cannot_mix_with_columns() {
        let db = db_with_data();
        assert!(execute(&db, "SELECT id, COUNT(*) FROM pts").is_err());
        assert!(execute(&db, "SELECT SUM(*) FROM pts").is_err());
    }

    #[test]
    fn order_by_and_limit() {
        let db = db_with_data();
        let t = rows(execute(&db, "SELECT id FROM pts ORDER BY x").unwrap());
        assert_eq!(t.column("id").unwrap().get_int(0), Some(2)); // x = -122.4
        let t = rows(execute(&db, "SELECT id FROM pts ORDER BY x DESC LIMIT 2").unwrap());
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column("id").unwrap().get_int(0), Some(4)); // x = 0.0
                                                                 // ORDER BY a column not in the projection still works.
        let t = rows(
            execute(
                &db,
                "SELECT city FROM pts WHERE city IS NOT NULL ORDER BY y ASC",
            )
            .unwrap(),
        );
        assert_eq!(t.column("city").unwrap().get_str(0), Some("sf"));
        // LIMIT alone.
        let t = rows(execute(&db, "SELECT * FROM pts LIMIT 1").unwrap());
        assert_eq!(t.num_rows(), 1);
        assert!(execute(&db, "SELECT * FROM pts LIMIT -3").is_err());
    }

    #[test]
    fn count_as_plain_identifier_still_allowed() {
        // A column literally named "count" must not be mistaken for the
        // aggregate when no parenthesis follows.
        let db = Database::in_memory();
        execute(&db, "CREATE TABLE t (count INT)").unwrap();
        execute(&db, "INSERT INTO t VALUES (7)").unwrap();
        let t = rows(execute(&db, "SELECT count FROM t").unwrap());
        assert_eq!(t.row(0), vec![Value::Int(7)]);
    }

    #[test]
    fn semicolons_tolerated() {
        let db = db_with_data();
        assert_eq!(
            rows(execute(&db, "SELECT * FROM pts;").unwrap()).num_rows(),
            4
        );
    }
}
