//! Scalar values and their dynamic type.

use crate::column::DataType;

/// A dynamically-typed scalar cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Bytes(Vec<u8>),
}

impl Value {
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bytes(_) => Some(DataType::Bytes),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats (SQL-style comparisons between
    /// INT and FLOAT columns work through this).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// SQL-style comparison: `None` for incomparable values or nulls.
    pub fn compare(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bytes(a), Bytes(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_float()?;
                let b = other.as_float()?;
                a.partial_cmp(&b)
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bytes(b) => write!(f, "x'{}...' ({} bytes)", hex_prefix(b), b.len()),
        }
    }
}

fn hex_prefix(b: &[u8]) -> String {
    b.iter().take(4).map(|v| format!("{v:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn type_dispatch() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Float(1.0).data_type(), Some(DataType::Float));
        assert_eq!(Value::from("x").data_type(), Some(DataType::Str));
        assert_eq!(Value::from(vec![1u8]).data_type(), Some(DataType::Bytes));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_float(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
    }

    #[test]
    fn comparisons() {
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
        // Mixed numeric comparison widens.
        assert_eq!(
            Value::Int(2).compare(&Value::Float(1.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::from("a").compare(&Value::from("b")),
            Some(Ordering::Less)
        );
        // Nulls and mismatched types are incomparable.
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::from("a").compare(&Value::Int(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::from("x").to_string(), "'x'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert!(Value::from(vec![0xABu8; 10])
            .to_string()
            .contains("10 bytes"));
    }
}
