//! Geometry ⇄ relational encoding.
//!
//! SPADE stores spatial data sets as relational tables (§3): an `id`
//! column, four bbox columns for coarse filtering, and the geometry itself
//! in a compact WKB-like binary blob column. This module provides the codec
//! and the table adapters.

use crate::column::DataType;
use crate::cursor;
use crate::table::{Schema, Table};
use crate::value::Value;
use crate::{Result, StorageError};
use spade_geometry::{Geometry, LineString, MultiPolygon, Point, Polygon};

const TAG_POINT: u8 = 1;
const TAG_LINESTRING: u8 = 2;
const TAG_POLYGON: u8 = 3;
const TAG_MULTIPOLYGON: u8 = 4;

/// Encode a geometry to its binary blob form.
pub fn encode_geometry(g: &Geometry) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + g.num_vertices() * 16);
    match g {
        Geometry::Point(p) => {
            cursor::put_u8(&mut buf, TAG_POINT);
            put_point(&mut buf, *p);
        }
        Geometry::LineString(l) => {
            cursor::put_u8(&mut buf, TAG_LINESTRING);
            put_points(&mut buf, &l.points);
        }
        Geometry::Polygon(p) => {
            cursor::put_u8(&mut buf, TAG_POLYGON);
            put_polygon(&mut buf, p);
        }
        Geometry::MultiPolygon(m) => {
            cursor::put_u8(&mut buf, TAG_MULTIPOLYGON);
            cursor::put_u32_le(&mut buf, m.polygons.len() as u32);
            for p in &m.polygons {
                put_polygon(&mut buf, p);
            }
        }
    }
    buf
}

fn put_point(buf: &mut Vec<u8>, p: Point) {
    cursor::put_f64_le(buf, p.x);
    cursor::put_f64_le(buf, p.y);
}

fn put_points(buf: &mut Vec<u8>, pts: &[Point]) {
    cursor::put_u32_le(buf, pts.len() as u32);
    for p in pts {
        put_point(buf, *p);
    }
}

fn put_polygon(buf: &mut Vec<u8>, p: &Polygon) {
    cursor::put_u32_le(buf, 1 + p.holes.len() as u32);
    put_points(buf, &p.exterior.points);
    for h in &p.holes {
        put_points(buf, &h.points);
    }
}

/// Decode a geometry from its binary blob form.
pub fn decode_geometry(mut buf: &[u8]) -> Result<Geometry> {
    let corrupt = |m: &str| StorageError::Corrupt(format!("geometry: {m}"));
    let Some(tag) = cursor::get_u8(&mut buf) else {
        return Err(corrupt("empty blob"));
    };
    match tag {
        TAG_POINT => Ok(Geometry::Point(get_point(&mut buf)?)),
        TAG_LINESTRING => Ok(Geometry::LineString(LineString::new(get_points(&mut buf)?))),
        TAG_POLYGON => Ok(Geometry::Polygon(get_polygon(&mut buf)?)),
        TAG_MULTIPOLYGON => {
            let n = cursor::get_u32_le(&mut buf).ok_or_else(|| corrupt("truncated multipolygon"))?
                as usize;
            let mut polys = Vec::with_capacity(n.min(buf.len()));
            for _ in 0..n {
                polys.push(get_polygon(&mut buf)?);
            }
            Ok(Geometry::MultiPolygon(MultiPolygon::new(polys)))
        }
        t => Err(corrupt(&format!("unknown tag {t}"))),
    }
}

fn get_point(buf: &mut &[u8]) -> Result<Point> {
    let truncated = || StorageError::Corrupt("geometry: truncated point".into());
    let x = cursor::get_f64_le(buf).ok_or_else(truncated)?;
    let y = cursor::get_f64_le(buf).ok_or_else(truncated)?;
    Ok(Point::new(x, y))
}

fn get_points(buf: &mut &[u8]) -> Result<Vec<Point>> {
    let n = cursor::get_u32_le(buf)
        .ok_or_else(|| StorageError::Corrupt("geometry: truncated count".into()))?
        as usize;
    if buf.len() < n * 16 {
        return Err(StorageError::Corrupt("geometry: truncated points".into()));
    }
    let mut pts = Vec::with_capacity(n);
    for _ in 0..n {
        pts.push(get_point(buf)?);
    }
    Ok(pts)
}

fn get_polygon(buf: &mut &[u8]) -> Result<Polygon> {
    let nrings = cursor::get_u32_le(buf)
        .ok_or_else(|| StorageError::Corrupt("geometry: truncated ring count".into()))?
        as usize;
    if nrings == 0 {
        return Err(StorageError::Corrupt(
            "geometry: polygon without rings".into(),
        ));
    }
    let exterior = get_points(buf)?;
    let mut holes = Vec::with_capacity(nrings - 1);
    for _ in 1..nrings {
        holes.push(get_points(buf)?);
    }
    Ok(Polygon::with_holes(exterior, holes))
}

/// The canonical schema of a geometry table: `id`, bbox columns, blob.
pub fn geometry_schema() -> Schema {
    Schema::new(vec![
        ("id".into(), DataType::Int),
        ("minx".into(), DataType::Float),
        ("miny".into(), DataType::Float),
        ("maxx".into(), DataType::Float),
        ("maxy".into(), DataType::Float),
        ("geom".into(), DataType::Bytes),
    ])
}

/// Build a geometry table from `(id, geometry)` pairs.
pub fn geometry_table(name: &str, items: &[(u32, Geometry)]) -> Result<Table> {
    let mut t = Table::new(name, geometry_schema());
    for (id, g) in items {
        let bb = g.bbox();
        t.insert(vec![
            Value::Int(*id as i64),
            Value::Float(bb.min.x),
            Value::Float(bb.min.y),
            Value::Float(bb.max.x),
            Value::Float(bb.max.y),
            Value::Bytes(encode_geometry(g)),
        ])?;
    }
    Ok(t)
}

/// Read all `(id, geometry)` pairs back from a geometry table.
pub fn read_geometry_table(t: &Table) -> Result<Vec<(u32, Geometry)>> {
    let ids = t.column("id")?;
    let blobs = t.column("geom")?;
    let mut out = Vec::with_capacity(t.num_rows());
    for row in 0..t.num_rows() {
        let id = ids
            .get_int(row)
            .ok_or_else(|| StorageError::Corrupt("null id".into()))? as u32;
        let blob = blobs
            .get_bytes(row)
            .ok_or_else(|| StorageError::Corrupt("null geometry".into()))?;
        out.push((id, decode_geometry(blob)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_geometry::BBox;

    fn samples() -> Vec<Geometry> {
        vec![
            Geometry::Point(Point::new(1.5, -2.5)),
            Geometry::LineString(LineString::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(2.0, 0.0),
            ])),
            Geometry::Polygon(Polygon::with_holes(
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(10.0, 0.0),
                    Point::new(10.0, 10.0),
                    Point::new(0.0, 10.0),
                ],
                vec![vec![
                    Point::new(4.0, 4.0),
                    Point::new(6.0, 4.0),
                    Point::new(6.0, 6.0),
                    Point::new(4.0, 6.0),
                ]],
            )),
            Geometry::MultiPolygon(MultiPolygon::new(vec![
                Polygon::rect(BBox::new(Point::ZERO, Point::new(1.0, 1.0))),
                Polygon::rect(BBox::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0))),
            ])),
        ]
    }

    #[test]
    fn codec_roundtrip_all_kinds() {
        for g in samples() {
            let blob = encode_geometry(&g);
            let back = decode_geometry(&blob).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn corrupt_blobs_rejected() {
        assert!(decode_geometry(&[]).is_err());
        assert!(decode_geometry(&[99]).is_err());
        assert!(decode_geometry(&[TAG_POINT, 1, 2]).is_err());
        let mut good = encode_geometry(&samples()[2]);
        good.truncate(good.len() - 3);
        assert!(decode_geometry(&good).is_err());
    }

    #[test]
    fn geometry_table_roundtrip() {
        let items: Vec<(u32, Geometry)> = samples()
            .into_iter()
            .enumerate()
            .map(|(i, g)| (i as u32, g))
            .collect();
        let t = geometry_table("geoms", &items).unwrap();
        assert_eq!(t.num_rows(), 4);
        let back = read_geometry_table(&t).unwrap();
        assert_eq!(back, items);
    }

    #[test]
    fn bbox_columns_match_geometry() {
        let items = vec![(7u32, samples()[2].clone())];
        let t = geometry_table("g", &items).unwrap();
        assert_eq!(t.column("minx").unwrap().get_float(0), Some(0.0));
        assert_eq!(t.column("maxx").unwrap().get_float(0), Some(10.0));
        assert_eq!(t.column("maxy").unwrap().get_float(0), Some(10.0));
        assert_eq!(t.column("id").unwrap().get_int(0), Some(7));
    }

    #[test]
    fn table_persists_through_storage() {
        // End-to-end: geometry table → binary file → back.
        let items: Vec<(u32, Geometry)> = samples()
            .into_iter()
            .enumerate()
            .map(|(i, g)| (i as u32, g))
            .collect();
        let t = geometry_table("geoms", &items).unwrap();
        let bytes = crate::persist::encode_table(&t);
        let back = crate::persist::decode_table(&bytes).unwrap();
        assert_eq!(read_geometry_table(&back).unwrap(), items);
    }
}
