//! Scan / filter / project execution over tables.
//!
//! SPADE combines spatial constraints with relational ones ("linkage to
//! relational data", §1); the relational side evaluates through this small
//! expression executor.

use crate::table::{Schema, Table};
use crate::value::Value;
use crate::{Result, StorageError};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(String),
    Literal(Value),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>),
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_string())
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Evaluate to a value for table row `row`.
    pub fn eval(&self, table: &Table, row: usize) -> Result<Value> {
        Ok(match self {
            Expr::Column(name) => table.column(name)?.get(row),
            Expr::Literal(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let av = a.eval(table, row)?;
                let bv = b.eval(table, row)?;
                match av.compare(&bv) {
                    Some(ord) => Value::Int(op.eval(ord) as i64),
                    None => Value::Null, // SQL three-valued logic
                }
            }
            Expr::And(a, b) => match (a.eval(table, row)?, b.eval(table, row)?) {
                (Value::Null, _) | (_, Value::Null) => Value::Null,
                (x, y) => Value::Int((truthy(&x) && truthy(&y)) as i64),
            },
            Expr::Or(a, b) => match (a.eval(table, row)?, b.eval(table, row)?) {
                (Value::Null, y) => {
                    if truthy(&y) {
                        Value::Int(1)
                    } else {
                        Value::Null
                    }
                }
                (x, Value::Null) => {
                    if truthy(&x) {
                        Value::Int(1)
                    } else {
                        Value::Null
                    }
                }
                (x, y) => Value::Int((truthy(&x) || truthy(&y)) as i64),
            },
            Expr::Not(a) => match a.eval(table, row)? {
                Value::Null => Value::Null,
                x => Value::Int(!truthy(&x) as i64),
            },
            Expr::IsNull(a) => Value::Int(a.eval(table, row)?.is_null() as i64),
        })
    }

    /// Evaluate as a filter predicate (NULL ⇒ row rejected, SQL semantics).
    pub fn matches(&self, table: &Table, row: usize) -> Result<bool> {
        Ok(match self.eval(table, row)? {
            Value::Null => false,
            v => truthy(&v),
        })
    }
}

fn truthy(v: &Value) -> bool {
    match v {
        Value::Int(x) => *x != 0,
        Value::Float(x) => *x != 0.0,
        Value::Str(s) => !s.is_empty(),
        Value::Bytes(b) => !b.is_empty(),
        Value::Null => false,
    }
}

/// Scan a table: project `columns` (empty = all) from rows passing `filter`.
pub fn scan(table: &Table, columns: &[String], filter: Option<&Expr>) -> Result<Table> {
    let proj: Vec<usize> = if columns.is_empty() {
        (0..table.schema.len()).collect()
    } else {
        columns
            .iter()
            .map(|c| {
                table
                    .schema
                    .field_index(c)
                    .ok_or_else(|| StorageError::UnknownColumn(c.clone()))
            })
            .collect::<Result<_>>()?
    };
    let fields: Vec<_> = proj
        .iter()
        .map(|&i| table.schema.fields[i].clone())
        .collect();
    let mut out = Table::new(format!("{}_scan", table.name), Schema::new(fields));
    for row in 0..table.num_rows() {
        let keep = match filter {
            Some(f) => f.matches(table, row)?,
            None => true,
        };
        if keep {
            out.insert(proj.iter().map(|&i| table.columns[i].get(row)).collect())?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;

    fn sample() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ("id".into(), DataType::Int),
                ("score".into(), DataType::Float),
                ("tag".into(), DataType::Str),
            ]),
        );
        t.insert(vec![1.into(), 0.5.into(), "a".into()]).unwrap();
        t.insert(vec![2.into(), 1.5.into(), "b".into()]).unwrap();
        t.insert(vec![3.into(), Value::Null, "a".into()]).unwrap();
        t.insert(vec![4.into(), 2.5.into(), "c".into()]).unwrap();
        t
    }

    #[test]
    fn comparison_filters() {
        let t = sample();
        let f = Expr::cmp(CmpOp::Gt, Expr::col("score"), Expr::lit(1.0));
        let out = scan(&t, &[], Some(&f)).unwrap();
        assert_eq!(out.num_rows(), 2); // rows 2 and 4; NULL row rejected
        assert_eq!(out.column("id").unwrap().get_int(0), Some(2));
        assert_eq!(out.column("id").unwrap().get_int(1), Some(4));
    }

    #[test]
    fn and_or_not() {
        let t = sample();
        let f = Expr::cmp(CmpOp::Eq, Expr::col("tag"), Expr::lit("a")).and(Expr::cmp(
            CmpOp::Lt,
            Expr::col("id"),
            Expr::lit(3i64),
        ));
        assert_eq!(scan(&t, &[], Some(&f)).unwrap().num_rows(), 1);
        let g = Expr::cmp(CmpOp::Eq, Expr::col("tag"), Expr::lit("b")).or(Expr::cmp(
            CmpOp::Eq,
            Expr::col("tag"),
            Expr::lit("c"),
        ));
        assert_eq!(scan(&t, &[], Some(&g)).unwrap().num_rows(), 2);
        let n = Expr::Not(Box::new(Expr::cmp(
            CmpOp::Eq,
            Expr::col("tag"),
            Expr::lit("a"),
        )));
        assert_eq!(scan(&t, &[], Some(&n)).unwrap().num_rows(), 2);
    }

    #[test]
    fn null_semantics() {
        let t = sample();
        // score > 0 is NULL for row 3 → rejected.
        let f = Expr::cmp(CmpOp::Gt, Expr::col("score"), Expr::lit(0.0));
        assert_eq!(scan(&t, &[], Some(&f)).unwrap().num_rows(), 3);
        // IS NULL finds it.
        let isn = Expr::IsNull(Box::new(Expr::col("score")));
        let out = scan(&t, &[], Some(&isn)).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column("id").unwrap().get_int(0), Some(3));
        // NULL OR TRUE = TRUE.
        let or_true = Expr::cmp(CmpOp::Gt, Expr::col("score"), Expr::lit(0.0)).or(Expr::lit(1i64));
        assert_eq!(scan(&t, &[], Some(&or_true)).unwrap().num_rows(), 4);
    }

    #[test]
    fn projection() {
        let t = sample();
        let out = scan(&t, &["tag".into(), "id".into()], None).unwrap();
        assert_eq!(out.schema.len(), 2);
        assert_eq!(out.schema.fields[0].0, "tag");
        assert_eq!(out.num_rows(), 4);
        assert!(scan(&t, &["nope".into()], None).is_err());
    }

    #[test]
    fn mixed_numeric_comparison() {
        let t = sample();
        // Int literal against float column.
        let f = Expr::cmp(CmpOp::Ge, Expr::col("score"), Expr::lit(2i64));
        assert_eq!(scan(&t, &[], Some(&f)).unwrap().num_rows(), 1);
    }
}
