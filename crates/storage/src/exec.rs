//! Scan / filter / project execution over tables.
//!
//! SPADE combines spatial constraints with relational ones ("linkage to
//! relational data", §1); the relational side evaluates through this small
//! expression executor.

use crate::column::ColumnData;
use crate::table::{Schema, Table};
use crate::value::Value;
use crate::{Result, StorageError};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped: `lit op col` ⇔ `col flip(op) lit`.
    fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(String),
    Literal(Value),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>),
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_string())
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Evaluate to a value for table row `row`.
    pub fn eval(&self, table: &Table, row: usize) -> Result<Value> {
        Ok(match self {
            Expr::Column(name) => table.column(name)?.get(row),
            Expr::Literal(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let av = a.eval(table, row)?;
                let bv = b.eval(table, row)?;
                match av.compare(&bv) {
                    Some(ord) => Value::Int(op.eval(ord) as i64),
                    None => Value::Null, // SQL three-valued logic
                }
            }
            Expr::And(a, b) => match (a.eval(table, row)?, b.eval(table, row)?) {
                (Value::Null, _) | (_, Value::Null) => Value::Null,
                (x, y) => Value::Int((truthy(&x) && truthy(&y)) as i64),
            },
            Expr::Or(a, b) => match (a.eval(table, row)?, b.eval(table, row)?) {
                (Value::Null, y) => {
                    if truthy(&y) {
                        Value::Int(1)
                    } else {
                        Value::Null
                    }
                }
                (x, Value::Null) => {
                    if truthy(&x) {
                        Value::Int(1)
                    } else {
                        Value::Null
                    }
                }
                (x, y) => Value::Int((truthy(&x) || truthy(&y)) as i64),
            },
            Expr::Not(a) => match a.eval(table, row)? {
                Value::Null => Value::Null,
                x => Value::Int(!truthy(&x) as i64),
            },
            Expr::IsNull(a) => Value::Int(a.eval(table, row)?.is_null() as i64),
        })
    }

    /// Evaluate as a filter predicate (NULL ⇒ row rejected, SQL semantics).
    pub fn matches(&self, table: &Table, row: usize) -> Result<bool> {
        Ok(match self.eval(table, row)? {
            Value::Null => false,
            v => truthy(&v),
        })
    }
}

fn truthy(v: &Value) -> bool {
    match v {
        Value::Int(x) => *x != 0,
        Value::Float(x) => *x != 0.0,
        Value::Str(s) => !s.is_empty(),
        Value::Bytes(b) => !b.is_empty(),
        Value::Null => false,
    }
}

/// Rows per block in the vectorized filter kernel.
pub const FILTER_BLOCK: usize = 1024;

/// A filter compiled to column-at-a-time block kernels.
///
/// Each node evaluates a whole block of rows into a pair of byte masks —
/// `v` (the boolean value) and `k` (known, i.e. not SQL NULL) — so the
/// per-row work is a branch-free loop over primitive slices instead of a
/// tree walk allocating `Value`s. The `(v, k)` algebra reproduces
/// [`Expr::eval`]'s three-valued logic exactly (including its non-Kleene
/// `And`, which yields NULL whenever either side is NULL); a row is kept
/// iff `v & k`, matching [`Expr::matches`].
enum Kernel {
    /// Constant boolean, or constant NULL when `k == 0`.
    Const {
        v: u8,
        k: u8,
    },
    /// Int column compared against an int literal (exact `i64` ordering).
    CmpII {
        col: usize,
        op: CmpOp,
        lit: i64,
    },
    /// Int column widened to `f64` against a float literal.
    CmpIF {
        col: usize,
        op: CmpOp,
        lit: f64,
    },
    /// Float column against a (non-NaN) numeric literal.
    CmpFF {
        col: usize,
        op: CmpOp,
        lit: f64,
    },
    /// String column against a string literal.
    CmpSS {
        col: usize,
        op: CmpOp,
        lit: String,
    },
    /// Int column in boolean position (`truthy`).
    TruthyI {
        col: usize,
    },
    /// Float column in boolean position (`truthy`; NaN is truthy).
    TruthyF {
        col: usize,
    },
    /// String column in boolean position (`truthy` = non-empty).
    TruthyS {
        col: usize,
    },
    IsNull(Box<Kernel>),
    And(Box<Kernel>, Box<Kernel>),
    Or(Box<Kernel>, Box<Kernel>),
    Not(Box<Kernel>),
}

/// Scratch `(v, k)` buffers reused across blocks and tree levels.
struct BufPool(Vec<Vec<u8>>);

impl BufPool {
    fn get(&mut self) -> Vec<u8> {
        self.0.pop().unwrap_or_else(|| vec![0u8; FILTER_BLOCK])
    }

    fn put(&mut self, b: Vec<u8>) {
        self.0.push(b);
    }
}

impl Kernel {
    /// Compile `e` for `table`, or `None` when the shape isn't kernelizable
    /// (column-vs-column compares, `Bytes` columns, unknown columns — the
    /// caller falls back to row-wise evaluation, which also surfaces any
    /// error exactly as before).
    fn compile(e: &Expr, table: &Table) -> Option<Kernel> {
        match e {
            Expr::Literal(v) => Some(Kernel::Const {
                v: truthy(v) as u8,
                k: !v.is_null() as u8,
            }),
            Expr::Column(name) => {
                let col = table.schema.field_index(name)?;
                match table.columns[col].data() {
                    ColumnData::Int(_) => Some(Kernel::TruthyI { col }),
                    ColumnData::Float(_) => Some(Kernel::TruthyF { col }),
                    ColumnData::Str(_) => Some(Kernel::TruthyS { col }),
                    ColumnData::Bytes(_) => None,
                }
            }
            Expr::Cmp(op, a, b) => {
                let (op, name, lit) = match (a.as_ref(), b.as_ref()) {
                    (Expr::Column(c), Expr::Literal(l)) => (*op, c, l),
                    (Expr::Literal(l), Expr::Column(c)) => (op.flip(), c, l),
                    _ => return None,
                };
                let col = table.schema.field_index(name)?;
                // NULL propagation: a NULL literal — or a type pairing
                // `Value::compare` can never order (NaN literal, int/float
                // vs string, …) — makes the comparison NULL on every row.
                const NULL: Kernel = Kernel::Const { v: 0, k: 0 };
                match (table.columns[col].data(), lit) {
                    (ColumnData::Bytes(_), _) => None,
                    (_, Value::Null) => Some(NULL),
                    (ColumnData::Int(_), Value::Int(l)) => Some(Kernel::CmpII { col, op, lit: *l }),
                    (ColumnData::Int(_), Value::Float(l)) => Some(if l.is_nan() {
                        NULL
                    } else {
                        Kernel::CmpIF { col, op, lit: *l }
                    }),
                    (ColumnData::Float(_), Value::Int(l)) => Some(Kernel::CmpFF {
                        col,
                        op,
                        lit: *l as f64,
                    }),
                    (ColumnData::Float(_), Value::Float(l)) => Some(if l.is_nan() {
                        NULL
                    } else {
                        Kernel::CmpFF { col, op, lit: *l }
                    }),
                    (ColumnData::Str(_), Value::Str(l)) => Some(Kernel::CmpSS {
                        col,
                        op,
                        lit: l.clone(),
                    }),
                    _ => Some(NULL),
                }
            }
            Expr::And(a, b) => Some(Kernel::And(
                Box::new(Kernel::compile(a, table)?),
                Box::new(Kernel::compile(b, table)?),
            )),
            Expr::Or(a, b) => Some(Kernel::Or(
                Box::new(Kernel::compile(a, table)?),
                Box::new(Kernel::compile(b, table)?),
            )),
            Expr::Not(a) => Some(Kernel::Not(Box::new(Kernel::compile(a, table)?))),
            Expr::IsNull(a) => Some(Kernel::IsNull(Box::new(Kernel::compile(a, table)?))),
        }
    }

    /// Evaluate rows `base..base + len` into `v[..len]` / `k[..len]`.
    /// All produced bytes are strictly 0 or 1.
    fn eval_block(
        &self,
        table: &Table,
        base: usize,
        len: usize,
        v: &mut [u8],
        k: &mut [u8],
        pool: &mut BufPool,
    ) {
        match self {
            Kernel::Const { v: cv, k: ck } => {
                v[..len].fill(*cv);
                k[..len].fill(*ck);
            }
            Kernel::CmpII { col, op, lit } => {
                let c = &table.columns[*col];
                let ColumnData::Int(d) = c.data() else {
                    unreachable!("compile checked the column type")
                };
                cmp_int_block(&d[base..base + len], &c.nulls()[base..], *op, *lit, v, k);
            }
            Kernel::CmpIF { col, op, lit } => {
                let c = &table.columns[*col];
                let ColumnData::Int(d) = c.data() else {
                    unreachable!("compile checked the column type")
                };
                cmp_int_float_block(&d[base..base + len], &c.nulls()[base..], *op, *lit, v, k);
            }
            Kernel::CmpFF { col, op, lit } => {
                let c = &table.columns[*col];
                let ColumnData::Float(d) = c.data() else {
                    unreachable!("compile checked the column type")
                };
                cmp_float_block(&d[base..base + len], &c.nulls()[base..], *op, *lit, v, k);
            }
            Kernel::CmpSS { col, op, lit } => {
                let c = &table.columns[*col];
                let ColumnData::Str(d) = c.data() else {
                    unreachable!("compile checked the column type")
                };
                cmp_str_block(&d[base..base + len], &c.nulls()[base..], *op, lit, v, k);
            }
            Kernel::TruthyI { col } => {
                let c = &table.columns[*col];
                let ColumnData::Int(d) = c.data() else {
                    unreachable!("compile checked the column type")
                };
                let (d, nulls) = (&d[base..base + len], &c.nulls()[base..]);
                for i in 0..len {
                    v[i] = (d[i] != 0) as u8;
                    k[i] = !nulls[i] as u8;
                }
            }
            Kernel::TruthyF { col } => {
                let c = &table.columns[*col];
                let ColumnData::Float(d) = c.data() else {
                    unreachable!("compile checked the column type")
                };
                let (d, nulls) = (&d[base..base + len], &c.nulls()[base..]);
                for i in 0..len {
                    // NaN != 0.0 is true, matching `truthy`.
                    v[i] = (d[i] != 0.0) as u8;
                    k[i] = !nulls[i] as u8;
                }
            }
            Kernel::TruthyS { col } => {
                let c = &table.columns[*col];
                let ColumnData::Str(d) = c.data() else {
                    unreachable!("compile checked the column type")
                };
                let (d, nulls) = (&d[base..base + len], &c.nulls()[base..]);
                for i in 0..len {
                    v[i] = !d[i].is_empty() as u8;
                    k[i] = !nulls[i] as u8;
                }
            }
            Kernel::IsNull(a) => {
                a.eval_block(table, base, len, v, k, pool);
                for i in 0..len {
                    v[i] = k[i] ^ 1;
                    k[i] = 1;
                }
            }
            Kernel::Not(a) => {
                a.eval_block(table, base, len, v, k, pool);
                for b in v[..len].iter_mut() {
                    *b ^= 1;
                }
            }
            Kernel::And(a, b) => {
                let (mut bv, mut bk) = (pool.get(), pool.get());
                a.eval_block(table, base, len, v, k, pool);
                b.eval_block(table, base, len, &mut bv, &mut bk, pool);
                // Non-Kleene, like `Expr::eval`: NULL on either side wins
                // even when the other side is a known FALSE.
                for i in 0..len {
                    v[i] &= bv[i];
                    k[i] &= bk[i];
                }
                pool.put(bv);
                pool.put(bk);
            }
            Kernel::Or(a, b) => {
                let (mut bv, mut bk) = (pool.get(), pool.get());
                a.eval_block(table, base, len, v, k, pool);
                b.eval_block(table, base, len, &mut bv, &mut bk, pool);
                // Known iff both sides are known or either is a known TRUE.
                for i in 0..len {
                    let (va, ka, vb, kb) = (v[i], k[i], bv[i], bk[i]);
                    v[i] = (ka & va) | (kb & vb);
                    k[i] = (ka & kb) | (ka & va) | (kb & vb);
                }
                pool.put(bv);
                pool.put(bk);
            }
        }
    }
}

fn cmp_int_block(d: &[i64], nulls: &[bool], op: CmpOp, lit: i64, v: &mut [u8], k: &mut [u8]) {
    macro_rules! go {
        ($p:expr) => {{
            let p = $p;
            for i in 0..d.len() {
                v[i] = p(d[i]) as u8;
                k[i] = !nulls[i] as u8;
            }
        }};
    }
    match op {
        CmpOp::Eq => go!(|x: i64| x == lit),
        CmpOp::Ne => go!(|x: i64| x != lit),
        CmpOp::Lt => go!(|x: i64| x < lit),
        CmpOp::Le => go!(|x: i64| x <= lit),
        CmpOp::Gt => go!(|x: i64| x > lit),
        CmpOp::Ge => go!(|x: i64| x >= lit),
    }
}

fn cmp_int_float_block(d: &[i64], nulls: &[bool], op: CmpOp, lit: f64, v: &mut [u8], k: &mut [u8]) {
    // The widened int is never NaN and compile rejected NaN literals, so
    // the comparison is always ordered: known = not null.
    macro_rules! go {
        ($p:expr) => {{
            let p = $p;
            for i in 0..d.len() {
                v[i] = p(d[i] as f64) as u8;
                k[i] = !nulls[i] as u8;
            }
        }};
    }
    match op {
        CmpOp::Eq => go!(|x: f64| x == lit),
        CmpOp::Ne => go!(|x: f64| x != lit),
        CmpOp::Lt => go!(|x: f64| x < lit),
        CmpOp::Le => go!(|x: f64| x <= lit),
        CmpOp::Gt => go!(|x: f64| x > lit),
        CmpOp::Ge => go!(|x: f64| x >= lit),
    }
}

fn cmp_float_block(d: &[f64], nulls: &[bool], op: CmpOp, lit: f64, v: &mut [u8], k: &mut [u8]) {
    // A NaN cell makes `partial_cmp` return `None` → NULL, so NaN rows are
    // unknown; the literal is non-NaN (compile folded that case away).
    macro_rules! go {
        ($p:expr) => {{
            let p = $p;
            for i in 0..d.len() {
                v[i] = p(d[i]) as u8;
                k[i] = (!nulls[i] && !d[i].is_nan()) as u8;
            }
        }};
    }
    match op {
        CmpOp::Eq => go!(|x: f64| x == lit),
        CmpOp::Ne => go!(|x: f64| x != lit),
        CmpOp::Lt => go!(|x: f64| x < lit),
        CmpOp::Le => go!(|x: f64| x <= lit),
        CmpOp::Gt => go!(|x: f64| x > lit),
        CmpOp::Ge => go!(|x: f64| x >= lit),
    }
}

fn cmp_str_block(d: &[String], nulls: &[bool], op: CmpOp, lit: &str, v: &mut [u8], k: &mut [u8]) {
    macro_rules! go {
        ($p:expr) => {{
            let p = $p;
            for i in 0..d.len() {
                v[i] = p(d[i].as_str()) as u8;
                k[i] = !nulls[i] as u8;
            }
        }};
    }
    match op {
        CmpOp::Eq => go!(|x: &str| x == lit),
        CmpOp::Ne => go!(|x: &str| x != lit),
        CmpOp::Lt => go!(|x: &str| x < lit),
        CmpOp::Le => go!(|x: &str| x <= lit),
        CmpOp::Gt => go!(|x: &str| x > lit),
        CmpOp::Ge => go!(|x: &str| x >= lit),
    }
}

/// Scan a table: project `columns` (empty = all) from rows passing `filter`.
pub fn scan(table: &Table, columns: &[String], filter: Option<&Expr>) -> Result<Table> {
    scan_with(table, columns, filter, true)
}

/// [`scan`] with the block filter kernel toggled explicitly. Results are
/// identical either way — the toggle exists for differential testing and
/// for the engine's `simd_kernels` knob.
pub fn scan_with(
    table: &Table,
    columns: &[String],
    filter: Option<&Expr>,
    vectorized: bool,
) -> Result<Table> {
    let proj: Vec<usize> = if columns.is_empty() {
        (0..table.schema.len()).collect()
    } else {
        columns
            .iter()
            .map(|c| {
                table
                    .schema
                    .field_index(c)
                    .ok_or_else(|| StorageError::UnknownColumn(c.clone()))
            })
            .collect::<Result<_>>()?
    };
    let fields: Vec<_> = proj
        .iter()
        .map(|&i| table.schema.fields[i].clone())
        .collect();
    let mut out = Table::new(format!("{}_scan", table.name), Schema::new(fields));
    let kernel = match filter {
        Some(f) if vectorized => Kernel::compile(f, table),
        _ => None,
    };
    if let Some(kern) = kernel {
        // Block path: evaluate the predicate column-at-a-time over
        // `FILTER_BLOCK` rows into a selection bitmap, then materialize
        // the selected rows in order.
        let n = table.num_rows();
        let mut pool = BufPool(Vec::new());
        let (mut v, mut k) = (pool.get(), pool.get());
        let mut bitmap = [0u64; FILTER_BLOCK / 64];
        let mut base = 0;
        while base < n {
            let len = FILTER_BLOCK.min(n - base);
            kern.eval_block(table, base, len, &mut v, &mut k, &mut pool);
            bitmap.fill(0);
            for i in 0..len {
                bitmap[i / 64] |= u64::from(v[i] & k[i]) << (i % 64);
            }
            for (wi, &word) in bitmap.iter().enumerate() {
                let mut m = word;
                while m != 0 {
                    let row = base + wi * 64 + m.trailing_zeros() as usize;
                    out.insert(proj.iter().map(|&i| table.columns[i].get(row)).collect())?;
                    m &= m - 1;
                }
            }
            base += len;
        }
        return Ok(out);
    }
    for row in 0..table.num_rows() {
        let keep = match filter {
            Some(f) => f.matches(table, row)?,
            None => true,
        };
        if keep {
            out.insert(proj.iter().map(|&i| table.columns[i].get(row)).collect())?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;

    fn sample() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ("id".into(), DataType::Int),
                ("score".into(), DataType::Float),
                ("tag".into(), DataType::Str),
            ]),
        );
        t.insert(vec![1.into(), 0.5.into(), "a".into()]).unwrap();
        t.insert(vec![2.into(), 1.5.into(), "b".into()]).unwrap();
        t.insert(vec![3.into(), Value::Null, "a".into()]).unwrap();
        t.insert(vec![4.into(), 2.5.into(), "c".into()]).unwrap();
        t
    }

    #[test]
    fn comparison_filters() {
        let t = sample();
        let f = Expr::cmp(CmpOp::Gt, Expr::col("score"), Expr::lit(1.0));
        let out = scan(&t, &[], Some(&f)).unwrap();
        assert_eq!(out.num_rows(), 2); // rows 2 and 4; NULL row rejected
        assert_eq!(out.column("id").unwrap().get_int(0), Some(2));
        assert_eq!(out.column("id").unwrap().get_int(1), Some(4));
    }

    #[test]
    fn and_or_not() {
        let t = sample();
        let f = Expr::cmp(CmpOp::Eq, Expr::col("tag"), Expr::lit("a")).and(Expr::cmp(
            CmpOp::Lt,
            Expr::col("id"),
            Expr::lit(3i64),
        ));
        assert_eq!(scan(&t, &[], Some(&f)).unwrap().num_rows(), 1);
        let g = Expr::cmp(CmpOp::Eq, Expr::col("tag"), Expr::lit("b")).or(Expr::cmp(
            CmpOp::Eq,
            Expr::col("tag"),
            Expr::lit("c"),
        ));
        assert_eq!(scan(&t, &[], Some(&g)).unwrap().num_rows(), 2);
        let n = Expr::Not(Box::new(Expr::cmp(
            CmpOp::Eq,
            Expr::col("tag"),
            Expr::lit("a"),
        )));
        assert_eq!(scan(&t, &[], Some(&n)).unwrap().num_rows(), 2);
    }

    #[test]
    fn null_semantics() {
        let t = sample();
        // score > 0 is NULL for row 3 → rejected.
        let f = Expr::cmp(CmpOp::Gt, Expr::col("score"), Expr::lit(0.0));
        assert_eq!(scan(&t, &[], Some(&f)).unwrap().num_rows(), 3);
        // IS NULL finds it.
        let isn = Expr::IsNull(Box::new(Expr::col("score")));
        let out = scan(&t, &[], Some(&isn)).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column("id").unwrap().get_int(0), Some(3));
        // NULL OR TRUE = TRUE.
        let or_true = Expr::cmp(CmpOp::Gt, Expr::col("score"), Expr::lit(0.0)).or(Expr::lit(1i64));
        assert_eq!(scan(&t, &[], Some(&or_true)).unwrap().num_rows(), 4);
    }

    #[test]
    fn projection() {
        let t = sample();
        let out = scan(&t, &["tag".into(), "id".into()], None).unwrap();
        assert_eq!(out.schema.len(), 2);
        assert_eq!(out.schema.fields[0].0, "tag");
        assert_eq!(out.num_rows(), 4);
        assert!(scan(&t, &["nope".into()], None).is_err());
    }

    #[test]
    fn mixed_numeric_comparison() {
        let t = sample();
        // Int literal against float column.
        let f = Expr::cmp(CmpOp::Ge, Expr::col("score"), Expr::lit(2i64));
        assert_eq!(scan(&t, &[], Some(&f)).unwrap().num_rows(), 1);
    }

    /// Schema + cell-exact equality; floats compare by bit pattern so NaN
    /// cells don't make identical tables "unequal".
    fn assert_tables_bit_equal(a: &Table, b: &Table, ctx: &str) {
        assert_eq!(a.schema, b.schema, "{ctx}: schema");
        assert_eq!(a.num_rows(), b.num_rows(), "{ctx}: row count");
        for (ca, cb) in a.columns.iter().zip(&b.columns) {
            assert_eq!(ca.nulls(), cb.nulls(), "{ctx}: null bitmap");
            match (ca.data(), cb.data()) {
                (ColumnData::Float(da), ColumnData::Float(db)) => {
                    let ba: Vec<u64> = da.iter().map(|x| x.to_bits()).collect();
                    let bb: Vec<u64> = db.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(ba, bb, "{ctx}: float bits");
                }
                (da, db) => assert_eq!(da, db, "{ctx}: column data"),
            }
        }
    }

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 11
    }

    /// A random table of > [`FILTER_BLOCK`] rows with nulls and NaN cells,
    /// so block boundaries, the ragged tail, and unknown-propagation all
    /// get exercised.
    fn random_table(seed: &mut u64, rows: usize) -> Table {
        let mut t = Table::new(
            "r",
            Schema::new(vec![
                ("a".into(), DataType::Int),
                ("b".into(), DataType::Float),
                ("c".into(), DataType::Str),
            ]),
        );
        let tags = ["", "x", "yy", "zzz"];
        for _ in 0..rows {
            let a = match lcg(seed) % 10 {
                0 => Value::Null,
                r => Value::Int((r as i64) - 5),
            };
            let b = match lcg(seed) % 12 {
                0 => Value::Null,
                1 => Value::Float(f64::NAN),
                r => Value::Float((r as f64) / 3.0 - 1.5),
            };
            let c = match lcg(seed) % 10 {
                0 => Value::Null,
                r => Value::Str(tags[(r as usize) % tags.len()].into()),
            };
            t.insert(vec![a, b, c]).unwrap();
        }
        t
    }

    /// A random expression tree over the `random_table` columns, including
    /// shapes the kernel must constant-fold (NULL literals, incomparable
    /// type pairs) or reject entirely (column-vs-column compares).
    fn random_expr(seed: &mut u64, depth: usize) -> Expr {
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        let op = ops[(lcg(seed) % 6) as usize];
        if depth == 0 || lcg(seed) % 3 == 0 {
            return match lcg(seed) % 12 {
                0 => Expr::cmp(op, Expr::col("a"), Expr::lit(0i64)),
                1 => Expr::cmp(op, Expr::col("a"), Expr::lit(0.5)),
                2 => Expr::cmp(op, Expr::lit(-1i64), Expr::col("a")),
                3 => Expr::cmp(op, Expr::col("b"), Expr::lit(0.25)),
                4 => Expr::cmp(op, Expr::col("b"), Expr::lit(1i64)),
                5 => Expr::cmp(op, Expr::lit(f64::NAN), Expr::col("b")),
                6 => Expr::cmp(op, Expr::col("c"), Expr::lit("x")),
                7 => Expr::cmp(op, Expr::col("c"), Expr::lit(3i64)), // incomparable
                8 => Expr::cmp(op, Expr::col("a"), Expr::Literal(Value::Null)),
                9 => Expr::IsNull(Box::new(Expr::col("b"))),
                10 => Expr::col("a"),
                _ => Expr::lit((lcg(seed) % 2) as i64),
            };
        }
        match lcg(seed) % 4 {
            0 => random_expr(seed, depth - 1).and(random_expr(seed, depth - 1)),
            1 => random_expr(seed, depth - 1).or(random_expr(seed, depth - 1)),
            2 => Expr::Not(Box::new(random_expr(seed, depth - 1))),
            _ => Expr::IsNull(Box::new(random_expr(seed, depth - 1))),
        }
    }

    #[test]
    fn block_kernel_matches_row_wise_on_random_trees() {
        let mut seed = 0x5eed_cafe_u64;
        let t = random_table(&mut seed, FILTER_BLOCK * 2 + 137);
        for case in 0..60 {
            let f = random_expr(&mut seed, 3);
            let fast = scan_with(&t, &[], Some(&f), true).unwrap();
            let slow = scan_with(&t, &[], Some(&f), false).unwrap();
            assert_tables_bit_equal(&fast, &slow, &format!("case {case}: {f:?}"));
        }
    }

    #[test]
    fn block_kernel_handles_block_boundaries_and_projection() {
        let mut seed = 97531u64;
        // Exactly one block, one block ± 1, and a tiny table.
        for rows in [1, FILTER_BLOCK - 1, FILTER_BLOCK, FILTER_BLOCK + 1] {
            let t = random_table(&mut seed, rows);
            let f = Expr::cmp(CmpOp::Ge, Expr::col("a"), Expr::lit(0i64))
                .or(Expr::IsNull(Box::new(Expr::col("b"))));
            let cols: Vec<String> = vec!["c".into(), "a".into()];
            let fast = scan_with(&t, &cols, Some(&f), true).unwrap();
            let slow = scan_with(&t, &cols, Some(&f), false).unwrap();
            assert_tables_bit_equal(&fast, &slow, &format!("rows {rows}"));
        }
    }

    #[test]
    fn unsupported_shapes_fall_back_row_wise() {
        let t = sample();
        // Column-vs-column compares are not kernelized; results still match.
        let f = Expr::cmp(CmpOp::Lt, Expr::col("id"), Expr::col("score"));
        let fast = scan_with(&t, &[], Some(&f), true).unwrap();
        let slow = scan_with(&t, &[], Some(&f), false).unwrap();
        assert_tables_bit_equal(&fast, &slow, "col-vs-col");
        // Unknown columns must still error through the fallback.
        let bad = Expr::cmp(CmpOp::Eq, Expr::col("nope"), Expr::lit(1i64));
        assert!(scan_with(&t, &[], Some(&bad), true).is_err());
    }

    #[test]
    fn existing_semantics_survive_the_kernel_path() {
        // Every handwritten scenario above, run through both paths.
        let t = sample();
        let exprs = [
            Expr::cmp(CmpOp::Gt, Expr::col("score"), Expr::lit(1.0)),
            Expr::cmp(CmpOp::Eq, Expr::col("tag"), Expr::lit("a")).and(Expr::cmp(
                CmpOp::Lt,
                Expr::col("id"),
                Expr::lit(3i64),
            )),
            Expr::Not(Box::new(Expr::cmp(
                CmpOp::Eq,
                Expr::col("tag"),
                Expr::lit("a"),
            ))),
            Expr::IsNull(Box::new(Expr::col("score"))),
            Expr::cmp(CmpOp::Gt, Expr::col("score"), Expr::lit(0.0)).or(Expr::lit(1i64)),
            Expr::cmp(CmpOp::Ge, Expr::col("score"), Expr::lit(2i64)),
        ];
        for (i, f) in exprs.iter().enumerate() {
            let fast = scan_with(&t, &[], Some(f), true).unwrap();
            let slow = scan_with(&t, &[], Some(f), false).unwrap();
            assert_tables_bit_equal(&fast, &slow, &format!("expr {i}"));
        }
    }
}
