//! Little-endian byte-cursor helpers.
//!
//! The codec modules ([`crate::persist`], [`crate::geom`]) write into plain
//! `Vec<u8>` buffers and read from advancing `&[u8]` cursors. Every reader
//! is bounds-checked and returns `None` on underrun, so decoding truncated
//! or corrupted input can never panic — the codecs turn `None` into
//! [`crate::StorageError::Corrupt`].

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u16_le(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64_le(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64_le(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64_le(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_slice(buf: &mut Vec<u8>, s: &[u8]) {
    buf.extend_from_slice(s);
}

/// Length-prefixed (u32 LE) string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32_le(buf, s.len() as u32);
    put_slice(buf, s.as_bytes());
}

/// Take the next `n` bytes off the cursor, or `None` if fewer remain.
pub fn get_bytes<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Some(head)
}

/// Take the next `N` bytes as a fixed-size array, or `None` on underrun.
/// Keeps the fixed-width readers below unwrap-free: `get_bytes` already
/// guarantees the length, and `try_into` on the slice would re-check it.
fn get_array<const N: usize>(buf: &mut &[u8]) -> Option<[u8; N]> {
    let head = get_bytes(buf, N)?;
    let mut out = [0u8; N];
    out.copy_from_slice(head);
    Some(out)
}

pub fn get_u8(buf: &mut &[u8]) -> Option<u8> {
    get_bytes(buf, 1).map(|b| b[0])
}

pub fn get_u16_le(buf: &mut &[u8]) -> Option<u16> {
    get_array(buf).map(u16::from_le_bytes)
}

pub fn get_u32_le(buf: &mut &[u8]) -> Option<u32> {
    get_array(buf).map(u32::from_le_bytes)
}

pub fn get_u64_le(buf: &mut &[u8]) -> Option<u64> {
    get_array(buf).map(u64::from_le_bytes)
}

pub fn get_i64_le(buf: &mut &[u8]) -> Option<i64> {
    get_array(buf).map(i64::from_le_bytes)
}

pub fn get_f64_le(buf: &mut &[u8]) -> Option<f64> {
    get_array(buf).map(f64::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16_le(&mut buf, 0xbeef);
        put_u32_le(&mut buf, 0xdead_beef);
        put_u64_le(&mut buf, u64::MAX - 1);
        put_i64_le(&mut buf, -42);
        put_f64_le(&mut buf, -1.25);
        put_slice(&mut buf, b"xyz");
        let mut cur: &[u8] = &buf;
        assert_eq!(get_u8(&mut cur), Some(7));
        assert_eq!(get_u16_le(&mut cur), Some(0xbeef));
        assert_eq!(get_u32_le(&mut cur), Some(0xdead_beef));
        assert_eq!(get_u64_le(&mut cur), Some(u64::MAX - 1));
        assert_eq!(get_i64_le(&mut cur), Some(-42));
        assert_eq!(get_f64_le(&mut cur), Some(-1.25));
        assert_eq!(get_bytes(&mut cur, 3), Some(&b"xyz"[..]));
        assert!(cur.is_empty());
    }

    #[test]
    fn underrun_returns_none_and_keeps_cursor() {
        let data = [1u8, 2, 3];
        let mut cur: &[u8] = &data;
        assert_eq!(get_u64_le(&mut cur), None);
        // A failed read must not consume anything.
        assert_eq!(cur.len(), 3);
        assert_eq!(get_u16_le(&mut cur), Some(0x0201));
        assert_eq!(get_u16_le(&mut cur), None);
        assert_eq!(get_u8(&mut cur), Some(3));
        assert_eq!(get_u8(&mut cur), None);
    }
}
