//! Write-ahead log for live ingestion.
//!
//! An append-only, checksummed, length-prefixed log of spatial writes.
//! Each record is framed as `[len: u32][crc32: u32][payload]` where the
//! CRC covers the payload only; payloads carry a monotonically increasing
//! sequence number, the target dataset name, and the operation (insert
//! with geometry bytes, delete, or a compaction checkpoint).
//!
//! The log is segmented: records append to `wal_NNNNNN.seg` files under
//! one directory, rotating to a fresh segment once the current one passes
//! the byte threshold. Replay-on-open walks the segments in order and
//! tolerates a torn tail: the first record whose frame is incomplete or
//! whose checksum mismatches marks the end of history — the file is
//! physically truncated there and any later segments are dropped. Replay
//! never panics on corrupt input.
//!
//! Durability policy is [`WalSync`]: `Always` fsyncs after every record,
//! `GroupCommit` batches records and fsyncs once per group (amortizing
//! the sync over [`GROUP_COMMIT_WINDOW`] appends or an explicit
//! [`Wal::sync`]), `Never` leaves flushing to the OS.
//!
//! Checkpoints drive log truncation: once every insert/delete in a sealed
//! segment is covered by its dataset's latest checkpoint, the segment is
//! deleted ([`Wal::gc_segments`], run after each checkpoint append), so
//! disk usage and replay time stay bounded under sustained ingest.

use crate::cursor::{
    get_bytes, get_u32_le, get_u64_le, get_u8, put_slice, put_str, put_u32_le, put_u64_le, put_u8,
};
use crate::geom::{decode_geometry, encode_geometry};
use crate::persist;
use crate::{Result, StorageError};
use spade_geometry::Geometry;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Default byte threshold after which the current segment is rotated.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

/// Records per fsync under [`WalSync::GroupCommit`].
pub const GROUP_COMMIT_WINDOW: u64 = 64;

/// When appends are made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalSync {
    /// fsync after every record (strongest durability, slowest).
    Always,
    /// fsync once per group of records — the classic group-commit
    /// amortization. A crash can lose at most the last unsynced group.
    GroupCommit,
    /// Never fsync; the OS flushes on close. Fastest, weakest.
    Never,
}

/// One logged operation against a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Insert (or replace) object `id` with `geom`.
    Insert { id: u32, geom: Geometry },
    /// Delete object `id`.
    Delete { id: u32 },
    /// Compaction checkpoint: every operation with `seq <= through_seq`
    /// for this dataset is folded into persisted `generation`.
    Checkpoint { generation: u64, through_seq: u64 },
}

/// A fully decoded log record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonic sequence number, global across datasets and segments.
    pub seq: u64,
    /// Target dataset name.
    pub dataset: String,
    pub op: WalOp,
}

/// Lifetime write-side counters, for metrics exposition.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    pub appends: u64,
    pub fsyncs: u64,
    pub bytes_written: u64,
    pub segments_rotated: u64,
    /// Sealed segments deleted because a checkpoint covered every record
    /// in them (log truncation).
    pub segments_deleted: u64,
}

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_CHECKPOINT: u8 = 3;

/// Standard CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64_le(&mut buf, rec.seq);
    put_str(&mut buf, &rec.dataset);
    match &rec.op {
        WalOp::Insert { id, geom } => {
            put_u8(&mut buf, OP_INSERT);
            put_u32_le(&mut buf, *id);
            let g = encode_geometry(geom);
            put_u32_le(&mut buf, g.len() as u32);
            put_slice(&mut buf, &g);
        }
        WalOp::Delete { id } => {
            put_u8(&mut buf, OP_DELETE);
            put_u32_le(&mut buf, *id);
        }
        WalOp::Checkpoint {
            generation,
            through_seq,
        } => {
            put_u8(&mut buf, OP_CHECKPOINT);
            put_u64_le(&mut buf, *generation);
            put_u64_le(&mut buf, *through_seq);
        }
    }
    buf
}

fn decode_payload(mut cur: &[u8]) -> Result<WalRecord> {
    let corrupt = || StorageError::Corrupt("wal payload truncated".into());
    let seq = get_u64_le(&mut cur).ok_or_else(corrupt)?;
    let name_len = get_u32_le(&mut cur).ok_or_else(corrupt)? as usize;
    let name_bytes = get_bytes(&mut cur, name_len).ok_or_else(corrupt)?;
    let dataset = String::from_utf8(name_bytes.to_vec())
        .map_err(|_| StorageError::Corrupt("wal dataset name not utf-8".into()))?;
    let op = match get_u8(&mut cur).ok_or_else(corrupt)? {
        OP_INSERT => {
            let id = get_u32_le(&mut cur).ok_or_else(corrupt)?;
            let glen = get_u32_le(&mut cur).ok_or_else(corrupt)? as usize;
            let gbytes = get_bytes(&mut cur, glen).ok_or_else(corrupt)?;
            WalOp::Insert {
                id,
                geom: decode_geometry(gbytes)?,
            }
        }
        OP_DELETE => WalOp::Delete {
            id: get_u32_le(&mut cur).ok_or_else(corrupt)?,
        },
        OP_CHECKPOINT => WalOp::Checkpoint {
            generation: get_u64_le(&mut cur).ok_or_else(corrupt)?,
            through_seq: get_u64_le(&mut cur).ok_or_else(corrupt)?,
        },
        t => {
            return Err(StorageError::Corrupt(format!("wal: unknown op tag {t}")));
        }
    };
    Ok(WalRecord { seq, dataset, op })
}

/// Encode one record as a self-contained payload blob (no frame). The
/// public entry point for shipping records over the wire; the inverse is
/// [`decode_record`].
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    encode_payload(rec)
}

/// Decode a payload blob produced by [`encode_record`].
pub fn decode_record(buf: &[u8]) -> Result<WalRecord> {
    decode_payload(buf)
}

/// Frame a payload: `[len][crc][payload]`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 8);
    put_u32_le(&mut buf, payload.len() as u32);
    put_u32_le(&mut buf, crc32(payload));
    put_slice(&mut buf, payload);
    buf
}

fn segment_name(index: u64) -> String {
    format!("wal_{index:06}.seg")
}

fn segment_index(name: &str) -> Option<u64> {
    name.strip_prefix("wal_")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Scan one segment's bytes, pushing decoded records. Returns the byte
/// offset of the first bad (torn/corrupt) frame, or `None` if the whole
/// segment was clean. `expect_seq` threads the required next sequence
/// number across segments: appends assign consecutive sequences, so a
/// record that skips ahead betrays a tear that happened to land on a frame
/// boundary (the frames after it decode fine but follow lost history).
fn scan_segment(
    data: &[u8],
    out: &mut Vec<WalRecord>,
    expect_seq: &mut Option<u64>,
) -> Option<usize> {
    let mut off = 0usize;
    while off < data.len() {
        let mut cur = &data[off..];
        let Some(len) = get_u32_le(&mut cur) else {
            return Some(off);
        };
        let Some(crc) = get_u32_le(&mut cur) else {
            return Some(off);
        };
        let Some(payload) = get_bytes(&mut cur, len as usize) else {
            return Some(off); // torn tail: frame longer than the file
        };
        if crc32(payload) != crc {
            return Some(off);
        }
        match decode_payload(payload) {
            Ok(rec) => {
                if expect_seq.is_some_and(|e| rec.seq != e) {
                    return Some(off); // sequence gap: frame-aligned tear
                }
                *expect_seq = Some(rec.seq + 1);
                out.push(rec);
            }
            Err(_) => return Some(off),
        }
        off += 8 + len as usize;
    }
    None
}

/// The write-ahead log: an open segment plus replayed history.
pub struct Wal {
    dir: PathBuf,
    file: File,
    segment_index: u64,
    segment_bytes: u64,
    segment_max_bytes: u64,
    sync: WalSync,
    unsynced: u64,
    next_seq: u64,
    stats: WalStats,
    /// Sealed (rotated-away) segments still on disk, as
    /// `(segment index, last sequence recorded in it)`, ascending. A
    /// sealed segment whose last sequence is below every dataset's lowest
    /// pending sequence holds only checkpoint-covered history and is
    /// deleted by [`Wal::gc_segments`].
    sealed: Vec<(u64, u64)>,
    /// Per dataset: sequences of insert/delete records not yet covered by
    /// a checkpoint. Drives log truncation; rebuilt from replay on open.
    pending: BTreeMap<String, std::collections::BTreeSet<u64>>,
}

impl Wal {
    /// Open (creating if needed) the log under `dir`, replaying existing
    /// segments. Returns the writer positioned for append plus every
    /// surviving record in order. A torn tail is truncated in place.
    pub fn open(dir: impl Into<PathBuf>, sync: WalSync) -> Result<(Wal, Vec<WalRecord>)> {
        Self::open_with(dir, sync, DEFAULT_SEGMENT_BYTES)
    }

    /// [`Wal::open`] with an explicit segment rotation threshold.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        sync: WalSync,
        segment_max_bytes: u64,
    ) -> Result<(Wal, Vec<WalRecord>)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut segments: Vec<u64> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| segment_index(&e.file_name().to_string_lossy()))
            .collect();
        segments.sort_unstable();

        let mut records = Vec::new();
        let mut last_index = 1u64;
        let mut truncated = false;
        let mut expect_seq = None;
        let mut sealed: Vec<(u64, u64)> = Vec::new();
        for (i, &seg) in segments.iter().enumerate() {
            last_index = seg;
            let path = dir.join(segment_name(seg));
            let data = std::fs::read(&path)?;
            if let Some(bad_at) = scan_segment(&data, &mut records, &mut expect_seq) {
                // Torn tail: cut the file at the last good frame and drop
                // everything after it, including later segments — records
                // past a bad frame have no trustworthy ordering.
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(bad_at as u64)?;
                f.sync_all()?;
                for &later in &segments[i + 1..] {
                    let _ = std::fs::remove_file(dir.join(segment_name(later)));
                }
                truncated = true;
                break;
            }
            if i + 1 < segments.len() {
                // Cleanly scanned and not the tail: this segment is sealed.
                // Its last sequence is whatever replay has seen so far (an
                // empty segment inherits its predecessor's, which keeps the
                // "all records <= last_seq" GC invariant trivially true).
                sealed.push((seg, records.last().map_or(0, |r| r.seq)));
            }
        }
        let _ = truncated;

        // Rebuild the truncation bookkeeping: which sequences per dataset
        // are not yet covered by a checkpoint.
        let mut pending: BTreeMap<String, std::collections::BTreeSet<u64>> = BTreeMap::new();
        for rec in &records {
            match &rec.op {
                WalOp::Checkpoint { through_seq, .. } => {
                    if let Some(set) = pending.get_mut(&rec.dataset) {
                        *set = set.split_off(&(through_seq + 1));
                        if set.is_empty() {
                            pending.remove(&rec.dataset);
                        }
                    }
                }
                _ => {
                    pending
                        .entry(rec.dataset.clone())
                        .or_default()
                        .insert(rec.seq);
                }
            }
        }

        let next_seq = records.iter().map(|r| r.seq + 1).max().unwrap_or(1);
        let path = dir.join(segment_name(last_index));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let segment_bytes = file.metadata()?.len();
        // The segment's directory entry (and any truncation/removal above)
        // must be durable before records appended to it are acknowledged:
        // without this, a crash can forget a freshly created segment file
        // entirely, silently dropping every record in it.
        persist::sync_dir(&dir)?;
        Ok((
            Wal {
                dir,
                file,
                segment_index: last_index,
                segment_bytes,
                segment_max_bytes,
                sync,
                unsynced: 0,
                next_seq,
                stats: WalStats::default(),
                sealed,
                pending,
            },
            records,
        ))
    }

    /// Append one operation, returning its assigned sequence number. The
    /// record is durable on return iff the sync policy says so.
    pub fn append(&mut self, dataset: &str, op: WalOp) -> Result<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let rec = WalRecord {
            seq,
            dataset: dataset.to_string(),
            op,
        };
        let buf = frame(&encode_payload(&rec));
        self.rotate_if_needed(buf.len() as u64)?;
        self.file.write_all(&buf)?;
        self.segment_bytes += buf.len() as u64;
        self.stats.appends += 1;
        self.stats.bytes_written += buf.len() as u64;
        self.unsynced += 1;
        let mut checkpointed = false;
        match &rec.op {
            WalOp::Checkpoint { through_seq, .. } => {
                if let Some(set) = self.pending.get_mut(&rec.dataset) {
                    *set = set.split_off(&(through_seq + 1));
                    if set.is_empty() {
                        self.pending.remove(&rec.dataset);
                    }
                }
                checkpointed = true;
            }
            _ => {
                self.pending
                    .entry(rec.dataset.clone())
                    .or_default()
                    .insert(seq);
            }
        }
        match self.sync {
            WalSync::Always => self.fsync()?,
            WalSync::GroupCommit => {
                if self.unsynced >= GROUP_COMMIT_WINDOW {
                    self.fsync()?;
                }
            }
            WalSync::Never => {}
        }
        if checkpointed {
            self.gc_segments()?;
        }
        Ok(seq)
    }

    /// Delete sealed segments every record of which is covered by a
    /// dataset checkpoint, bounding disk usage and replay time under
    /// sustained ingest. Safe because a checkpoint is only appended after
    /// the generation it describes is durable (`save_manifest` precedes
    /// the checkpoint in the service's compaction protocol), so recovery
    /// never needs the deleted records — the manifest's folded-through
    /// sequence already covers them. Returns the number of segments
    /// removed. Runs automatically after every checkpoint append.
    pub fn gc_segments(&mut self) -> Result<usize> {
        // Lowest sequence any dataset still needs replayed; everything
        // strictly below it is checkpoint-covered history.
        let floor = self
            .pending
            .values()
            .filter_map(|s| s.first().copied())
            .min()
            .unwrap_or(self.next_seq);
        let covered: Vec<u64> = self
            .sealed
            .iter()
            .filter(|&&(_, last_seq)| last_seq < floor)
            .map(|&(index, _)| index)
            .collect();
        if covered.is_empty() {
            return Ok(0);
        }
        for &index in &covered {
            // A missing file (e.g. deleted by a previous crashed GC) is
            // already the desired state.
            let _ = std::fs::remove_file(self.dir.join(segment_name(index)));
        }
        self.sealed.retain(|&(index, _)| !covered.contains(&index));
        persist::sync_dir(&self.dir)?;
        self.stats.segments_deleted += covered.len() as u64;
        Ok(covered.len())
    }

    /// Append a batch of operations with a single fsync at the end (for
    /// `Always` and `GroupCommit`); the group-commit fast path.
    pub fn append_batch(&mut self, dataset: &str, ops: Vec<WalOp>) -> Result<Vec<u64>> {
        let mut seqs = Vec::with_capacity(ops.len());
        let saved = self.sync;
        self.sync = WalSync::Never;
        let mut result = Ok(());
        for op in ops {
            match self.append(dataset, op) {
                Ok(s) => seqs.push(s),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.sync = saved;
        result?;
        if !matches!(self.sync, WalSync::Never) {
            self.fsync()?;
        }
        Ok(seqs)
    }

    /// Force everything written so far to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced > 0 {
            self.fsync()?;
        }
        Ok(())
    }

    fn fsync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    fn rotate_if_needed(&mut self, incoming: u64) -> Result<()> {
        if self.segment_bytes > 0 && self.segment_bytes + incoming > self.segment_max_bytes {
            // Seal the old segment durably before switching. `next_seq`
            // has already been advanced past the record that triggered
            // this rotation — and that record lands in the *new* segment —
            // so the old segment's last record is `next_seq - 2`.
            self.fsync()?;
            self.sealed
                .push((self.segment_index, self.next_seq.saturating_sub(2)));
            self.segment_index += 1;
            let path = self.dir.join(segment_name(self.segment_index));
            self.file = OpenOptions::new().create(true).append(true).open(&path)?;
            // fsync the directory so the new segment's entry is durable
            // before any record in it is acknowledged — `fsync()` alone
            // syncs file contents, not the directory entry, and a crash
            // could otherwise forget the whole segment.
            persist::sync_dir(&self.dir)?;
            self.segment_bytes = 0;
            self.stats.segments_rotated += 1;
        }
        Ok(())
    }

    /// Iterate every surviving record with `seq > since`, in order, across
    /// sealed segments and the open tail. This is the replication shipping
    /// primitive: a follower hands the leader its acknowledged sequence and
    /// receives everything after it.
    ///
    /// The iterator reads segment files lazily and is tolerant of the live
    /// tail: a torn or corrupt frame, a sequence gap, or a segment deleted
    /// underneath it (concurrent GC) all terminate the stream cleanly
    /// after the last good record — it never yields garbage and never
    /// errors mid-stream. Sealed segments wholly covered by `since` are
    /// skipped without being read.
    pub fn records_since(&self, since: u64) -> WalTail {
        let mut segments = Vec::with_capacity(self.sealed.len() + 1);
        let mut expect_seq = None;
        for &(index, last_seq) in &self.sealed {
            if last_seq <= since {
                // Every record here is `<= since`; skip the file entirely.
                // Sequences are consecutive across segments, so the next
                // segment must start right after this one's last record.
                expect_seq = Some(last_seq + 1);
            } else {
                segments.push(index);
            }
        }
        segments.push(self.segment_index);
        WalTail {
            dir: self.dir.clone(),
            segments: segments.into_iter(),
            buf: Vec::new().into_iter(),
            expect_seq,
            since,
            done: false,
        }
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current segment index (1-based).
    pub fn segment(&self) -> u64 {
        self.segment_index
    }

    pub fn stats(&self) -> WalStats {
        self.stats
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Lazy record iterator returned by [`Wal::records_since`].
///
/// Owns its snapshot of the segment list, so it stays valid after the
/// `Wal` lock is released; each segment file is read only when the
/// iteration reaches it. Any torn frame, checksum mismatch, sequence gap,
/// or missing file ends the stream cleanly (subsequent `next` calls keep
/// returning `None`).
pub struct WalTail {
    dir: PathBuf,
    segments: std::vec::IntoIter<u64>,
    buf: std::vec::IntoIter<WalRecord>,
    expect_seq: Option<u64>,
    since: u64,
    done: bool,
}

impl Iterator for WalTail {
    type Item = WalRecord;

    fn next(&mut self) -> Option<WalRecord> {
        loop {
            if let Some(rec) = self.buf.next() {
                if rec.seq > self.since {
                    return Some(rec);
                }
                continue;
            }
            if self.done {
                return None;
            }
            let Some(seg) = self.segments.next() else {
                self.done = true;
                return None;
            };
            let Ok(data) = std::fs::read(self.dir.join(segment_name(seg))) else {
                // Deleted underneath us (GC racing the read): everything
                // before it was already yielded; stop here.
                self.done = true;
                return None;
            };
            let mut recs = Vec::new();
            if scan_segment(&data, &mut recs, &mut self.expect_seq).is_some() {
                // Torn/corrupt frame: yield the clean prefix, then stop.
                self.done = true;
                self.segments = Vec::new().into_iter();
            }
            self.buf = recs.into_iter();
        }
    }
}

/// Per-dataset recovery state distilled from a replayed record stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PendingWrites {
    /// Generation of the last checkpoint seen (0 if none).
    pub generation: u64,
    /// Sequence folded into that generation (0 if none).
    pub through_seq: u64,
    /// Insert/Delete records with `seq > through_seq`, in log order.
    pub ops: Vec<WalRecord>,
}

/// Fold a replayed stream into per-dataset pending writes: operations not
/// yet covered by a checkpoint, to be re-applied to each dataset's delta
/// store on recovery.
pub fn pending_by_dataset(records: &[WalRecord]) -> BTreeMap<String, PendingWrites> {
    let mut out: BTreeMap<String, PendingWrites> = BTreeMap::new();
    for rec in records {
        let entry = out.entry(rec.dataset.clone()).or_default();
        match &rec.op {
            WalOp::Checkpoint {
                generation,
                through_seq,
            } => {
                if *through_seq >= entry.through_seq {
                    entry.generation = *generation;
                    entry.through_seq = *through_seq;
                    entry.ops.retain(|r| r.seq > *through_seq);
                }
            }
            _ => entry.ops.push(rec.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_geometry::Point;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("spade-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn pt(x: f64, y: f64) -> Geometry {
        Geometry::Point(Point::new(x, y))
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_and_replay() {
        let dir = tmp("roundtrip");
        {
            let (mut wal, old) = Wal::open(&dir, WalSync::Always).unwrap();
            assert!(old.is_empty());
            wal.append(
                "a",
                WalOp::Insert {
                    id: 1,
                    geom: pt(1.0, 2.0),
                },
            )
            .unwrap();
            wal.append("b", WalOp::Delete { id: 7 }).unwrap();
            wal.append(
                "a",
                WalOp::Checkpoint {
                    generation: 3,
                    through_seq: 1,
                },
            )
            .unwrap();
        }
        let (wal, recs) = Wal::open(&dir, WalSync::Always).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].seq, 1);
        assert_eq!(recs[0].dataset, "a");
        assert_eq!(recs[1].op, WalOp::Delete { id: 7 });
        assert_eq!(wal.next_seq(), 4);
        let pending = pending_by_dataset(&recs);
        assert_eq!(pending["a"].generation, 3);
        assert!(pending["a"].ops.is_empty()); // folded by the checkpoint
        assert_eq!(pending["b"].ops.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_to_prefix() {
        let dir = tmp("torn");
        let full = {
            let (mut wal, _) = Wal::open(&dir, WalSync::Always).unwrap();
            for i in 0..10u32 {
                wal.append(
                    "d",
                    WalOp::Insert {
                        id: i,
                        geom: pt(i as f64, 0.0),
                    },
                )
                .unwrap();
            }
            std::fs::read(dir.join(segment_name(1))).unwrap()
        };
        // Truncate at every byte boundary; replay must recover a prefix.
        for cut in 0..=full.len() {
            let d2 = tmp(&format!("torn-cut{cut}"));
            std::fs::create_dir_all(&d2).unwrap();
            std::fs::write(d2.join(segment_name(1)), &full[..cut]).unwrap();
            let (_, recs) = Wal::open(&d2, WalSync::Never).unwrap();
            // Records form a prefix 0..n of the original writes.
            for (i, r) in recs.iter().enumerate() {
                assert_eq!(
                    r.op,
                    WalOp::Insert {
                        id: i as u32,
                        geom: pt(i as f64, 0.0)
                    }
                );
            }
            std::fs::remove_dir_all(&d2).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_middle_byte_stops_replay_before_it() {
        let dir = tmp("corrupt");
        {
            let (mut wal, _) = Wal::open(&dir, WalSync::Always).unwrap();
            for i in 0..5u32 {
                wal.append(
                    "d",
                    WalOp::Insert {
                        id: i,
                        geom: pt(0.0, 0.0),
                    },
                )
                .unwrap();
            }
        }
        let path = dir.join(segment_name(1));
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let (_, recs) = Wal::open(&dir, WalSync::Never).unwrap();
        assert!(recs.len() < 5);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let dir = tmp("rotate");
        {
            // Tiny segments force rotation every couple of records.
            let (mut wal, _) = Wal::open_with(&dir, WalSync::Never, 128).unwrap();
            for i in 0..50u32 {
                wal.append(
                    "d",
                    WalOp::Insert {
                        id: i,
                        geom: pt(i as f64, 1.0),
                    },
                )
                .unwrap();
            }
            assert!(wal.segment() > 1);
            assert!(wal.stats().segments_rotated > 0);
        }
        let (_, recs) = Wal::open(&dir, WalSync::Never).unwrap();
        assert_eq!(recs.len(), 50);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_defers_fsync() {
        let dir = tmp("group");
        let (mut wal, _) = Wal::open(&dir, WalSync::GroupCommit).unwrap();
        for i in 0..10u32 {
            wal.append("d", WalOp::Delete { id: i }).unwrap();
        }
        assert_eq!(wal.stats().fsyncs, 0, "under the window, no fsync yet");
        wal.sync().unwrap();
        assert_eq!(wal.stats().fsyncs, 1);
        let mut always = Wal::open(tmp("always"), WalSync::Always).unwrap().0;
        for i in 0..10u32 {
            always.append("d", WalOp::Delete { id: i }).unwrap();
        }
        assert_eq!(always.stats().fsyncs, 10);
        std::fs::remove_dir_all(&dir).unwrap();
        let _ = std::fs::remove_dir_all(always.dir());
    }

    #[test]
    fn checkpoint_reclaims_covered_segments() {
        let dir = tmp("walgc");
        let count_segments = |d: &PathBuf| {
            std::fs::read_dir(d)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| segment_index(&e.file_name().to_string_lossy()).is_some())
                .count()
        };
        {
            // Tiny segments so fifty inserts seal a stack of them.
            let (mut wal, _) = Wal::open_with(&dir, WalSync::Never, 128).unwrap();
            for i in 0..50u32 {
                wal.append(
                    "d",
                    WalOp::Insert {
                        id: i,
                        geom: pt(i as f64, 1.0),
                    },
                )
                .unwrap();
            }
            let before = count_segments(&dir);
            assert!(before > 2);
            let through = wal.next_seq() - 1;
            wal.append(
                "d",
                WalOp::Checkpoint {
                    generation: 2,
                    through_seq: through,
                },
            )
            .unwrap();
            // Every sealed segment held only checkpoint-covered records
            // (the checkpoint append itself may rotate and seal one more).
            assert_eq!(count_segments(&dir), 1);
            assert!(wal.stats().segments_deleted as usize >= before - 1);
        }
        // The truncated log replays: the checkpoint survives, sequence
        // numbering continues where it left off.
        let (mut wal, recs) = Wal::open(&dir, WalSync::Never).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(matches!(recs[0].op, WalOp::Checkpoint { .. }));
        assert_eq!(wal.append("d", WalOp::Delete { id: 1 }).unwrap(), 52);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_checkpoint_keeps_needed_segments() {
        let dir = tmp("walgc-partial");
        let (mut wal, _) = Wal::open_with(&dir, WalSync::Never, 128).unwrap();
        // Interleave two datasets; checkpoint only one of them. Segments
        // holding the other dataset's pending records must survive.
        for i in 0..40u32 {
            let ds = if i.is_multiple_of(2) { "a" } else { "b" };
            wal.append(
                ds,
                WalOp::Insert {
                    id: i,
                    geom: pt(i as f64, 0.0),
                },
            )
            .unwrap();
        }
        let through = wal.next_seq() - 1;
        wal.append(
            "a",
            WalOp::Checkpoint {
                generation: 2,
                through_seq: through,
            },
        )
        .unwrap();
        // GC may only reclaim segments wholly below b's lowest pending
        // sequence; every b record must survive replay.
        let (_, recs) = Wal::open(&dir, WalSync::Never).unwrap();
        let b_ids: Vec<u32> = recs
            .iter()
            .filter(|r| r.dataset == "b")
            .map(|r| match r.op {
                WalOp::Insert { id, .. } => id,
                _ => panic!("unexpected op"),
            })
            .collect();
        assert_eq!(b_ids, (0..40u32).filter(|i| i % 2 == 1).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_blob_roundtrip() {
        let rec = WalRecord {
            seq: 42,
            dataset: "ns:taxi".into(),
            op: WalOp::Insert {
                id: 9,
                geom: pt(3.5, -1.25),
            },
        };
        assert_eq!(decode_record(&encode_record(&rec)).unwrap(), rec);
        let chk = WalRecord {
            seq: 43,
            dataset: "d".into(),
            op: WalOp::Checkpoint {
                generation: 7,
                through_seq: 42,
            },
        };
        assert_eq!(decode_record(&encode_record(&chk)).unwrap(), chk);
        assert!(decode_record(&encode_record(&rec)[..5]).is_err());
    }

    #[test]
    fn records_since_spans_segment_rotation() {
        let dir = tmp("tail-rotate");
        // Tiny segments force rotation every couple of records, so the
        // tail must stitch sealed segments and the open one together.
        let (mut wal, _) = Wal::open_with(&dir, WalSync::Never, 128).unwrap();
        for i in 0..50u32 {
            wal.append(
                "d",
                WalOp::Insert {
                    id: i,
                    geom: pt(i as f64, 1.0),
                },
            )
            .unwrap();
        }
        assert!(wal.segment() > 1);
        let all: Vec<WalRecord> = wal.records_since(0).collect();
        assert_eq!(all.len(), 50);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
        }
        // A mid-stream start, landing inside a sealed segment.
        let tail: Vec<WalRecord> = wal.records_since(23).collect();
        assert_eq!(tail.len(), 27);
        assert_eq!(tail[0].seq, 24);
        // Starting at the newest record yields nothing.
        assert!(wal.records_since(50).next().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn records_since_after_gc_yields_surviving_suffix() {
        let dir = tmp("tail-gc");
        let (mut wal, _) = Wal::open_with(&dir, WalSync::Never, 128).unwrap();
        for i in 0..50u32 {
            wal.append(
                "d",
                WalOp::Insert {
                    id: i,
                    geom: pt(i as f64, 1.0),
                },
            )
            .unwrap();
        }
        let through = wal.next_seq() - 1;
        // The checkpoint GCs every sealed segment; asking for history from
        // before the GC floor must still stream cleanly (the surviving
        // records all sit in the open segment).
        let ck_seq = wal
            .append(
                "d",
                WalOp::Checkpoint {
                    generation: 2,
                    through_seq: through,
                },
            )
            .unwrap();
        assert!(wal.stats().segments_deleted > 0);
        let tail: Vec<WalRecord> = wal.records_since(0).collect();
        assert_eq!(tail.last().unwrap().seq, ck_seq);
        for w in tail.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        // New appends after the GC keep flowing from the same call shape.
        let s = wal.append("d", WalOp::Delete { id: 3 }).unwrap();
        let after: Vec<WalRecord> = wal.records_since(ck_seq).collect();
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].seq, s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn records_since_stops_cleanly_at_torn_tail() {
        let dir = tmp("tail-torn");
        let (mut wal, _) = Wal::open(&dir, WalSync::Never).unwrap();
        for i in 0..10u32 {
            wal.append(
                "d",
                WalOp::Insert {
                    id: i,
                    geom: pt(i as f64, 0.0),
                },
            )
            .unwrap();
        }
        // Simulate a concurrent half-written append by truncating the open
        // segment mid-frame on disk (the writer's own state is untouched).
        let path = wal.dir().join(segment_name(wal.segment()));
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let recs: Vec<WalRecord> = wal.records_since(0).collect();
        assert_eq!(recs.len(), 9, "clean prefix only, no error");
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_batch_single_fsync() {
        let dir = tmp("batch");
        let (mut wal, _) = Wal::open(&dir, WalSync::Always).unwrap();
        let ops: Vec<WalOp> = (0..20u32).map(|i| WalOp::Delete { id: i }).collect();
        let seqs = wal.append_batch("d", ops).unwrap();
        assert_eq!(seqs.len(), 20);
        assert_eq!(wal.stats().fsyncs, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
