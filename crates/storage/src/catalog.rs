//! The database catalog: named tables, with optional disk attachment.

use crate::persist;
use crate::table::{Schema, Table};
use crate::{Result, StorageError};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::RwLock;

/// An embedded database: a catalog of tables, optionally backed by a
/// directory on disk (one file per table, as [`persist`] encodes them).
#[derive(Debug, Default)]
pub struct Database {
    tables: RwLock<BTreeMap<String, Table>>,
    dir: Option<PathBuf>,
}

impl Database {
    /// An in-memory database.
    pub fn in_memory() -> Self {
        Database::default()
    }

    /// A disk-backed database rooted at `dir` (created if missing). Existing
    /// table files are *not* eagerly loaded; use [`Database::load_table`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Database {
            tables: RwLock::new(BTreeMap::new()),
            dir: Some(dir),
        })
    }

    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        let mut tables = self.tables.write().unwrap();
        if tables.contains_key(name) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        tables.insert(name.to_string(), Table::new(name, schema));
        Ok(())
    }

    pub fn drop_table(&self, name: &str) -> Result<()> {
        let removed = self.tables.write().unwrap().remove(name);
        if removed.is_none() {
            return Err(StorageError::UnknownTable(name.to_string()));
        }
        if let Some(path) = self.table_path(name) {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().unwrap().contains_key(name)
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().unwrap().keys().cloned().collect()
    }

    /// Run `f` with shared access to a table.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&Table) -> R) -> Result<R> {
        let tables = self.tables.read().unwrap();
        let t = tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        Ok(f(t))
    }

    /// Run `f` with exclusive access to a table.
    pub fn with_table_mut<R>(&self, name: &str, f: impl FnOnce(&mut Table) -> R) -> Result<R> {
        let mut tables = self.tables.write().unwrap();
        let t = tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        Ok(f(t))
    }

    /// Register an already-built table (replacing any same-named one).
    pub fn put_table(&self, table: Table) {
        self.tables
            .write()
            .unwrap()
            .insert(table.name.clone(), table);
    }

    /// Take a table out of the catalog.
    pub fn take_table(&self, name: &str) -> Result<Table> {
        self.tables
            .write()
            .unwrap()
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    fn table_path(&self, name: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{name}.tbl")))
    }

    /// Persist a table to the backing directory.
    pub fn save_table(&self, name: &str) -> Result<u64> {
        let path = self
            .table_path(name)
            .ok_or_else(|| StorageError::Io("database is in-memory".into()))?;
        self.with_table(name, |t| persist::write_table(&path, t))?
    }

    /// Load a table file from the backing directory into the catalog.
    /// Returns the number of bytes read (the I/O accounting the engine's
    /// time breakdown uses).
    pub fn load_table(&self, name: &str) -> Result<u64> {
        let path = self
            .table_path(name)
            .ok_or_else(|| StorageError::Io("database is in-memory".into()))?;
        let (table, bytes) = persist::read_table(&path)?;
        self.tables.write().unwrap().insert(name.to_string(), table);
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DataType;
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id".into(), DataType::Int),
            ("name".into(), DataType::Str),
        ])
    }

    #[test]
    fn create_insert_query() {
        let db = Database::in_memory();
        db.create_table("t", schema()).unwrap();
        db.with_table_mut("t", |t| t.insert(vec![1.into(), "a".into()]))
            .unwrap()
            .unwrap();
        let n = db.with_table("t", |t| t.num_rows()).unwrap();
        assert_eq!(n, 1);
        assert!(db.has_table("t"));
        assert_eq!(db.table_names(), vec!["t".to_string()]);
    }

    #[test]
    fn duplicate_and_missing_tables() {
        let db = Database::in_memory();
        db.create_table("t", schema()).unwrap();
        assert!(matches!(
            db.create_table("t", schema()),
            Err(StorageError::DuplicateTable(_))
        ));
        assert!(matches!(
            db.with_table("nope", |_| ()),
            Err(StorageError::UnknownTable(_))
        ));
        db.drop_table("t").unwrap();
        assert!(!db.has_table("t"));
        assert!(db.drop_table("t").is_err());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("spade-cat-{}", std::process::id()));
        let db = Database::open(&dir).unwrap();
        db.create_table("t", schema()).unwrap();
        db.with_table_mut("t", |t| {
            t.insert(vec![1.into(), "hello".into()]).unwrap();
            t.insert(vec![2.into(), Value::Null]).unwrap();
        })
        .unwrap();
        let written = db.save_table("t").unwrap();
        assert!(written > 0);

        let db2 = Database::open(&dir).unwrap();
        let read = db2.load_table("t").unwrap();
        assert_eq!(read, written);
        let rows = db2.with_table("t", |t| (t.num_rows(), t.row(1))).unwrap();
        assert_eq!(rows.0, 2);
        assert_eq!(rows.1, vec![Value::Int(2), Value::Null]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_has_no_persistence() {
        let db = Database::in_memory();
        db.create_table("t", schema()).unwrap();
        assert!(db.save_table("t").is_err());
    }

    #[test]
    fn put_and_take() {
        let db = Database::in_memory();
        let t = Table::new("x", schema());
        db.put_table(t);
        assert!(db.has_table("x"));
        let taken = db.take_table("x").unwrap();
        assert_eq!(taken.name, "x");
        assert!(!db.has_table("x"));
    }
}
