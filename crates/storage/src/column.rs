//! Typed columns: the unit of storage and I/O.

use crate::value::Value;
use crate::{Result, StorageError};

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Str,
    Bytes,
}

impl DataType {
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "TEXT",
            DataType::Bytes => "BLOB",
        }
    }

    pub fn parse(s: &str) -> Option<DataType> {
        match s.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => Some(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Some(DataType::Float),
            "TEXT" | "VARCHAR" | "STRING" => Some(DataType::Str),
            "BLOB" | "BYTES" => Some(DataType::Bytes),
            _ => None,
        }
    }
}

/// A typed column with a null bitmap. Values are stored densely (SoA), the
/// layout a column store scans and serializes page-wise.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
    Bytes(Vec<Vec<u8>>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    data: ColumnData,
    nulls: Vec<bool>,
}

impl Column {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        let data = match dtype {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
            DataType::Bytes => ColumnData::Bytes(Vec::new()),
        };
        Column {
            name: name.into(),
            data,
            nulls: Vec::new(),
        }
    }

    pub fn data_type(&self) -> DataType {
        match &self.data {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Bytes(_) => DataType::Bytes,
        }
    }

    pub fn len(&self) -> usize {
        self.nulls.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nulls.is_empty()
    }

    /// Append a value, checking the type (nulls always allowed).
    pub fn push(&mut self, v: Value) -> Result<()> {
        let mismatch = StorageError::TypeMismatch {
            column: self.name.clone(),
            expected: self.data_type(),
        };
        match (&mut self.data, v) {
            (_, Value::Null) => {
                match &mut self.data {
                    ColumnData::Int(d) => d.push(0),
                    ColumnData::Float(d) => d.push(0.0),
                    ColumnData::Str(d) => d.push(String::new()),
                    ColumnData::Bytes(d) => d.push(Vec::new()),
                }
                self.nulls.push(true);
                return Ok(());
            }
            (ColumnData::Int(d), Value::Int(v)) => d.push(v),
            // Ints widen into float columns.
            (ColumnData::Float(d), Value::Int(v)) => d.push(v as f64),
            (ColumnData::Float(d), Value::Float(v)) => d.push(v),
            (ColumnData::Str(d), Value::Str(v)) => d.push(v),
            (ColumnData::Bytes(d), Value::Bytes(v)) => d.push(v),
            _ => return Err(mismatch),
        }
        self.nulls.push(false);
        Ok(())
    }

    /// Read the value at `row` (panics out of bounds, like slice indexing).
    /// Prefer [`Column::try_get`] when the row index comes from decoded or
    /// otherwise untrusted input.
    pub fn get(&self, row: usize) -> Value {
        if self.nulls[row] {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(d) => Value::Int(d[row]),
            ColumnData::Float(d) => Value::Float(d[row]),
            ColumnData::Str(d) => Value::Str(d[row].clone()),
            ColumnData::Bytes(d) => Value::Bytes(d[row].clone()),
        }
    }

    /// Checked read: like [`Column::get`] but an out-of-bounds row is a
    /// [`StorageError::Corrupt`] instead of a panic, so read paths over
    /// decoded blocks can propagate instead of aborting the query thread.
    pub fn try_get(&self, row: usize) -> Result<Value> {
        if row >= self.nulls.len() {
            return Err(StorageError::Corrupt(format!(
                "row {row} out of bounds for column '{}' of {} rows",
                self.name,
                self.nulls.len()
            )));
        }
        Ok(self.get(row))
    }

    /// Borrowing accessors for hot scan paths (no clone).
    pub fn get_int(&self, row: usize) -> Option<i64> {
        if self.nulls[row] {
            return None;
        }
        match &self.data {
            ColumnData::Int(d) => Some(d[row]),
            _ => None,
        }
    }

    pub fn get_float(&self, row: usize) -> Option<f64> {
        if self.nulls[row] {
            return None;
        }
        match &self.data {
            ColumnData::Float(d) => Some(d[row]),
            ColumnData::Int(d) => Some(d[row] as f64),
            _ => None,
        }
    }

    pub fn get_bytes(&self, row: usize) -> Option<&[u8]> {
        if self.nulls[row] {
            return None;
        }
        match &self.data {
            ColumnData::Bytes(d) => Some(&d[row]),
            _ => None,
        }
    }

    pub fn get_str(&self, row: usize) -> Option<&str> {
        if self.nulls[row] {
            return None;
        }
        match &self.data {
            ColumnData::Str(d) => Some(&d[row]),
            _ => None,
        }
    }

    pub fn is_null(&self, row: usize) -> bool {
        self.nulls[row]
    }

    /// Approximate in-memory byte size (used for block-size accounting).
    pub fn byte_size(&self) -> usize {
        let data = match &self.data {
            ColumnData::Int(d) => d.len() * 8,
            ColumnData::Float(d) => d.len() * 8,
            ColumnData::Str(d) => d.iter().map(|s| s.len() + 8).sum(),
            ColumnData::Bytes(d) => d.iter().map(|b| b.len() + 8).sum(),
        };
        data + self.nulls.len()
    }

    pub(crate) fn data(&self) -> &ColumnData {
        &self.data
    }

    pub(crate) fn nulls(&self) -> &[bool] {
        &self.nulls
    }

    pub(crate) fn from_parts(name: String, data: ColumnData, nulls: Vec<bool>) -> Self {
        Column { name, data, nulls }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_parse_and_name() {
        assert_eq!(DataType::parse("int"), Some(DataType::Int));
        assert_eq!(DataType::parse("DOUBLE"), Some(DataType::Float));
        assert_eq!(DataType::parse("varchar"), Some(DataType::Str));
        assert_eq!(DataType::parse("blob"), Some(DataType::Bytes));
        assert_eq!(DataType::parse("geometry"), None);
        assert_eq!(DataType::Int.name(), "INT");
    }

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::new("a", DataType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
        assert!(c.is_null(1));
        assert_eq!(c.get_int(2), Some(3));
        assert_eq!(c.get_int(1), None);
    }

    /// `try_get` mirrors `get` in bounds but propagates instead of
    /// panicking past the end — the contract read paths over decoded
    /// blocks rely on.
    #[test]
    fn try_get_checks_bounds() {
        let mut c = Column::new("a", DataType::Int);
        c.push(Value::Int(5)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.try_get(0), Ok(Value::Int(5)));
        assert_eq!(c.try_get(1), Ok(Value::Null));
        let err = c.try_get(2).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn type_checking() {
        let mut c = Column::new("a", DataType::Int);
        let err = c.push(Value::from("oops")).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
        // Ints widen into float columns.
        let mut f = Column::new("f", DataType::Float);
        f.push(Value::Int(2)).unwrap();
        assert_eq!(f.get(0), Value::Float(2.0));
        assert_eq!(f.get_float(0), Some(2.0));
    }

    #[test]
    fn string_and_bytes_columns() {
        let mut s = Column::new("s", DataType::Str);
        s.push(Value::from("hello")).unwrap();
        assert_eq!(s.get_str(0), Some("hello"));
        let mut b = Column::new("b", DataType::Bytes);
        b.push(Value::from(vec![1u8, 2, 3])).unwrap();
        assert_eq!(b.get_bytes(0), Some(&[1u8, 2, 3][..]));
        assert_eq!(b.get_int(0), None);
    }

    #[test]
    fn byte_size_tracks_content() {
        let mut c = Column::new("b", DataType::Bytes);
        let empty = c.byte_size();
        c.push(Value::from(vec![0u8; 100])).unwrap();
        assert!(c.byte_size() >= empty + 100);
    }
}
