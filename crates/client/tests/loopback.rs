//! TCP loopback tests of the server: handshake outcomes, pipelined
//! out-of-order completion, cooperative cancel frames, oversized and
//! corrupt frames, mid-stream disconnect (in-flight queries cancelled,
//! ledgers balanced, service lives on), and graceful stop.

use spade_client::{Client, ClientConfig, ClientError};
use spade_core::dataset::{Dataset, DatasetKind, IndexedDataset};
use spade_core::query::SelectQuery;
use spade_core::EngineConfig;
use spade_datagen::spider;
use spade_geometry::{BBox, Point};
use spade_index::GridIndex;
use spade_net::proto::{decode_server, encode_client, ClientMsg, ServerMsg};
use spade_net::wire::{read_frame, write_frame, PROTOCOL_VERSION};
use spade_net::{NetServer, NetServerConfig};
use spade_server::{NamespaceConfig, QueryRequest, QueryService, ServiceConfig, ServiceError};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_config() -> EngineConfig {
    let mut c = EngineConfig::test_small();
    c.resolution = 128;
    c.layer_resolution = 128;
    c.filter_resolution = 64;
    c.distance_resolution = 128;
    c.knn_circles = 16;
    c
}

fn scatter(n: usize, extent: f64, seed: u64) -> Vec<Point> {
    let unit = spider::uniform_points(n, seed);
    spider::scale_points(&unit, &BBox::new(Point::ZERO, Point::new(extent, extent)))
}

/// A service with one grid-indexed point dataset "pts" in the default
/// namespace, served on an ephemeral loopback port.
fn serve(workers: usize) -> NetServer {
    let svc = Arc::new(QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers,
        fairness_cap: 8,
        wal_dir: None,
    }));
    let pts = scatter(4_000, 100.0, 11);
    let d = Dataset::from_points("pts", pts);
    let grid = GridIndex::build(None, &d.objects, 25.0).unwrap();
    svc.register_indexed("pts", IndexedDataset::new("pts", DatasetKind::Points, grid));
    NetServer::serve(svc, "127.0.0.1:0", NetServerConfig::default()).unwrap()
}

fn range_query(lo: f64, hi: f64) -> QueryRequest {
    QueryRequest::Select {
        dataset: "pts".into(),
        query: SelectQuery::Range(BBox::new(Point::new(lo, lo), Point::new(hi, hi))),
    }
}

fn connect(server: &NetServer) -> Client {
    Client::connect(server.addr(), ClientConfig::default()).unwrap()
}

#[test]
fn query_over_tcp_matches_in_process() {
    let server = serve(2);
    let direct = server
        .service()
        .session()
        .submit(range_query(10.0, 60.0))
        .wait()
        .unwrap();

    let client = connect(&server);
    let remote = client.query(&range_query(10.0, 60.0)).unwrap();
    assert_eq!(remote.payload, direct.payload);
    assert!(remote.stats.result_count > 0);
    server.stop();
}

#[test]
fn pipelined_replies_arrive_out_of_order_by_id() {
    let server = serve(4);
    let client = connect(&server);
    // Pipeline a burst; wait in reverse submission order. Every reply must
    // match its own request (ids are the correlation), whatever order the
    // service finished them in.
    let windows: Vec<(f64, f64)> = (0..24).map(|i| (i as f64, i as f64 + 30.0)).collect();
    let pending: Vec<_> = windows
        .iter()
        .map(|&(lo, hi)| client.submit(&range_query(lo, hi)).unwrap())
        .collect();
    let mut results = Vec::new();
    for p in pending.into_iter().rev() {
        results.push(p.wait().unwrap());
    }
    results.reverse();
    let direct_session = server.service().session();
    for (i, &(lo, hi)) in windows.iter().enumerate() {
        let direct = direct_session.submit(range_query(lo, hi)).wait().unwrap();
        assert_eq!(results[i].payload, direct.payload, "window {i}");
    }
    server.stop();
}

#[test]
fn version_mismatch_is_refused() {
    let server = serve(1);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let hello = ClientMsg::Hello {
        version: PROTOCOL_VERSION + 7,
        namespace: "default".into(),
        token: None,
    };
    write_frame(&mut stream, 0, &encode_client(&hello)).unwrap();
    let frame = read_frame(&mut stream, 1 << 20).unwrap();
    match decode_server(&frame.payload).unwrap() {
        ServerMsg::HelloErr { message } => {
            assert!(message.contains("version"), "{message}");
        }
        other => panic!("expected HelloErr, got {other:?}"),
    }
    server.stop();
}

#[test]
fn unknown_namespace_and_bad_token_are_refused() {
    let server = serve(1);
    server
        .service()
        .create_namespace(
            "tenant-a",
            NamespaceConfig {
                quota_bytes: None,
                token: Some("secret".into()),
            },
        )
        .unwrap();

    let err = Client::connect(
        server.addr(),
        ClientConfig {
            namespace: "nope".into(),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, ClientError::Handshake(ref m) if m.contains("nope")),
        "{err}"
    );

    let err = Client::connect(
        server.addr(),
        ClientConfig {
            namespace: "tenant-a".into(),
            token: Some("wrong".into()),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, ClientError::Handshake(_)), "{err}");

    // The right token works.
    let client = Client::connect(
        server.addr(),
        ClientConfig {
            namespace: "tenant-a".into(),
            token: Some("secret".into()),
            ..Default::default()
        },
    )
    .unwrap();
    // tenant-a has no datasets: a known-name query answers UnknownDataset,
    // proving the session landed in the tenant's (empty) catalog.
    let err = client.query(&range_query(0.0, 10.0)).unwrap_err();
    assert!(
        matches!(err, ClientError::Service(ServiceError::UnknownDataset(_))),
        "{err}"
    );
    server.stop();
}

#[test]
fn cancel_frame_cancels_in_flight_request() {
    let server = serve(1);
    let client = connect(&server);
    // One worker: a queued burst guarantees later submissions are still
    // queued (cancellable before execution) when the cancel lands.
    let pending: Vec<_> = (0..16)
        .map(|_| client.submit(&range_query(0.0, 95.0)).unwrap())
        .collect();
    // Cancel the tail half while the head occupies the worker.
    for p in &pending[8..] {
        p.cancel().unwrap();
    }
    let mut cancelled = 0;
    for p in pending {
        match p.wait() {
            Ok(_) => {}
            Err(ClientError::Service(ServiceError::Cancelled)) => cancelled += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(cancelled >= 1, "at least one cancel should win its race");
    server.stop();
}

#[test]
fn oversized_frame_drops_the_connection() {
    let svc = Arc::new(QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 1,
        fairness_cap: 2,
        wal_dir: None,
    }));
    let server = NetServer::serve(svc, "127.0.0.1:0", NetServerConfig { max_frame: 4096 }).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let hello = ClientMsg::Hello {
        version: PROTOCOL_VERSION,
        namespace: "default".into(),
        token: None,
    };
    write_frame(&mut stream, 0, &encode_client(&hello)).unwrap();
    let frame = read_frame(&mut stream, 1 << 20).unwrap();
    assert!(matches!(
        decode_server(&frame.payload).unwrap(),
        ServerMsg::HelloOk { .. }
    ));
    // A frame whose length prefix exceeds the server's cap: the server
    // must hang up without reading (or allocating) the body.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(64u32 << 20).to_le_bytes());
    bytes.extend_from_slice(&[0u8; 4]); // crc (never checked: length fails first)
    stream.write_all(&bytes).unwrap();
    stream.write_all(&[0u8; 1024]).unwrap();
    let err = read_frame(&mut stream, 1 << 20).unwrap_err();
    assert!(
        matches!(
            err,
            spade_net::WireError::Closed | spade_net::WireError::Io(_)
        ),
        "{err:?}"
    );
    server.stop();
}

#[test]
fn corrupt_frame_drops_the_connection_but_not_the_server() {
    let server = serve(2);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let hello = ClientMsg::Hello {
        version: PROTOCOL_VERSION,
        namespace: "default".into(),
        token: None,
    };
    write_frame(&mut stream, 0, &encode_client(&hello)).unwrap();
    read_frame(&mut stream, 1 << 20).unwrap();
    // Garbage with a plausible length but a wrong crc.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&16u32.to_le_bytes());
    bytes.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    bytes.extend_from_slice(&[7u8; 16]);
    stream.write_all(&bytes).unwrap();
    let err = read_frame(&mut stream, 1 << 20).unwrap_err();
    assert!(
        matches!(
            err,
            spade_net::WireError::Closed | spade_net::WireError::Io(_)
        ),
        "{err:?}"
    );
    // The server survives: a fresh connection still works.
    let client = connect(&server);
    assert!(client.query(&range_query(5.0, 40.0)).is_ok());
    server.stop();
}

#[test]
fn mid_stream_disconnect_cancels_in_flight_and_balances_ledgers() {
    let server = serve(2);
    let service = Arc::clone(server.service());
    {
        let client = connect(&server);
        // A pile of in-flight work, then vanish without waiting.
        let _pending: Vec<_> = (0..32)
            .map(|_| client.submit(&range_query(0.0, 99.0)).unwrap())
            .collect();
        drop(client); // shuts both socket directions down
    }
    // The server's reader sees the disconnect, cancels the in-flight
    // tokens, and the worker completion path releases every reservation.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = service.stats();
        if s.queue_depth == 0 && s.running == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "queue did not drain after disconnect: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Ledgers balanced: with nothing queued or running, no tenant holds a
    // reservation (pooled engine buffers may legitimately stay resident,
    // so the device's own high-water ledger is not asserted).
    let metrics = service.metrics_text();
    for line in metrics
        .lines()
        .filter(|l| l.starts_with("spade_tenant_reserved_bytes{"))
    {
        assert!(line.ends_with(" 0"), "leaked reservation: {line}");
    }
    // And the service still serves new clients.
    let client = connect(&server);
    assert!(client.query(&range_query(10.0, 50.0)).is_ok());
    server.stop();
}

#[test]
fn graceful_stop_drains_in_flight_requests() {
    let server = serve(2);
    let client = connect(&server);
    let pending: Vec<_> = (0..8)
        .map(|i| {
            client
                .submit(&range_query(i as f64, i as f64 + 50.0))
                .unwrap()
        })
        .collect();
    // Stop concurrently with the burst: every already-submitted request
    // must still be answered (stop drains before closing sockets).
    let stopper = std::thread::spawn(move || server.stop());
    let mut answered = 0;
    for p in pending {
        match p.wait() {
            Ok(_) => answered += 1,
            // A request that raced the drain gate gets a clean Shutdown.
            Err(ClientError::Service(ServiceError::Shutdown)) => {}
            Err(e) => panic!("unexpected error during graceful stop: {e}"),
        }
    }
    assert!(answered >= 1, "drain should answer the in-flight requests");
    stopper.join().unwrap();
}

#[test]
fn oversized_reply_is_an_in_band_error_not_a_dropped_connection() {
    // A server with a small frame cap and a query whose result encodes
    // larger than that cap: the reply must come back as a per-request
    // ReplyTooLarge error, and the connection (with other requests on it)
    // must keep working.
    let svc = Arc::new(QueryService::new(ServiceConfig {
        engine: tiny_config(),
        workers: 2,
        fairness_cap: 8,
        wal_dir: None,
    }));
    let pts = scatter(4_000, 100.0, 11);
    let d = Dataset::from_points("pts", pts);
    let grid = GridIndex::build(None, &d.objects, 25.0).unwrap();
    svc.register_indexed("pts", IndexedDataset::new("pts", DatasetKind::Points, grid));
    let server = NetServer::serve(svc, "127.0.0.1:0", NetServerConfig { max_frame: 4096 }).unwrap();
    let client = connect(&server);

    // ~4000 ids at 4 B each encode well past the 4096 B cap.
    let big = client.query(&range_query(0.0, 100.0)).unwrap_err();
    match big {
        ClientError::Service(ServiceError::ReplyTooLarge { size, max }) => {
            assert_eq!(max, 4096);
            assert!(size > max, "size {size} must exceed cap {max}");
        }
        other => panic!("expected ReplyTooLarge, got {other}"),
    }

    // The connection survived: a small query on the same client succeeds.
    let small = client.query(&range_query(0.0, 5.0)).unwrap();
    assert!(small.payload.query().is_some());
    server.stop();
}

#[test]
fn pool_recovers_after_server_restart_without_a_new_client() {
    // Kill the server, restart it on the same port, and keep using the
    // same Client: lazy reconnect must revive the dead pool slots.
    let server = serve(2);
    let addr = server.addr();
    let baseline = server
        .service()
        .session()
        .submit(range_query(10.0, 60.0))
        .wait()
        .unwrap();
    let client = Client::connect(
        addr,
        ClientConfig {
            connections: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(
        client.query(&range_query(10.0, 60.0)).unwrap().payload,
        baseline.payload
    );

    server.stop();
    drop(server);
    // With the server gone, the pool fails (shutdown reply or dead
    // socket, depending on what the stop raced with).
    assert!(client.query(&range_query(10.0, 60.0)).is_err());

    // Restart on the same address. The old port may sit in TIME_WAIT
    // briefly; retry the bind.
    let restarted = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let svc = Arc::new(QueryService::new(ServiceConfig {
                engine: tiny_config(),
                workers: 2,
                fairness_cap: 8,
                wal_dir: None,
            }));
            let pts = scatter(4_000, 100.0, 11);
            let d = Dataset::from_points("pts", pts);
            let grid = GridIndex::build(None, &d.objects, 25.0).unwrap();
            svc.register_indexed("pts", IndexedDataset::new("pts", DatasetKind::Points, grid));
            match NetServer::serve(svc, addr, NetServerConfig::default()) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => panic!("could not rebind {addr}: {e}"),
            }
        }
    };

    // The same client recovers: the next picks redial the dead slots
    // (within their backoff windows) and the query round-trips again.
    let deadline = Instant::now() + Duration::from_secs(10);
    let recovered = loop {
        match client.query(&range_query(10.0, 60.0)) {
            Ok(r) => break r,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("pool never recovered: {e}"),
        }
    };
    assert_eq!(recovered.payload, baseline.payload);
    restarted.stop();
}
