//! # spade-client — blocking client for the SPADE wire protocol
//!
//! A small, thread-friendly client for servers started with
//! `spade_net::NetServer`:
//!
//! - **Pooling** — [`ClientConfig::connections`] sockets, requests
//!   round-robin across them; a dead connection is skipped.
//! - **Pipelining** — [`Client::submit`] returns a [`PendingReply`]
//!   immediately; keep many in flight on one connection and wait in any
//!   order. Responses are matched by the frame's `request_id`.
//! - **Write coalescing** — concurrent submitters queue encoded frames
//!   into a shared outbox and whoever holds the flush lock writes them
//!   all in one syscall (the same group-commit idea the storage WAL uses
//!   for fsync), so many small requests do not mean many small writes.
//!
//! ```no_run
//! use spade_client::{Client, ClientConfig};
//! use spade_core::query::SelectQuery;
//! use spade_geometry::{BBox, Point};
//! use spade_server::QueryRequest;
//!
//! let client = Client::connect("127.0.0.1:7878", ClientConfig::default()).unwrap();
//! let bbox = BBox::new(Point::new(0.0, 0.0), Point::new(0.5, 0.5));
//! let resp = client
//!     .query(&QueryRequest::Select {
//!         dataset: "pts".into(),
//!         query: SelectQuery::Range(bbox),
//!     })
//!     .unwrap();
//! println!("{} rows", resp.stats.result_count);
//! ```

mod conn;
pub use conn::{Client, ClientConfig, ClientError, PendingReply};
