//! Connection internals: pipelining, write-coalescing, reply routing.

use spade_net::proto::{decode_server, encode_client, ClientMsg, ServerMsg};
use spade_net::wire::{encode_frame, read_frame, WireError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use spade_server::{QueryRequest, QueryResponse, ServiceError};
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Tenant namespace presented in the handshake.
    pub namespace: String,
    /// The namespace's auth token, when it has one.
    pub token: Option<String>,
    /// Connections in the pool; requests round-robin across them. Each
    /// connection pipelines independently, so 1 is enough for pipelining —
    /// more spreads the per-connection reader/writer work.
    pub connections: usize,
    /// Frame size cap for received frames.
    pub max_frame: u32,
    /// Delay before the first reconnect attempt after a dial failure on a
    /// dead pool slot. Doubles per consecutive failure up to
    /// [`ClientConfig::reconnect_backoff_max`]; resets on success.
    pub reconnect_backoff: Duration,
    /// Cap for the exponential reconnect backoff.
    pub reconnect_backoff_max: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            namespace: "default".into(),
            token: None,
            connections: 1,
            max_frame: DEFAULT_MAX_FRAME,
            reconnect_backoff: Duration::from_millis(10),
            reconnect_backoff_max: Duration::from_secs(1),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect or the transport failed mid-call.
    Transport(WireError),
    /// The server refused the handshake.
    Handshake(String),
    /// The connection died (disconnect, framing error) while the request
    /// was in flight; its fate on the server is unknown (the server
    /// cancels in-flight queries on disconnect).
    ConnectionLost,
    /// The service answered with an error.
    Service(ServiceError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Handshake(m) => write!(f, "handshake refused: {m}"),
            ClientError::ConnectionLost => write!(f, "connection lost with the request in flight"),
            ClientError::Service(e) => write!(f, "service: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Transport(WireError::Io(e))
    }
}

type ReplyTx = mpsc::Sender<Result<QueryResponse, ClientError>>;

/// One TCP connection: its pending-reply table, its coalescing outbox, and
/// its reader thread.
struct Conn {
    stream: TcpStream,
    next_id: AtomicU64,
    pending: Mutex<HashMap<u64, ReplyTx>>,
    /// Encoded frames waiting to be written, plus how many there are.
    outbox: Mutex<(Vec<u8>, u64)>,
    /// Serialises socket writes. A submitter that finds this contended
    /// simply queues its frame; the current holder drains the outbox, so
    /// concurrent submitters share one `write_all` (transparent batching,
    /// the group-commit pattern the WAL uses for fsync).
    flush: Mutex<()>,
    dead: AtomicBool,
    frames_sent: AtomicU64,
    flushes: AtomicU64,
    reader: Mutex<Option<thread::JoinHandle<()>>>,
}

impl Conn {
    fn connect(addr: impl ToSocketAddrs, config: &ClientConfig) -> Result<Arc<Conn>, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();

        // Handshake, synchronously, before the reader thread exists.
        let hello = ClientMsg::Hello {
            version: PROTOCOL_VERSION,
            namespace: config.namespace.clone(),
            token: config.token.clone(),
        };
        let mut buf = Vec::new();
        encode_frame(&mut buf, 0, &encode_client(&hello));
        stream.write_all(&buf)?;
        let frame = read_frame(&mut stream, config.max_frame).map_err(ClientError::Transport)?;
        match decode_server(&frame.payload).map_err(ClientError::Transport)? {
            ServerMsg::HelloOk { version, .. } if version == PROTOCOL_VERSION => {}
            ServerMsg::HelloOk { version, .. } => {
                return Err(ClientError::Handshake(format!(
                    "server answered with protocol v{version}, client speaks v{PROTOCOL_VERSION}"
                )));
            }
            ServerMsg::HelloErr { message } => return Err(ClientError::Handshake(message)),
            ServerMsg::Reply(_) => {
                return Err(ClientError::Transport(WireError::Corrupt(
                    "reply before handshake completed".into(),
                )));
            }
        }

        let conn = Arc::new(Conn {
            stream,
            next_id: AtomicU64::new(1), // 0 was the handshake
            pending: Mutex::new(HashMap::new()),
            outbox: Mutex::new((Vec::new(), 0)),
            flush: Mutex::new(()),
            dead: AtomicBool::new(false),
            frames_sent: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            reader: Mutex::new(None),
        });
        let reader_conn = Arc::clone(&conn);
        let max_frame = config.max_frame;
        let handle = thread::Builder::new()
            .name("spade-client-reader".into())
            .spawn(move || reader_loop(&reader_conn, max_frame))
            .expect("spawn client reader");
        *conn.reader.lock().unwrap() = Some(handle);
        Ok(conn)
    }

    /// Queue one encoded frame and flush the outbox. Concurrent callers
    /// coalesce: whoever holds the flush lock writes everything queued so
    /// far in one syscall.
    fn send_frame(self: &Arc<Conn>, request_id: u64, payload: &[u8]) -> Result<(), ClientError> {
        {
            let mut outbox = self.outbox.lock().unwrap();
            encode_frame(&mut outbox.0, request_id, payload);
            outbox.1 += 1;
        }
        let _guard = self.flush.lock().unwrap();
        let (batch, frames) = {
            let mut outbox = self.outbox.lock().unwrap();
            (
                std::mem::take(&mut outbox.0),
                std::mem::replace(&mut outbox.1, 0),
            )
        };
        if batch.is_empty() {
            // A predecessor holding the lock already wrote our frame.
            return Ok(());
        }
        self.frames_sent.fetch_add(frames, Ordering::Relaxed);
        self.flushes.fetch_add(1, Ordering::Relaxed);
        match (&self.stream).write_all(&batch) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.fail(ClientError::ConnectionLost);
                Err(ClientError::Transport(WireError::Io(e)))
            }
        }
    }

    /// Mark the connection dead and fail every pending reply.
    fn fail(&self, _why: ClientError) {
        self.dead.store(true, Ordering::Release);
        let mut pending = self.pending.lock().unwrap();
        for (_, tx) in pending.drain() {
            let _ = tx.send(Err(ClientError::ConnectionLost));
        }
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

fn reader_loop(conn: &Arc<Conn>, max_frame: u32) {
    loop {
        // `&TcpStream` implements `Read`, so the reader needs no clone.
        let frame = match read_frame(&mut &conn.stream, max_frame) {
            Ok(f) => f,
            Err(_) => {
                conn.fail(ClientError::ConnectionLost);
                return;
            }
        };
        match decode_server(&frame.payload) {
            Ok(ServerMsg::Reply(reply)) => {
                let tx = conn.pending.lock().unwrap().remove(&frame.request_id);
                if let Some(tx) = tx {
                    let _ = tx.send(reply.map_err(ClientError::Service));
                }
                // A reply to an unknown id (e.g. a cancel that raced the
                // response) is dropped, not fatal.
            }
            Ok(ServerMsg::HelloOk { .. }) | Ok(ServerMsg::HelloErr { .. }) | Err(_) => {
                conn.fail(ClientError::ConnectionLost);
                return;
            }
        }
    }
}

/// A submitted request whose reply has not been waited on yet. Holding
/// several of these pipelines the connection: all are in flight at once
/// and complete in whatever order the service finishes them.
pub struct PendingReply {
    conn: Arc<Conn>,
    id: u64,
    rx: mpsc::Receiver<Result<QueryResponse, ClientError>>,
}

impl PendingReply {
    /// Block until the reply arrives (or the connection dies).
    pub fn wait(self) -> Result<QueryResponse, ClientError> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ClientError::ConnectionLost),
        }
    }

    /// Ask the server to cooperatively cancel this request. The reply
    /// still arrives — [`ServiceError::Cancelled`] if the cancel won, the
    /// result if it lost the race.
    pub fn cancel(&self) -> Result<(), ClientError> {
        self.conn
            .send_frame(self.id, &encode_client(&ClientMsg::Cancel))
    }
}

/// One pool slot: the current connection plus that slot's reconnect
/// backoff state. Slots hold the connection behind a lock so a dead one
/// can be replaced in place — handles returned by earlier picks keep
/// their own `Arc` and fail independently.
struct Slot {
    conn: RwLock<Arc<Conn>>,
    retry: Mutex<Backoff>,
}

struct Backoff {
    /// Earliest instant the next dial may be attempted.
    next_attempt: Instant,
    /// Delay applied after the *next* failure (doubles, capped).
    delay: Duration,
}

/// A pooled, pipelining client for one SPADE server. Dead connections are
/// redialed lazily: the next submission that lands on a dead slot attempts
/// a reconnect (under a capped exponential backoff), so a pool survives a
/// server restart without being rebuilt.
pub struct Client {
    slots: Vec<Slot>,
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    round_robin: AtomicUsize,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let live = self
            .slots
            .iter()
            .filter(|s| !s.conn.read().unwrap().dead.load(Ordering::Acquire))
            .count();
        f.debug_struct("Client")
            .field("connections", &self.slots.len())
            .field("live", &live)
            .finish()
    }
}

impl Client {
    /// Connect `config.connections` sockets and perform the handshake on
    /// each. The resolved address is kept for lazy reconnects.
    pub fn connect(
        addr: impl ToSocketAddrs + Copy,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Transport(WireError::Io(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            ))));
        }
        let n = config.connections.max(1);
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            slots.push(Slot {
                conn: RwLock::new(Conn::connect(&addrs[..], &config)?),
                retry: Mutex::new(Backoff {
                    next_attempt: Instant::now(),
                    delay: config.reconnect_backoff,
                }),
            });
        }
        Ok(Client {
            slots,
            addrs,
            config,
            round_robin: AtomicUsize::new(0),
        })
    }

    fn pick(&self) -> Result<Arc<Conn>, ClientError> {
        let start = self.round_robin.fetch_add(1, Ordering::Relaxed);
        let mut last_err = None;
        for i in 0..self.slots.len() {
            let slot = &self.slots[(start + i) % self.slots.len()];
            let conn = Arc::clone(&slot.conn.read().unwrap());
            if !conn.dead.load(Ordering::Acquire) {
                return Ok(conn);
            }
            match self.revive(slot) {
                Ok(conn) => return Ok(conn),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(ClientError::ConnectionLost))
    }

    /// Replace a dead slot's connection, at most once per backoff window.
    /// Concurrent callers serialize on the slot's retry lock; whoever dials
    /// successfully resets the backoff for everyone.
    fn revive(&self, slot: &Slot) -> Result<Arc<Conn>, ClientError> {
        let mut retry = slot.retry.lock().unwrap();
        // A predecessor may have revived the slot while we waited.
        let current = Arc::clone(&slot.conn.read().unwrap());
        if !current.dead.load(Ordering::Acquire) {
            return Ok(current);
        }
        if Instant::now() < retry.next_attempt {
            return Err(ClientError::ConnectionLost);
        }
        match Conn::connect(&self.addrs[..], &self.config) {
            Ok(conn) => {
                *slot.conn.write().unwrap() = Arc::clone(&conn);
                retry.delay = self.config.reconnect_backoff;
                retry.next_attempt = Instant::now();
                Ok(conn)
            }
            Err(e) => {
                retry.next_attempt = Instant::now() + retry.delay;
                retry.delay = (retry.delay * 2).min(self.config.reconnect_backoff_max);
                Err(e)
            }
        }
    }

    /// Submit without waiting: returns a [`PendingReply`] handle. Submit
    /// many, then wait on each — that is request pipelining, and it is
    /// where the wire protocol's throughput comes from.
    pub fn submit(&self, request: &QueryRequest) -> Result<PendingReply, ClientError> {
        let conn = self.pick()?;
        let id = conn.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        conn.pending.lock().unwrap().insert(id, tx);
        let payload = encode_client(&ClientMsg::Request(request.clone()));
        if let Err(e) = conn.send_frame(id, &payload) {
            conn.pending.lock().unwrap().remove(&id);
            return Err(e);
        }
        Ok(PendingReply { conn, id, rx })
    }

    /// Submit and wait: the one-liner for non-pipelined callers.
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResponse, ClientError> {
        self.submit(request)?.wait()
    }

    /// `(frames_sent, socket_flushes)` across the pool. Frames per flush
    /// > 1 means write coalescing batched concurrent submissions.
    pub fn batching_stats(&self) -> (u64, u64) {
        let mut frames = 0;
        let mut flushes = 0;
        for s in &self.slots {
            let c = s.conn.read().unwrap();
            frames += c.frames_sent.load(Ordering::Relaxed);
            flushes += c.flushes.load(Ordering::Relaxed);
        }
        (frames, flushes)
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        for slot in &self.slots {
            let conn = slot.conn.read().unwrap();
            conn.dead.store(true, Ordering::Release);
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        for slot in &self.slots {
            let handle = slot.conn.read().unwrap().reader.lock().unwrap().take();
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }
}
