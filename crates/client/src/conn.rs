//! Connection internals: pipelining, write-coalescing, reply routing.

use spade_net::proto::{decode_server, encode_client, ClientMsg, ServerMsg};
use spade_net::wire::{encode_frame, read_frame, WireError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION};
use spade_server::{QueryRequest, QueryResponse, ServiceError};
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Tenant namespace presented in the handshake.
    pub namespace: String,
    /// The namespace's auth token, when it has one.
    pub token: Option<String>,
    /// Connections in the pool; requests round-robin across them. Each
    /// connection pipelines independently, so 1 is enough for pipelining —
    /// more spreads the per-connection reader/writer work.
    pub connections: usize,
    /// Frame size cap for received frames.
    pub max_frame: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            namespace: "default".into(),
            token: None,
            connections: 1,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect or the transport failed mid-call.
    Transport(WireError),
    /// The server refused the handshake.
    Handshake(String),
    /// The connection died (disconnect, framing error) while the request
    /// was in flight; its fate on the server is unknown (the server
    /// cancels in-flight queries on disconnect).
    ConnectionLost,
    /// The service answered with an error.
    Service(ServiceError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Handshake(m) => write!(f, "handshake refused: {m}"),
            ClientError::ConnectionLost => write!(f, "connection lost with the request in flight"),
            ClientError::Service(e) => write!(f, "service: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Transport(WireError::Io(e))
    }
}

type ReplyTx = mpsc::Sender<Result<QueryResponse, ClientError>>;

/// One TCP connection: its pending-reply table, its coalescing outbox, and
/// its reader thread.
struct Conn {
    stream: TcpStream,
    next_id: AtomicU64,
    pending: Mutex<HashMap<u64, ReplyTx>>,
    /// Encoded frames waiting to be written, plus how many there are.
    outbox: Mutex<(Vec<u8>, u64)>,
    /// Serialises socket writes. A submitter that finds this contended
    /// simply queues its frame; the current holder drains the outbox, so
    /// concurrent submitters share one `write_all` (transparent batching,
    /// the group-commit pattern the WAL uses for fsync).
    flush: Mutex<()>,
    dead: AtomicBool,
    frames_sent: AtomicU64,
    flushes: AtomicU64,
    reader: Mutex<Option<thread::JoinHandle<()>>>,
}

impl Conn {
    fn connect(addr: impl ToSocketAddrs, config: &ClientConfig) -> Result<Arc<Conn>, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();

        // Handshake, synchronously, before the reader thread exists.
        let hello = ClientMsg::Hello {
            version: PROTOCOL_VERSION,
            namespace: config.namespace.clone(),
            token: config.token.clone(),
        };
        let mut buf = Vec::new();
        encode_frame(&mut buf, 0, &encode_client(&hello));
        stream.write_all(&buf)?;
        let frame = read_frame(&mut stream, config.max_frame).map_err(ClientError::Transport)?;
        match decode_server(&frame.payload).map_err(ClientError::Transport)? {
            ServerMsg::HelloOk { version, .. } if version == PROTOCOL_VERSION => {}
            ServerMsg::HelloOk { version, .. } => {
                return Err(ClientError::Handshake(format!(
                    "server answered with protocol v{version}, client speaks v{PROTOCOL_VERSION}"
                )));
            }
            ServerMsg::HelloErr { message } => return Err(ClientError::Handshake(message)),
            ServerMsg::Reply(_) => {
                return Err(ClientError::Transport(WireError::Corrupt(
                    "reply before handshake completed".into(),
                )));
            }
        }

        let conn = Arc::new(Conn {
            stream,
            next_id: AtomicU64::new(1), // 0 was the handshake
            pending: Mutex::new(HashMap::new()),
            outbox: Mutex::new((Vec::new(), 0)),
            flush: Mutex::new(()),
            dead: AtomicBool::new(false),
            frames_sent: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            reader: Mutex::new(None),
        });
        let reader_conn = Arc::clone(&conn);
        let max_frame = config.max_frame;
        let handle = thread::Builder::new()
            .name("spade-client-reader".into())
            .spawn(move || reader_loop(&reader_conn, max_frame))
            .expect("spawn client reader");
        *conn.reader.lock().unwrap() = Some(handle);
        Ok(conn)
    }

    /// Queue one encoded frame and flush the outbox. Concurrent callers
    /// coalesce: whoever holds the flush lock writes everything queued so
    /// far in one syscall.
    fn send_frame(self: &Arc<Conn>, request_id: u64, payload: &[u8]) -> Result<(), ClientError> {
        {
            let mut outbox = self.outbox.lock().unwrap();
            encode_frame(&mut outbox.0, request_id, payload);
            outbox.1 += 1;
        }
        let _guard = self.flush.lock().unwrap();
        let (batch, frames) = {
            let mut outbox = self.outbox.lock().unwrap();
            (
                std::mem::take(&mut outbox.0),
                std::mem::replace(&mut outbox.1, 0),
            )
        };
        if batch.is_empty() {
            // A predecessor holding the lock already wrote our frame.
            return Ok(());
        }
        self.frames_sent.fetch_add(frames, Ordering::Relaxed);
        self.flushes.fetch_add(1, Ordering::Relaxed);
        match (&self.stream).write_all(&batch) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.fail(ClientError::ConnectionLost);
                Err(ClientError::Transport(WireError::Io(e)))
            }
        }
    }

    /// Mark the connection dead and fail every pending reply.
    fn fail(&self, _why: ClientError) {
        self.dead.store(true, Ordering::Release);
        let mut pending = self.pending.lock().unwrap();
        for (_, tx) in pending.drain() {
            let _ = tx.send(Err(ClientError::ConnectionLost));
        }
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

fn reader_loop(conn: &Arc<Conn>, max_frame: u32) {
    loop {
        // `&TcpStream` implements `Read`, so the reader needs no clone.
        let frame = match read_frame(&mut &conn.stream, max_frame) {
            Ok(f) => f,
            Err(_) => {
                conn.fail(ClientError::ConnectionLost);
                return;
            }
        };
        match decode_server(&frame.payload) {
            Ok(ServerMsg::Reply(reply)) => {
                let tx = conn.pending.lock().unwrap().remove(&frame.request_id);
                if let Some(tx) = tx {
                    let _ = tx.send(reply.map_err(ClientError::Service));
                }
                // A reply to an unknown id (e.g. a cancel that raced the
                // response) is dropped, not fatal.
            }
            Ok(ServerMsg::HelloOk { .. }) | Ok(ServerMsg::HelloErr { .. }) | Err(_) => {
                conn.fail(ClientError::ConnectionLost);
                return;
            }
        }
    }
}

/// A submitted request whose reply has not been waited on yet. Holding
/// several of these pipelines the connection: all are in flight at once
/// and complete in whatever order the service finishes them.
pub struct PendingReply {
    conn: Arc<Conn>,
    id: u64,
    rx: mpsc::Receiver<Result<QueryResponse, ClientError>>,
}

impl PendingReply {
    /// Block until the reply arrives (or the connection dies).
    pub fn wait(self) -> Result<QueryResponse, ClientError> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ClientError::ConnectionLost),
        }
    }

    /// Ask the server to cooperatively cancel this request. The reply
    /// still arrives — [`ServiceError::Cancelled`] if the cancel won, the
    /// result if it lost the race.
    pub fn cancel(&self) -> Result<(), ClientError> {
        self.conn
            .send_frame(self.id, &encode_client(&ClientMsg::Cancel))
    }
}

/// A pooled, pipelining client for one SPADE server.
pub struct Client {
    conns: Vec<Arc<Conn>>,
    round_robin: AtomicUsize,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let live = self
            .conns
            .iter()
            .filter(|c| !c.dead.load(Ordering::Acquire))
            .count();
        f.debug_struct("Client")
            .field("connections", &self.conns.len())
            .field("live", &live)
            .finish()
    }
}

impl Client {
    /// Connect `config.connections` sockets and perform the handshake on
    /// each.
    pub fn connect(
        addr: impl ToSocketAddrs + Copy,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let n = config.connections.max(1);
        let mut conns = Vec::with_capacity(n);
        for _ in 0..n {
            conns.push(Conn::connect(addr, &config)?);
        }
        Ok(Client {
            conns,
            round_robin: AtomicUsize::new(0),
        })
    }

    fn pick(&self) -> Result<&Arc<Conn>, ClientError> {
        let start = self.round_robin.fetch_add(1, Ordering::Relaxed);
        for i in 0..self.conns.len() {
            let conn = &self.conns[(start + i) % self.conns.len()];
            if !conn.dead.load(Ordering::Acquire) {
                return Ok(conn);
            }
        }
        Err(ClientError::ConnectionLost)
    }

    /// Submit without waiting: returns a [`PendingReply`] handle. Submit
    /// many, then wait on each — that is request pipelining, and it is
    /// where the wire protocol's throughput comes from.
    pub fn submit(&self, request: &QueryRequest) -> Result<PendingReply, ClientError> {
        let conn = Arc::clone(self.pick()?);
        let id = conn.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        conn.pending.lock().unwrap().insert(id, tx);
        let payload = encode_client(&ClientMsg::Request(request.clone()));
        if let Err(e) = conn.send_frame(id, &payload) {
            conn.pending.lock().unwrap().remove(&id);
            return Err(e);
        }
        Ok(PendingReply { conn, id, rx })
    }

    /// Submit and wait: the one-liner for non-pipelined callers.
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResponse, ClientError> {
        self.submit(request)?.wait()
    }

    /// `(frames_sent, socket_flushes)` across the pool. Frames per flush
    /// > 1 means write coalescing batched concurrent submissions.
    pub fn batching_stats(&self) -> (u64, u64) {
        let mut frames = 0;
        let mut flushes = 0;
        for c in &self.conns {
            frames += c.frames_sent.load(Ordering::Relaxed);
            flushes += c.flushes.load(Ordering::Relaxed);
        }
        (frames, flushes)
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        for conn in &self.conns {
            conn.dead.store(true, Ordering::Release);
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        for conn in &self.conns {
            if let Some(h) = conn.reader.lock().unwrap().take() {
                let _ = h.join();
            }
        }
    }
}
