//! Geometric primitives: segments, triangles, rings, polylines, polygons.
//!
//! SPADE's canvas model supports three primitive classes — points, lines and
//! polygons (§2.1); any [`Geometry`] is a combination of these. Polygons are
//! decomposed into triangles before rendering (§4.2), so [`Triangle`] is the
//! unit both the rasterizer and the boundary index operate on.

use crate::bbox::BBox;
use crate::earcut;
use crate::point::Point;

/// A directed line segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    pub fn bbox(&self) -> BBox {
        BBox::new(self.a, self.b)
    }

    pub fn midpoint(&self) -> Point {
        self.a.lerp(self.b, 0.5)
    }

    /// Direction vector `b - a` (not normalized).
    pub fn dir(&self) -> Point {
        self.b - self.a
    }
}

/// A triangle, the unit of polygon decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    pub a: Point,
    pub b: Point,
    pub c: Point,
}

impl Triangle {
    pub const fn new(a: Point, b: Point, c: Point) -> Self {
        Triangle { a, b, c }
    }

    /// Signed area: positive for counter-clockwise winding.
    pub fn signed_area(&self) -> f64 {
        0.5 * (self.b - self.a).cross(self.c - self.a)
    }

    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    pub fn bbox(&self) -> BBox {
        BBox::from_points([self.a, self.b, self.c])
    }

    pub fn vertices(&self) -> [Point; 3] {
        [self.a, self.b, self.c]
    }

    pub fn edges(&self) -> [Segment; 3] {
        [
            Segment::new(self.a, self.b),
            Segment::new(self.b, self.c),
            Segment::new(self.c, self.a),
        ]
    }

    pub fn centroid(&self) -> Point {
        (self.a + self.b + self.c) / 3.0
    }
}

/// A polyline with at least two vertices.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LineString {
    pub points: Vec<Point>,
}

impl LineString {
    pub fn new(points: Vec<Point>) -> Self {
        LineString { points }
    }

    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.points.iter().copied())
    }

    pub fn num_segments(&self) -> usize {
        self.points.len().saturating_sub(1)
    }
}

/// A closed ring of vertices. The closing edge (last → first) is implicit;
/// the vertex list must not repeat the first vertex at the end.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ring {
    pub points: Vec<Point>,
}

impl Ring {
    /// Build a ring, dropping a duplicated closing vertex if present.
    pub fn new(mut points: Vec<Point>) -> Self {
        if points.len() >= 2 && points.first() == points.last() {
            points.pop();
        }
        Ring { points }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Signed area by the shoelace formula: positive for CCW winding.
    pub fn signed_area(&self) -> f64 {
        let n = self.points.len();
        if n < 3 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.points[i];
            let q = self.points[(i + 1) % n];
            acc += p.cross(q);
        }
        acc * 0.5
    }

    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Reverse orientation in place.
    pub fn reverse(&mut self) {
        self.points.reverse();
    }

    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.points.iter().copied())
    }

    /// All edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.points.len();
        (0..n).map(move |i| Segment::new(self.points[i], self.points[(i + 1) % n]))
    }

    /// The area centroid of the ring interior.
    pub fn centroid(&self) -> Point {
        let n = self.points.len();
        if n == 0 {
            return Point::ZERO;
        }
        let a = self.signed_area();
        if a.abs() < 1e-30 {
            // Degenerate ring: fall back to the vertex mean.
            let sum = self.points.iter().fold(Point::ZERO, |acc, &p| acc + p);
            return sum / n as f64;
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.points[i];
            let q = self.points[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }
}

/// A polygon: one exterior ring plus zero or more interior rings (holes).
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    pub exterior: Ring,
    pub holes: Vec<Ring>,
}

impl Polygon {
    /// A hole-free polygon from exterior vertices.
    pub fn new(exterior: Vec<Point>) -> Self {
        Polygon {
            exterior: Ring::new(exterior),
            holes: Vec::new(),
        }
    }

    pub fn with_holes(exterior: Vec<Point>, holes: Vec<Vec<Point>>) -> Self {
        Polygon {
            exterior: Ring::new(exterior),
            holes: holes.into_iter().map(Ring::new).collect(),
        }
    }

    /// An axis-aligned rectangle polygon.
    pub fn rect(bbox: BBox) -> Self {
        Polygon::new(bbox.corners().to_vec())
    }

    /// A regular `n`-gon approximation of a circle, CCW.
    pub fn circle(center: Point, radius: f64, n: usize) -> Self {
        let n = n.max(3);
        let pts = (0..n)
            .map(|i| {
                let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                Point::new(center.x + radius * t.cos(), center.y + radius * t.sin())
            })
            .collect();
        Polygon::new(pts)
    }

    pub fn bbox(&self) -> BBox {
        self.exterior.bbox()
    }

    /// Area = exterior area − hole areas.
    pub fn area(&self) -> f64 {
        let mut a = self.exterior.area();
        for h in &self.holes {
            a -= h.area();
        }
        a.max(0.0)
    }

    pub fn centroid(&self) -> Point {
        // Weighted combination of the exterior and (negative) hole centroids.
        let ea = self.exterior.area();
        let mut cx = self.exterior.centroid() * ea;
        let mut total = ea;
        for h in &self.holes {
            let ha = h.area();
            cx = cx - h.centroid() * ha;
            total -= ha;
        }
        if total.abs() < 1e-30 {
            self.exterior.centroid()
        } else {
            cx / total
        }
    }

    /// Total vertex count across all rings.
    pub fn num_vertices(&self) -> usize {
        self.exterior.len() + self.holes.iter().map(Ring::len).sum::<usize>()
    }

    /// All boundary edges (exterior + holes).
    pub fn boundary_edges(&self) -> Vec<Segment> {
        let mut out: Vec<Segment> = self.exterior.edges().collect();
        for h in &self.holes {
            out.extend(h.edges());
        }
        out
    }

    /// Decompose into triangles by ear clipping (§4.2).
    pub fn triangulate(&self) -> Vec<Triangle> {
        earcut::triangulate_polygon(self)
    }

    /// Normalize winding: exterior CCW, holes CW (the convention the
    /// triangulator and predicates expect).
    pub fn normalize_winding(&mut self) {
        if !self.exterior.is_ccw() {
            self.exterior.reverse();
        }
        for h in &mut self.holes {
            if h.is_ccw() {
                h.reverse();
            }
        }
    }
}

/// A collection of polygons treated as one geometric object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiPolygon {
    pub polygons: Vec<Polygon>,
}

impl MultiPolygon {
    pub fn new(polygons: Vec<Polygon>) -> Self {
        MultiPolygon { polygons }
    }

    pub fn bbox(&self) -> BBox {
        let mut b = BBox::empty();
        for p in &self.polygons {
            b = b.union(&p.bbox());
        }
        b
    }

    pub fn area(&self) -> f64 {
        self.polygons.iter().map(Polygon::area).sum()
    }

    pub fn num_vertices(&self) -> usize {
        self.polygons.iter().map(Polygon::num_vertices).sum()
    }
}

/// Any geometric object SPADE can store: a point, a polyline, a polygon or a
/// multi-polygon (the paper treats "lines and polygons" as shorthand for
/// polylines and multi-polygons, §3 footnote 1).
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    Point(Point),
    LineString(LineString),
    Polygon(Polygon),
    MultiPolygon(MultiPolygon),
}

impl Geometry {
    pub fn bbox(&self) -> BBox {
        match self {
            Geometry::Point(p) => BBox::new(*p, *p),
            Geometry::LineString(l) => l.bbox(),
            Geometry::Polygon(p) => p.bbox(),
            Geometry::MultiPolygon(m) => m.bbox(),
        }
    }

    /// A representative point used for grid-cell assignment (§5.3 assigns an
    /// object to the cell containing its centroid).
    pub fn centroid(&self) -> Point {
        match self {
            Geometry::Point(p) => *p,
            Geometry::LineString(l) => {
                if l.points.is_empty() {
                    Point::ZERO
                } else {
                    let sum = l.points.iter().fold(Point::ZERO, |acc, &p| acc + p);
                    sum / l.points.len() as f64
                }
            }
            Geometry::Polygon(p) => p.centroid(),
            Geometry::MultiPolygon(m) => {
                let mut total = 0.0;
                let mut c = Point::ZERO;
                for p in &m.polygons {
                    let a = p.area().max(1e-300);
                    c = c + p.centroid() * a;
                    total += a;
                }
                if total > 0.0 {
                    c / total
                } else {
                    Point::ZERO
                }
            }
        }
    }

    /// Total coordinate count (the paper's "# Points" column in Table 1).
    pub fn num_vertices(&self) -> usize {
        match self {
            Geometry::Point(_) => 1,
            Geometry::LineString(l) => l.points.len(),
            Geometry::Polygon(p) => p.num_vertices(),
            Geometry::MultiPolygon(m) => m.num_vertices(),
        }
    }

    /// The polygons of this geometry, if it is areal.
    pub fn polygons(&self) -> &[Polygon] {
        match self {
            Geometry::Polygon(p) => std::slice::from_ref(p),
            Geometry::MultiPolygon(m) => &m.polygons,
            _ => &[],
        }
    }

    pub fn is_areal(&self) -> bool {
        matches!(self, Geometry::Polygon(_) | Geometry::MultiPolygon(_))
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Self {
        Geometry::Point(p)
    }
}

impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Self {
        Geometry::Polygon(p)
    }
}

impl From<LineString> for Geometry {
    fn from(l: LineString) -> Self {
        Geometry::LineString(l)
    }
}

impl From<MultiPolygon> for Geometry {
    fn from(m: MultiPolygon) -> Self {
        Geometry::MultiPolygon(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
    }

    #[test]
    fn ring_drops_closing_vertex() {
        let r = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
        ]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ring_signed_area_and_winding() {
        let square = unit_square().exterior;
        assert!((square.signed_area() - 1.0).abs() < 1e-12);
        assert!(square.is_ccw());
        let mut cw = square.clone();
        cw.reverse();
        assert!((cw.signed_area() + 1.0).abs() < 1e-12);
        assert!(!cw.is_ccw());
    }

    #[test]
    fn ring_centroid_square() {
        let c = unit_square().exterior.centroid();
        assert!(c.dist(Point::new(0.5, 0.5)) < 1e-12);
    }

    #[test]
    fn degenerate_ring_centroid_falls_back() {
        let r = Ring::new(vec![Point::new(1.0, 1.0), Point::new(3.0, 3.0)]);
        assert_eq!(r.signed_area(), 0.0);
        assert_eq!(r.centroid(), Point::new(2.0, 2.0));
    }

    #[test]
    fn polygon_area_with_hole() {
        let poly = Polygon::with_holes(
            vec![
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(4.0, 4.0),
                Point::new(0.0, 4.0),
            ],
            vec![vec![
                Point::new(1.0, 1.0),
                Point::new(2.0, 1.0),
                Point::new(2.0, 2.0),
                Point::new(1.0, 2.0),
            ]],
        );
        assert!((poly.area() - 15.0).abs() < 1e-12);
        assert_eq!(poly.num_vertices(), 8);
        assert_eq!(poly.boundary_edges().len(), 8);
    }

    #[test]
    fn normalize_winding_fixes_orientations() {
        let mut poly = Polygon::with_holes(
            vec![
                // CW exterior
                Point::new(0.0, 0.0),
                Point::new(0.0, 4.0),
                Point::new(4.0, 4.0),
                Point::new(4.0, 0.0),
            ],
            vec![vec![
                // CCW hole
                Point::new(1.0, 1.0),
                Point::new(2.0, 1.0),
                Point::new(2.0, 2.0),
                Point::new(1.0, 2.0),
            ]],
        );
        poly.normalize_winding();
        assert!(poly.exterior.is_ccw());
        assert!(!poly.holes[0].is_ccw());
    }

    #[test]
    fn triangle_measurements() {
        let t = Triangle::new(Point::ZERO, Point::new(2.0, 0.0), Point::new(0.0, 2.0));
        assert!((t.signed_area() - 2.0).abs() < 1e-12);
        assert_eq!(t.centroid(), Point::new(2.0 / 3.0, 2.0 / 3.0));
        assert_eq!(t.edges().len(), 3);
    }

    #[test]
    fn linestring_length_and_segments() {
        let l = LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ]);
        assert_eq!(l.num_segments(), 2);
        assert!((l.length() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn circle_polygon_approximates_area() {
        let c = Polygon::circle(Point::new(5.0, 5.0), 2.0, 256);
        let expected = std::f64::consts::PI * 4.0;
        assert!((c.area() - expected).abs() / expected < 1e-3);
        assert!(c.exterior.is_ccw());
    }

    #[test]
    fn multipolygon_aggregates() {
        let m = MultiPolygon::new(vec![unit_square(), {
            let mut p = unit_square();
            for q in &mut p.exterior.points {
                q.x += 10.0;
            }
            p
        }]);
        assert!((m.area() - 2.0).abs() < 1e-12);
        assert_eq!(m.num_vertices(), 8);
        assert_eq!(m.bbox().max, Point::new(11.0, 1.0));
    }

    #[test]
    fn geometry_dispatch() {
        let g: Geometry = unit_square().into();
        assert!(g.is_areal());
        assert_eq!(g.num_vertices(), 4);
        assert!(g.centroid().dist(Point::new(0.5, 0.5)) < 1e-12);
        let p: Geometry = Point::new(1.0, 2.0).into();
        assert!(!p.is_areal());
        assert_eq!(p.bbox().min, Point::new(1.0, 2.0));
        assert!(p.polygons().is_empty());
    }

    #[test]
    fn rect_polygon_matches_bbox() {
        let b = BBox::new(Point::new(1.0, 2.0), Point::new(3.0, 5.0));
        let r = Polygon::rect(b);
        assert_eq!(r.bbox(), b);
        assert!((r.area() - b.area()).abs() < 1e-12);
    }
}
