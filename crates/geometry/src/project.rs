//! Coordinate-system projections.
//!
//! SPADE converts degree-based EPSG:4326 (longitude/latitude) coordinates to
//! the meter-based EPSG:3857 Web-Mercator system inside the vertex shader,
//! on the fly, for distance and kNN queries (§4.2, §5.1). These are the same
//! formulas the shaders evaluate.

use crate::bbox::BBox;
use crate::point::Point;
use crate::primitives::{Geometry, LineString, MultiPolygon, Polygon, Ring};

/// Earth radius used by Web Mercator (meters).
pub const EARTH_RADIUS_M: f64 = 6_378_137.0;

/// Latitude limit of Web Mercator: beyond ±85.051129° the projection
/// diverges; inputs are clamped like mapping stacks do.
pub const MAX_LATITUDE: f64 = 85.051_128_779_806_59;

/// Project a longitude/latitude (degrees) point to EPSG:3857 meters.
pub fn lonlat_to_mercator(p: Point) -> Point {
    let lon = p.x.clamp(-180.0, 180.0);
    let lat = p.y.clamp(-MAX_LATITUDE, MAX_LATITUDE);
    let x = EARTH_RADIUS_M * lon.to_radians();
    let y = EARTH_RADIUS_M * ((std::f64::consts::FRAC_PI_4 + lat.to_radians() / 2.0).tan()).ln();
    Point::new(x, y)
}

/// Inverse projection: EPSG:3857 meters back to longitude/latitude degrees.
pub fn mercator_to_lonlat(p: Point) -> Point {
    let lon = (p.x / EARTH_RADIUS_M).to_degrees();
    let lat =
        (2.0 * (p.y / EARTH_RADIUS_M).exp().atan() - std::f64::consts::FRAC_PI_2).to_degrees();
    Point::new(lon, lat)
}

/// Project a whole geometry (every coordinate) to EPSG:3857.
pub fn geometry_to_mercator(g: &Geometry) -> Geometry {
    map_geometry(g, lonlat_to_mercator)
}

/// Apply `f` to every coordinate of a geometry.
pub fn map_geometry(g: &Geometry, f: impl Fn(Point) -> Point + Copy) -> Geometry {
    match g {
        Geometry::Point(p) => Geometry::Point(f(*p)),
        Geometry::LineString(l) => {
            Geometry::LineString(LineString::new(l.points.iter().map(|&p| f(p)).collect()))
        }
        Geometry::Polygon(p) => Geometry::Polygon(map_polygon(p, f)),
        Geometry::MultiPolygon(m) => Geometry::MultiPolygon(MultiPolygon::new(
            m.polygons.iter().map(|p| map_polygon(p, f)).collect(),
        )),
    }
}

fn map_polygon(p: &Polygon, f: impl Fn(Point) -> Point + Copy) -> Polygon {
    Polygon {
        exterior: Ring {
            points: p.exterior.points.iter().map(|&q| f(q)).collect(),
        },
        holes: p
            .holes
            .iter()
            .map(|h| Ring {
                points: h.points.iter().map(|&q| f(q)).collect(),
            })
            .collect(),
    }
}

/// Project a bounding box (projecting its corners; exact for Mercator since
/// the projection is monotone in each axis).
pub fn bbox_to_mercator(b: &BBox) -> BBox {
    BBox::new(lonlat_to_mercator(b.min), lonlat_to_mercator(b.max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_maps_to_origin() {
        let p = lonlat_to_mercator(Point::ZERO);
        assert!(p.x.abs() < 1e-6 && p.y.abs() < 1e-6);
    }

    #[test]
    fn known_city_coordinates() {
        // New York City: lon -74.0060, lat 40.7128.
        let p = lonlat_to_mercator(Point::new(-74.0060, 40.7128));
        assert!((p.x - -8_238_310.0).abs() < 1_000.0, "x = {}", p.x);
        assert!((p.y - 4_970_071.0).abs() < 1_000.0, "y = {}", p.y);
    }

    #[test]
    fn roundtrip_is_identity() {
        for &(lon, lat) in &[
            (0.0, 0.0),
            (-74.0, 40.7),
            (139.69, 35.68),
            (-0.12, 51.5),
            (151.2, -33.87),
        ] {
            let p = Point::new(lon, lat);
            let q = mercator_to_lonlat(lonlat_to_mercator(p));
            assert!(p.dist(q) < 1e-9, "{p:?} -> {q:?}");
        }
    }

    #[test]
    fn latitude_is_clamped() {
        let p = lonlat_to_mercator(Point::new(0.0, 89.9));
        let q = lonlat_to_mercator(Point::new(0.0, MAX_LATITUDE));
        assert_eq!(p, q);
        assert!(p.y.is_finite());
    }

    #[test]
    fn projection_preserves_x_order_and_y_order() {
        let a = lonlat_to_mercator(Point::new(-10.0, 10.0));
        let b = lonlat_to_mercator(Point::new(10.0, 20.0));
        assert!(a.x < b.x);
        assert!(a.y < b.y);
    }

    #[test]
    fn geometry_projection_maps_all_coordinates() {
        let poly = Polygon::new(vec![
            Point::new(-74.02, 40.70),
            Point::new(-73.98, 40.70),
            Point::new(-73.98, 40.73),
            Point::new(-74.02, 40.73),
        ]);
        let g = geometry_to_mercator(&Geometry::Polygon(poly));
        let b = g.bbox();
        // ~0.04° of longitude near NYC is ~4.4 km in Mercator meters.
        assert!((b.width() - 4452.0).abs() < 50.0, "width = {}", b.width());
        assert!(b.height() > 3000.0 && b.height() < 6000.0);
    }

    #[test]
    fn bbox_projection_matches_corner_projection() {
        let b = BBox::new(Point::new(-74.0, 40.0), Point::new(-73.0, 41.0));
        let pb = bbox_to_mercator(&b);
        assert_eq!(pb.min, lonlat_to_mercator(b.min));
        assert_eq!(pb.max, lonlat_to_mercator(b.max));
    }

    #[test]
    fn mercator_meter_scale_at_equator() {
        // One degree of longitude at the equator is ~111.32 km.
        let a = lonlat_to_mercator(Point::new(0.0, 0.0));
        let b = lonlat_to_mercator(Point::new(1.0, 0.0));
        assert!(((b.x - a.x) - 111_319.49).abs() < 1.0);
    }
}
