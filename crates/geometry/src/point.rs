//! 2-D points and vectors.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 2-D point (also used as a vector) with `f64` coordinates.
///
/// SPADE works in two coordinate systems: geographic degrees (EPSG:4326)
/// and projected meters (EPSG:3857, used for distance and kNN queries).
/// `Point` is agnostic; [`crate::project`] converts between them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ZERO: Point = Point { x: 0.0, y: 0.0 };

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length of the vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean length; avoids the sqrt when only comparing.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Unit vector in the same direction. Returns `None` for (near-)zero
    /// vectors where the direction is undefined.
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// The vector rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Point {
        Point::new(-self.y, self.x)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// True when both coordinates are finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn norms_and_distance() {
        let a = Point::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(Point::ZERO.dist(a), 5.0);
        assert_eq!(Point::ZERO.dist_sq(a), 25.0);
    }

    #[test]
    fn normalized_unit_and_zero() {
        let a = Point::new(3.0, 4.0).normalized().unwrap();
        assert!((a.norm() - 1.0).abs() < 1e-12);
        assert!(Point::ZERO.normalized().is_none());
    }

    #[test]
    fn perp_is_ccw_rotation() {
        let a = Point::new(1.0, 0.0);
        assert_eq!(a.perp(), Point::new(0.0, 1.0));
        // perp is orthogonal and preserves length
        let b = Point::new(2.0, 5.0);
        assert_eq!(b.dot(b.perp()), 0.0);
        assert_eq!(b.perp().norm_sq(), b.norm_sq());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -1.0));
    }

    #[test]
    fn component_min_max() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(b), Point::new(1.0, 3.0));
        assert_eq!(a.max(b), Point::new(2.0, 5.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
