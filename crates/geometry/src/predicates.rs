//! Exact geometric predicates.
//!
//! The boundary index (§4.3) turns costly polygon tests into constant-time
//! tests against a single triangle: point-in-triangle, segment-triangle and
//! triangle-triangle. Those predicates live here, together with the general
//! polygon tests used by the CPU baselines and by the test-suite oracles.
//!
//! All tests are *boundary inclusive*: touching counts as intersecting,
//! matching SQL `ST_INTERSECTS` semantics which SPADE implements (§5.2).

use crate::point::Point;
use crate::primitives::{Polygon, Segment, Triangle};

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    Clockwise,
    Collinear,
    CounterClockwise,
}

/// The orientation predicate: sign of the cross product `(b-a) × (c-a)`.
///
/// Comparisons are *sharp* (no epsilon band): every predicate in this
/// module answers from the same f64 cross products, so the ray-cast
/// point-in-polygon oracle, the triangle tests of the boundary index and
/// the baselines' refinements always agree — an epsilon band would create
/// a ~µm-to-m ambiguity zone (depending on coordinate units) where code
/// paths could diverge on near-boundary points.
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let v = (b - a).cross(c - a);
    if v > 0.0 {
        Orientation::CounterClockwise
    } else if v < 0.0 {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// True if `p` lies exactly on segment `s`.
pub fn point_on_segment(p: Point, s: Segment) -> bool {
    if orientation(s.a, s.b, p) != Orientation::Collinear {
        return false;
    }
    p.x >= s.a.x.min(s.b.x)
        && p.x <= s.a.x.max(s.b.x)
        && p.y >= s.a.y.min(s.b.y)
        && p.y <= s.a.y.max(s.b.y)
}

/// Boundary-inclusive point-in-triangle test — the constant-time test the
/// boundary index reduces point-in-polygon to (§4.3).
pub fn point_in_triangle(p: Point, t: &Triangle) -> bool {
    let d1 = (t.b - t.a).cross(p - t.a);
    let d2 = (t.c - t.b).cross(p - t.b);
    let d3 = (t.a - t.c).cross(p - t.c);
    let has_neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
    let has_pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
    !(has_neg && has_pos)
}

/// Boundary-inclusive segment intersection test.
pub fn segments_intersect(s1: Segment, s2: Segment) -> bool {
    let o1 = orientation(s1.a, s1.b, s2.a);
    let o2 = orientation(s1.a, s1.b, s2.b);
    let o3 = orientation(s2.a, s2.b, s1.a);
    let o4 = orientation(s2.a, s2.b, s1.b);

    // General position: a proper crossing has strictly opposite orientations
    // on both segments with no collinearity involved.
    let none_collinear = o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear;
    if none_collinear && o1 != o2 && o3 != o4 {
        return true;
    }
    // Collinear / touching cases: an endpoint of one segment lies on the
    // other segment.
    (o1 == Orientation::Collinear && point_on_segment(s2.a, s1))
        || (o2 == Orientation::Collinear && point_on_segment(s2.b, s1))
        || (o3 == Orientation::Collinear && point_on_segment(s1.a, s2))
        || (o4 == Orientation::Collinear && point_on_segment(s1.b, s2))
}

/// Constant-time segment-vs-triangle intersection (line-polygon tests devolve
/// to this through the boundary index).
pub fn segment_intersects_triangle(s: Segment, t: &Triangle) -> bool {
    if point_in_triangle(s.a, t) || point_in_triangle(s.b, t) {
        return true;
    }
    t.edges().iter().any(|e| segments_intersect(s, *e))
}

/// Constant-time triangle-vs-triangle intersection (polygon-polygon tests
/// devolve to this through the boundary index).
pub fn triangles_intersect(t1: &Triangle, t2: &Triangle) -> bool {
    if !t1.bbox().intersects(&t2.bbox()) {
        return false;
    }
    // Any vertex containment?
    if t1.vertices().iter().any(|&v| point_in_triangle(v, t2)) {
        return true;
    }
    if t2.vertices().iter().any(|&v| point_in_triangle(v, t1)) {
        return true;
    }
    // Any edge crossing?
    t1.edges()
        .iter()
        .any(|e1| t2.edges().iter().any(|e2| segments_intersect(*e1, *e2)))
}

/// Boundary-inclusive point-in-polygon test (ray casting with hole support).
///
/// This is the *general* O(n) test the boundary index avoids; SPADE only runs
/// it in CPU baselines, index construction, and as the exactness oracle.
pub fn point_in_polygon(p: Point, poly: &Polygon) -> bool {
    if !point_in_ring(p, &poly.exterior.points) {
        return false;
    }
    for h in &poly.holes {
        if point_strictly_in_ring(p, &h.points) {
            return false;
        }
    }
    true
}

/// Boundary-inclusive containment in a single ring.
fn point_in_ring(p: Point, ring: &[Point]) -> bool {
    let n = ring.len();
    if n < 3 {
        return false;
    }
    // On-boundary counts as inside.
    for i in 0..n {
        if point_on_segment(p, Segment::new(ring[i], ring[(i + 1) % n])) {
            return true;
        }
    }
    ray_cast(p, ring)
}

/// Strict interior test (boundary excluded), used for holes so that a point
/// on a hole's rim still counts as inside the polygon.
fn point_strictly_in_ring(p: Point, ring: &[Point]) -> bool {
    let n = ring.len();
    if n < 3 {
        return false;
    }
    for i in 0..n {
        if point_on_segment(p, Segment::new(ring[i], ring[(i + 1) % n])) {
            return false;
        }
    }
    ray_cast(p, ring)
}

fn ray_cast(p: Point, ring: &[Point]) -> bool {
    let n = ring.len();
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let a = ring[i];
        let b = ring[j];
        if (a.y > p.y) != (b.y > p.y) {
            let x_int = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
            if p.x < x_int {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

/// Lane width of the batched predicate kernels below.
pub const PRED_LANES: usize = 8;

/// Batched boundary-inclusive point-in-triangle: fills `out` so that
/// `out[i] == point_in_triangle(points[i], t)`.
///
/// Evaluates the three cross products for [`PRED_LANES`] points at a time
/// over fixed-size lane arrays with branch-free sign accumulation — the
/// shape LLVM autovectorizes. Each lane runs exactly the scalar test's fp
/// expressions, and the sign test is total (a point is never
/// boundary-ambiguous: collinear lanes contribute neither `has_neg` nor
/// `has_pos`), so this kernel is exact with no scalar fallback.
pub fn points_in_triangle_mask(points: &[Point], t: &Triangle, out: &mut Vec<bool>) {
    out.clear();
    out.resize(points.len(), false);
    let (a, b, c) = (t.a, t.b, t.c);
    let (d1x, d1y) = (b.x - a.x, b.y - a.y);
    let (d2x, d2y) = (c.x - b.x, c.y - b.y);
    let (d3x, d3y) = (a.x - c.x, a.y - c.y);
    for (chunk, ochunk) in points.chunks(PRED_LANES).zip(out.chunks_mut(PRED_LANES)) {
        let n = chunk.len();
        let mut px = [0.0f64; PRED_LANES];
        let mut py = [0.0f64; PRED_LANES];
        for i in 0..n {
            px[i] = chunk[i].x;
            py[i] = chunk[i].y;
        }
        let mut neg = [false; PRED_LANES];
        let mut pos = [false; PRED_LANES];
        for i in 0..PRED_LANES {
            let d1 = d1x * (py[i] - a.y) - d1y * (px[i] - a.x);
            let d2 = d2x * (py[i] - b.y) - d2y * (px[i] - b.x);
            let d3 = d3x * (py[i] - c.y) - d3y * (px[i] - c.x);
            neg[i] = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
            pos[i] = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
        }
        for i in 0..n {
            ochunk[i] = !(neg[i] && pos[i]);
        }
    }
}

/// Batched boundary-inclusive point-in-ring: fills `out` so that `out[i]`
/// matches the scalar ring test `point_in_polygon` uses for exteriors.
///
/// Lane-parallel ray casting: per edge, all lanes compute the crossing
/// toggle branch-free (the intersection abscissa is computed
/// unconditionally; horizontal edges yield ±inf/NaN which the crossing
/// condition masks out, exactly as the scalar test never reaches them).
/// Lanes that might touch the ring *boundary* — some edge's orientation
/// cross product is exactly `0.0` — cannot be resolved by ray casting
/// alone and fall back to the exact scalar predicate; for every other lane
/// `point_on_segment` is false for all edges, so the ray-cast parity *is*
/// the scalar answer.
pub fn points_in_ring_mask(points: &[Point], ring: &[Point], out: &mut Vec<bool>) {
    ring_mask_impl(points, ring, false, out);
}

/// Batched polygon containment with hole support: exterior boundary
/// inclusive, holes strict — fills `out[i] == point_in_polygon(points[i],
/// poly)`.
pub fn points_in_polygon_mask(points: &[Point], poly: &Polygon, out: &mut Vec<bool>) {
    ring_mask_impl(points, &poly.exterior.points, false, out);
    if poly.holes.is_empty() {
        return;
    }
    let mut in_hole: Vec<bool> = Vec::new();
    for h in &poly.holes {
        ring_mask_impl(points, &h.points, true, &mut in_hole);
        for (o, hm) in out.iter_mut().zip(&in_hole) {
            *o = *o && !*hm;
        }
    }
}

/// Shared ring kernel: `strict` selects the hole semantics (boundary
/// excluded) for the ambiguous-lane fallback. Non-ambiguous lanes cannot
/// lie on the boundary, where the two semantics coincide with plain
/// ray-cast parity.
fn ring_mask_impl(points: &[Point], ring: &[Point], strict: bool, out: &mut Vec<bool>) {
    out.clear();
    out.resize(points.len(), false);
    let n = ring.len();
    if n < 3 {
        return;
    }
    for (chunk, ochunk) in points.chunks(PRED_LANES).zip(out.chunks_mut(PRED_LANES)) {
        let cn = chunk.len();
        let mut px = [0.0f64; PRED_LANES];
        let mut py = [0.0f64; PRED_LANES];
        for i in 0..cn {
            px[i] = chunk[i].x;
            py[i] = chunk[i].y;
        }
        let mut inside = [false; PRED_LANES];
        let mut ambiguous = [false; PRED_LANES];
        // Same edge order as `ray_cast`: (ring[i], ring[j]) with j trailing.
        let mut j = n - 1;
        for i in 0..n {
            let a = ring[i];
            let b = ring[j];
            let (dx, dy) = (b.x - a.x, b.y - a.y);
            // The scalar boundary check walks forward edges (ring[j],
            // ring[i]) anchored at ring[j] = `b`; the ambiguity cross must
            // use those exact operands — the reversed-edge cross rounds
            // differently and could miss an exactly-collinear point.
            let (fx, fy) = (a.x - b.x, a.y - b.y);
            for l in 0..PRED_LANES {
                let crossing = (a.y > py[l]) != (b.y > py[l]);
                let x_int = a.x + (py[l] - a.y) / dy * dx;
                inside[l] ^= crossing && px[l] < x_int;
                // Boundary ambiguity: the point is collinear with the edge
                // line (superset of `point_on_segment`'s condition).
                ambiguous[l] |= fx * (py[l] - b.y) - fy * (px[l] - b.x) == 0.0;
            }
            j = i;
        }
        for i in 0..cn {
            ochunk[i] = if ambiguous[i] {
                if strict {
                    point_strictly_in_ring(chunk[i], ring)
                } else {
                    point_in_ring(chunk[i], ring)
                }
            } else {
                inside[i]
            };
        }
    }
}

/// Segment-vs-polygon intersection (general form, used by oracles).
pub fn segment_intersects_polygon(s: Segment, poly: &Polygon) -> bool {
    if point_in_polygon(s.a, poly) || point_in_polygon(s.b, poly) {
        return true;
    }
    poly.boundary_edges()
        .iter()
        .any(|e| segments_intersect(s, *e))
}

/// Polygon-vs-polygon intersection (general form, used by oracles and CPU
/// baselines). Boundary inclusive.
pub fn polygons_intersect(p1: &Polygon, p2: &Polygon) -> bool {
    if !p1.bbox().intersects(&p2.bbox()) {
        return false;
    }
    // Vertex containment either way.
    if p1.exterior.points.iter().any(|&v| point_in_polygon(v, p2)) {
        return true;
    }
    if p2.exterior.points.iter().any(|&v| point_in_polygon(v, p1)) {
        return true;
    }
    // Edge crossings.
    let e2 = p2.boundary_edges();
    p1.boundary_edges()
        .iter()
        .any(|a| e2.iter().any(|b| segments_intersect(*a, *b)))
}

/// Triangle-vs-polygon intersection (used when one side of a join is already
/// triangulated).
pub fn triangle_intersects_polygon(t: &Triangle, poly: &Polygon) -> bool {
    if !t.bbox().intersects(&poly.bbox()) {
        return false;
    }
    if t.vertices().iter().any(|&v| point_in_polygon(v, poly)) {
        return true;
    }
    if poly
        .exterior
        .points
        .iter()
        .any(|&v| point_in_triangle(v, t))
    {
        return true;
    }
    let edges = poly.boundary_edges();
    t.edges()
        .iter()
        .any(|a| edges.iter().any(|b| segments_intersect(*a, *b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;

    fn tri() -> Triangle {
        Triangle::new(Point::ZERO, Point::new(4.0, 0.0), Point::new(0.0, 4.0))
    }

    fn square() -> Polygon {
        Polygon::rect(BBox::new(Point::ZERO, Point::new(4.0, 4.0)))
    }

    #[test]
    fn orientation_basic() {
        assert_eq!(
            orientation(Point::ZERO, Point::new(1.0, 0.0), Point::new(0.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(Point::ZERO, Point::new(0.0, 1.0), Point::new(1.0, 0.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(Point::ZERO, Point::new(1.0, 1.0), Point::new(2.0, 2.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn point_on_segment_cases() {
        let s = Segment::new(Point::ZERO, Point::new(4.0, 4.0));
        assert!(point_on_segment(Point::new(2.0, 2.0), s));
        assert!(point_on_segment(Point::ZERO, s)); // endpoint
        assert!(!point_on_segment(Point::new(5.0, 5.0), s)); // past the end
        assert!(!point_on_segment(Point::new(2.0, 2.5), s)); // off the line
    }

    #[test]
    fn point_in_triangle_cases() {
        let t = tri();
        assert!(point_in_triangle(Point::new(1.0, 1.0), &t)); // interior
        assert!(point_in_triangle(Point::new(2.0, 0.0), &t)); // on edge
        assert!(point_in_triangle(Point::ZERO, &t)); // on vertex
        assert!(!point_in_triangle(Point::new(3.0, 3.0), &t)); // outside
        assert!(!point_in_triangle(Point::new(-0.1, 0.0), &t));
    }

    #[test]
    fn point_in_triangle_cw_winding() {
        // The test must be winding-agnostic.
        let t = Triangle::new(Point::ZERO, Point::new(0.0, 4.0), Point::new(4.0, 0.0));
        assert!(point_in_triangle(Point::new(1.0, 1.0), &t));
        assert!(!point_in_triangle(Point::new(3.0, 3.0), &t));
    }

    #[test]
    fn segments_proper_crossing() {
        let s1 = Segment::new(Point::ZERO, Point::new(4.0, 4.0));
        let s2 = Segment::new(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
        assert!(segments_intersect(s1, s2));
    }

    #[test]
    fn segments_touching_at_endpoint() {
        let s1 = Segment::new(Point::ZERO, Point::new(2.0, 2.0));
        let s2 = Segment::new(Point::new(2.0, 2.0), Point::new(4.0, 0.0));
        assert!(segments_intersect(s1, s2));
    }

    #[test]
    fn segments_collinear_overlapping_and_disjoint() {
        let s1 = Segment::new(Point::ZERO, Point::new(4.0, 0.0));
        let s2 = Segment::new(Point::new(2.0, 0.0), Point::new(6.0, 0.0));
        assert!(segments_intersect(s1, s2));
        let s3 = Segment::new(Point::new(5.0, 0.0), Point::new(6.0, 0.0));
        assert!(!segments_intersect(s1, s3));
    }

    #[test]
    fn segments_parallel_disjoint() {
        let s1 = Segment::new(Point::ZERO, Point::new(4.0, 0.0));
        let s2 = Segment::new(Point::new(0.0, 1.0), Point::new(4.0, 1.0));
        assert!(!segments_intersect(s1, s2));
    }

    #[test]
    fn segments_t_junction() {
        let s1 = Segment::new(Point::ZERO, Point::new(4.0, 0.0));
        let s2 = Segment::new(Point::new(2.0, -1.0), Point::new(2.0, 0.0));
        assert!(segments_intersect(s1, s2));
        let s3 = Segment::new(Point::new(2.0, -1.0), Point::new(2.0, -0.1));
        assert!(!segments_intersect(s1, s3));
    }

    #[test]
    fn segment_triangle_cases() {
        let t = tri();
        // Fully inside.
        assert!(segment_intersects_triangle(
            Segment::new(Point::new(0.5, 0.5), Point::new(1.0, 1.0)),
            &t
        ));
        // Crossing through without endpoints inside.
        assert!(segment_intersects_triangle(
            Segment::new(Point::new(-1.0, 1.0), Point::new(5.0, 1.0)),
            &t
        ));
        // Completely outside.
        assert!(!segment_intersects_triangle(
            Segment::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0)),
            &t
        ));
    }

    #[test]
    fn triangle_triangle_cases() {
        let t1 = tri();
        // Overlapping.
        let t2 = Triangle::new(
            Point::new(1.0, 1.0),
            Point::new(5.0, 1.0),
            Point::new(1.0, 5.0),
        );
        assert!(triangles_intersect(&t1, &t2));
        // t3 contains t1 entirely (no edge crossings).
        let t3 = Triangle::new(
            Point::new(-10.0, -10.0),
            Point::new(20.0, -10.0),
            Point::new(-10.0, 20.0),
        );
        assert!(triangles_intersect(&t1, &t3));
        assert!(triangles_intersect(&t3, &t1));
        // Disjoint.
        let t4 = Triangle::new(
            Point::new(10.0, 10.0),
            Point::new(11.0, 10.0),
            Point::new(10.0, 11.0),
        );
        assert!(!triangles_intersect(&t1, &t4));
    }

    #[test]
    fn point_in_polygon_square() {
        let p = square();
        assert!(point_in_polygon(Point::new(2.0, 2.0), &p));
        assert!(point_in_polygon(Point::new(0.0, 2.0), &p)); // on edge
        assert!(point_in_polygon(Point::new(4.0, 4.0), &p)); // on vertex
        assert!(!point_in_polygon(Point::new(4.1, 2.0), &p));
        assert!(!point_in_polygon(Point::new(-0.1, -0.1), &p));
    }

    #[test]
    fn point_in_polygon_with_hole() {
        let p = Polygon::with_holes(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(0.0, 10.0),
            ],
            vec![vec![
                Point::new(4.0, 4.0),
                Point::new(6.0, 4.0),
                Point::new(6.0, 6.0),
                Point::new(4.0, 6.0),
            ]],
        );
        assert!(point_in_polygon(Point::new(2.0, 2.0), &p));
        assert!(!point_in_polygon(Point::new(5.0, 5.0), &p)); // in the hole
        assert!(point_in_polygon(Point::new(4.0, 5.0), &p)); // on the hole rim
    }

    #[test]
    fn point_in_concave_polygon() {
        // A "U" shape.
        let p = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 6.0),
            Point::new(0.0, 6.0),
        ]);
        assert!(point_in_polygon(Point::new(1.0, 5.0), &p)); // left arm
        assert!(point_in_polygon(Point::new(5.0, 5.0), &p)); // right arm
        assert!(!point_in_polygon(Point::new(3.0, 5.0), &p)); // the notch
        assert!(point_in_polygon(Point::new(3.0, 1.0), &p)); // the base
    }

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / ((1u64 << 53) as f64)
    }

    #[test]
    fn triangle_mask_matches_scalar_randomized() {
        let mut seed = 20240601u64;
        for case in 0..50u32 {
            let t = Triangle::new(
                Point::new(lcg(&mut seed) * 8.0, lcg(&mut seed) * 8.0),
                Point::new(lcg(&mut seed) * 8.0, lcg(&mut seed) * 8.0),
                Point::new(lcg(&mut seed) * 8.0, lcg(&mut seed) * 8.0),
            );
            // Random points plus exact boundary hits: vertices, edge
            // midpoints, and points just off each edge.
            let mut pts: Vec<Point> = (0..53)
                .map(|_| Point::new(lcg(&mut seed) * 10.0 - 1.0, lcg(&mut seed) * 10.0 - 1.0))
                .collect();
            pts.extend([t.a, t.b, t.c]);
            for e in t.edges() {
                pts.push(Point::new((e.a.x + e.b.x) * 0.5, (e.a.y + e.b.y) * 0.5));
            }
            let mut mask = Vec::new();
            points_in_triangle_mask(&pts, &t, &mut mask);
            assert_eq!(mask.len(), pts.len());
            for (i, p) in pts.iter().enumerate() {
                assert_eq!(
                    mask[i],
                    point_in_triangle(*p, &t),
                    "case={case} i={i} p={p:?} t={t:?}"
                );
            }
        }
    }

    #[test]
    fn triangle_mask_degenerate_triangles() {
        // Collinear (zero-area) and needle triangles: every lane must agree
        // with the scalar test, which treats the degenerate hull as its
        // boundary.
        let flat = Triangle::new(Point::ZERO, Point::new(4.0, 0.0), Point::new(2.0, 0.0));
        let pts = vec![
            Point::new(1.0, 0.0),  // on the segment
            Point::new(5.0, 0.0),  // past the end, still collinear
            Point::new(1.0, 0.01), // just off
            Point::ZERO,
        ];
        let mut mask = Vec::new();
        points_in_triangle_mask(&pts, &flat, &mut mask);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(mask[i], point_in_triangle(*p, &flat), "i={i}");
        }
    }

    #[test]
    fn ring_mask_matches_scalar_randomized() {
        let mut seed = 777777u64;
        for case in 0..40u32 {
            // Random star-shaped ring around a center (always simple).
            let cx = lcg(&mut seed) * 4.0 + 2.0;
            let cy = lcg(&mut seed) * 4.0 + 2.0;
            let nv = 3 + (case as usize % 7);
            let ring: Vec<Point> = (0..nv)
                .map(|k| {
                    let th = (k as f64 / nv as f64) * std::f64::consts::TAU;
                    let r = 1.0 + lcg(&mut seed) * 2.0;
                    Point::new(cx + r * th.cos(), cy + r * th.sin())
                })
                .collect();
            let mut pts: Vec<Point> = (0..61)
                .map(|_| Point::new(lcg(&mut seed) * 10.0 - 1.0, lcg(&mut seed) * 10.0 - 1.0))
                .collect();
            // Exact boundary points: vertices and edge midpoints (always
            // ambiguous lanes → scalar fallback).
            pts.extend(ring.iter().copied());
            for i in 0..nv {
                let (a, b) = (ring[i], ring[(i + 1) % nv]);
                pts.push(Point::new((a.x + b.x) * 0.5, (a.y + b.y) * 0.5));
            }
            // Points sharing a y with a vertex (horizontal-edge / vertex
            // grazing cases for the ray cast).
            for v in ring.iter().take(3) {
                pts.push(Point::new(v.x - 1.5, v.y));
                pts.push(Point::new(v.x + 1.5, v.y));
            }
            let mut mask = Vec::new();
            points_in_ring_mask(&pts, &ring, &mut mask);
            for (i, p) in pts.iter().enumerate() {
                assert_eq!(
                    mask[i],
                    point_in_ring(*p, &ring),
                    "case={case} i={i} p={p:?} ring={ring:?}"
                );
            }
        }
    }

    #[test]
    fn ring_mask_axis_aligned_boundaries() {
        // Axis-aligned rectangles put many points exactly on horizontal /
        // vertical edges — the worst case for ray casting.
        let ring = vec![
            Point::new(1.0, 1.0),
            Point::new(5.0, 1.0),
            Point::new(5.0, 5.0),
            Point::new(1.0, 5.0),
        ];
        let mut pts = Vec::new();
        for k in 0..=8 {
            let t = k as f64 * 0.5 + 1.0;
            pts.push(Point::new(t, 1.0)); // bottom edge
            pts.push(Point::new(t, 5.0)); // top edge
            pts.push(Point::new(1.0, t)); // left edge
            pts.push(Point::new(5.0, t)); // right edge
            pts.push(Point::new(t, 3.0)); // interior / exterior row
        }
        let mut mask = Vec::new();
        points_in_ring_mask(&pts, &ring, &mut mask);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(mask[i], point_in_ring(*p, &ring), "i={i} p={p:?}");
        }
    }

    #[test]
    fn polygon_mask_matches_scalar_with_holes() {
        let poly = Polygon::with_holes(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(0.0, 10.0),
            ],
            vec![vec![
                Point::new(4.0, 4.0),
                Point::new(6.0, 4.0),
                Point::new(6.0, 6.0),
                Point::new(4.0, 6.0),
            ]],
        );
        let mut pts = vec![
            Point::new(2.0, 2.0),   // inside
            Point::new(5.0, 5.0),   // in the hole
            Point::new(4.0, 5.0),   // on the hole rim (counts as inside)
            Point::new(0.0, 5.0),   // on the exterior edge
            Point::new(-1.0, 5.0),  // outside
            Point::new(10.0, 10.0), // exterior vertex
        ];
        let mut seed = 31337u64;
        for _ in 0..60 {
            pts.push(Point::new(
                lcg(&mut seed) * 12.0 - 1.0,
                lcg(&mut seed) * 12.0 - 1.0,
            ));
        }
        let mut mask = Vec::new();
        points_in_polygon_mask(&pts, &poly, &mut mask);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(mask[i], point_in_polygon(*p, &poly), "i={i} p={p:?}");
        }
        // Degenerate ring: fewer than 3 vertices matches the scalar "never
        // inside" answer.
        let mut dmask = Vec::new();
        points_in_ring_mask(&pts, &[Point::ZERO, Point::new(1.0, 1.0)], &mut dmask);
        assert!(dmask.iter().all(|&m| !m));
    }

    #[test]
    fn polygons_intersect_cases() {
        let a = square();
        let mut b = square();
        for p in &mut b.exterior.points {
            *p = *p + Point::new(2.0, 2.0);
        }
        assert!(polygons_intersect(&a, &b));
        let mut c = square();
        for p in &mut c.exterior.points {
            *p = *p + Point::new(10.0, 10.0);
        }
        assert!(!polygons_intersect(&a, &c));
        // Containment without edge crossings.
        let inner = Polygon::rect(BBox::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0)));
        assert!(polygons_intersect(&a, &inner));
        assert!(polygons_intersect(&inner, &a));
    }

    #[test]
    fn polygons_touching_edge() {
        let a = square();
        let b = Polygon::rect(BBox::new(Point::new(4.0, 0.0), Point::new(8.0, 4.0)));
        assert!(polygons_intersect(&a, &b));
    }

    #[test]
    fn segment_polygon_cases() {
        let p = square();
        assert!(segment_intersects_polygon(
            Segment::new(Point::new(-1.0, 2.0), Point::new(5.0, 2.0)),
            &p
        ));
        assert!(!segment_intersects_polygon(
            Segment::new(Point::new(-1.0, -1.0), Point::new(-1.0, 5.0)),
            &p
        ));
    }

    #[test]
    fn triangle_polygon_cases() {
        let p = square();
        let t = Triangle::new(
            Point::new(3.0, 3.0),
            Point::new(6.0, 3.0),
            Point::new(3.0, 6.0),
        );
        assert!(triangle_intersects_polygon(&t, &p));
        let far = Triangle::new(
            Point::new(30.0, 30.0),
            Point::new(31.0, 30.0),
            Point::new(30.0, 31.0),
        );
        assert!(!triangle_intersects_polygon(&far, &p));
        // Triangle containing the polygon entirely.
        let big = Triangle::new(
            Point::new(-20.0, -20.0),
            Point::new(40.0, -20.0),
            Point::new(-20.0, 40.0),
        );
        assert!(triangle_intersects_polygon(&big, &p));
    }
}
