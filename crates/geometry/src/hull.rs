//! Convex hulls.
//!
//! SPADE's clustered grid index stores, for each cell, the *convex hull* of
//! the geometries in the cell instead of a bounding box (§5.3) — the tighter
//! bound lets the GPU-based index-filter stage discard more data. This module
//! implements Andrew's monotone-chain hull.

use crate::point::Point;
use crate::primitives::Polygon;

/// Convex hull of a point set, as a CCW ring without repeated endpoints.
///
/// Returns fewer than 3 points for degenerate inputs (empty, single point,
/// or all-collinear sets return the extreme points).
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.iter().copied().filter(|p| p.is_finite()).collect();
    if pts.len() < 3 {
        pts.sort_by(cmp_xy);
        pts.dedup();
        return pts;
    }
    pts.sort_by(cmp_xy);
    pts.dedup();
    if pts.len() < 3 {
        return pts;
    }

    let n = pts.len();
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);

    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2
            && turns_right_or_straight(hull[hull.len() - 2], hull[hull.len() - 1], p)
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && turns_right_or_straight(hull[hull.len() - 2], hull[hull.len() - 1], p)
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // the first point is repeated at the end
    hull
}

/// Convex hull wrapped as a [`Polygon`]; `None` for degenerate inputs.
pub fn convex_hull_polygon(points: &[Point]) -> Option<Polygon> {
    let h = convex_hull(points);
    if h.len() < 3 {
        None
    } else {
        Some(Polygon::new(h))
    }
}

fn cmp_xy(a: &Point, b: &Point) -> std::cmp::Ordering {
    a.x.partial_cmp(&b.x)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
}

fn turns_right_or_straight(a: Point, b: Point, c: Point) -> bool {
    (b - a).cross(c - a) <= 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::point_in_polygon;
    use crate::primitives::Ring;

    #[test]
    fn square_corners() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0), // interior point must be dropped
            Point::new(1.0, 0.0), // collinear boundary point must be dropped
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        let r = Ring::new(h);
        assert!(r.is_ccw());
        assert!((r.area() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 1.0)]).len(), 1);
        // Duplicates collapse.
        assert_eq!(
            convex_hull(&[Point::new(1.0, 1.0), Point::new(1.0, 1.0)]).len(),
            1
        );
        // Collinear points: only the two extremes survive.
        let line = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
        ];
        let h = convex_hull(&line);
        assert_eq!(h.len(), 2);
        assert!(convex_hull_polygon(&line).is_none());
    }

    #[test]
    fn hull_contains_all_inputs() {
        // A deterministic pseudo-random scatter.
        let mut pts = Vec::new();
        let mut s = 123456789u64;
        for _ in 0..200 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 33) as f64 / (1u64 << 31) as f64) * 10.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 33) as f64 / (1u64 << 31) as f64) * 10.0;
            pts.push(Point::new(x, y));
        }
        let poly = convex_hull_polygon(&pts).unwrap();
        for &p in &pts {
            assert!(point_in_polygon(p, &poly), "{p:?} outside its own hull");
        }
        // The hull ring must be convex: every turn CCW-or-straight.
        let h = &poly.exterior.points;
        let n = h.len();
        for i in 0..n {
            let a = h[i];
            let b = h[(i + 1) % n];
            let c = h[(i + 2) % n];
            assert!((b - a).cross(c - a) >= 0.0);
        }
    }

    #[test]
    fn hull_ignores_non_finite_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
            Point::new(f64::NAN, 1.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 3);
    }
}
