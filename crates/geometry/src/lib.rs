//! Geometric foundation for SPADE.
//!
//! This crate provides the vector geometry layer that the canvas model is
//! rasterized from and that exact boundary tests fall back to:
//!
//! * primitive types ([`Point`], [`Segment`], [`Triangle`], [`LineString`],
//!   [`Polygon`], [`MultiPolygon`], [`Geometry`]) and bounding boxes,
//! * exact geometric predicates (orientation, containment, intersection)
//!   used by the boundary index,
//! * distance computations used by distance-based and kNN queries,
//! * ear-clipping polygon triangulation (the paper uses Earcut.hpp; this is
//!   a from-scratch Rust implementation of the same algorithm),
//! * convex hulls (grid-index cell bounds are convex hulls, §5.3),
//! * the EPSG:4326 → EPSG:3857 projection performed in the vertex shader,
//! * WKT parsing/printing for data interchange.

pub mod bbox;
pub mod distance;
pub mod earcut;
pub mod hull;
pub mod point;
pub mod predicates;
pub mod primitives;
pub mod project;
pub mod wkt;

pub use bbox::BBox;
pub use point::Point;
pub use primitives::{Geometry, LineString, MultiPolygon, Polygon, Ring, Segment, Triangle};
