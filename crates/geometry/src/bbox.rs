//! Axis-aligned bounding boxes.

use crate::point::Point;

/// An axis-aligned bounding box, `[min, max]` inclusive on both ends.
///
/// Boxes are used for the viewport/clip region of the rasterization pipeline,
/// rectangular range constraints (§4.2 "Optimizing for Rectangular Range
/// Queries"), and coarse filtering everywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    pub min: Point,
    pub max: Point,
}

impl BBox {
    /// A box from two corner points (any opposite pair, in any order).
    pub fn new(a: Point, b: Point) -> Self {
        BBox {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The "empty" box: inverted bounds that any point expands.
    pub fn empty() -> Self {
        BBox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// True when the box contains no points (never expanded).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// The tightest box around an iterator of points.
    pub fn from_points<I: IntoIterator<Item = Point>>(pts: I) -> Self {
        let mut b = BBox::empty();
        for p in pts {
            b.expand(p);
        }
        b
    }

    /// Grow to include `p`.
    #[inline]
    pub fn expand(&mut self, p: Point) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Grow to include all of `other`.
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Shrink/grow each side by `margin` (negative shrinks).
    pub fn inflate(&self, margin: f64) -> BBox {
        BBox {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }

    /// Containment test, inclusive of the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when `other` lies entirely inside `self` (boundary inclusive).
    pub fn contains_box(&self, other: &BBox) -> bool {
        !other.is_empty()
            && other.min.x >= self.min.x
            && other.max.x <= self.max.x
            && other.min.y >= self.min.y
            && other.max.y <= self.max.y
    }

    /// Boundary-inclusive overlap test.
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The overlapping region, or `None` when disjoint.
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        if !self.intersects(other) {
            return None;
        }
        Some(BBox {
            min: self.min.max(other.min),
            max: self.max.min(other.max),
        })
    }

    /// The four corners in counter-clockwise order starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Minimum distance from `p` to the box (0 when inside).
    pub fn dist_to_point(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx.hypot(dy)
    }

    /// Maximum distance from `p` to any point of the box.
    ///
    /// Used by kNN queries to derive `r_max`, the largest circle radius
    /// needed to cover the data set from the query point (§5.2).
    pub fn max_dist_to_point(&self, p: Point) -> f64 {
        self.corners().iter().map(|c| c.dist(p)).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corner_order() {
        let b = BBox::new(Point::new(5.0, 1.0), Point::new(2.0, 8.0));
        assert_eq!(b.min, Point::new(2.0, 1.0));
        assert_eq!(b.max, Point::new(5.0, 8.0));
    }

    #[test]
    fn empty_behaviour() {
        let e = BBox::empty();
        assert!(e.is_empty());
        assert!(!e.contains(Point::ZERO));
        assert!(!e.intersects(&BBox::new(Point::ZERO, Point::new(1.0, 1.0))));
        let mut e2 = BBox::empty();
        e2.expand(Point::new(3.0, 4.0));
        assert!(!e2.is_empty());
        assert_eq!(e2.min, e2.max);
    }

    #[test]
    fn from_points_is_tight() {
        let b = BBox::from_points([
            Point::new(1.0, 1.0),
            Point::new(-2.0, 5.0),
            Point::new(0.0, 0.0),
        ]);
        assert_eq!(b.min, Point::new(-2.0, 0.0));
        assert_eq!(b.max, Point::new(1.0, 5.0));
    }

    #[test]
    fn containment_and_intersection() {
        let a = BBox::new(Point::ZERO, Point::new(10.0, 10.0));
        let b = BBox::new(Point::new(5.0, 5.0), Point::new(15.0, 15.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, BBox::new(Point::new(5.0, 5.0), Point::new(10.0, 10.0)));
        assert!(a.contains(Point::new(10.0, 10.0))); // boundary inclusive
        assert!(!a.contains(Point::new(10.0, 10.1)));
        let c = BBox::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(a.contains_box(&c));
        assert!(!c.contains_box(&a));
    }

    #[test]
    fn disjoint_boxes() {
        let a = BBox::new(Point::ZERO, Point::new(1.0, 1.0));
        let b = BBox::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = BBox::new(Point::ZERO, Point::new(1.0, 1.0));
        let b = BBox::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).unwrap().area(), 0.0);
    }

    #[test]
    fn measurements() {
        let b = BBox::new(Point::ZERO, Point::new(4.0, 2.0));
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.height(), 2.0);
        assert_eq!(b.area(), 8.0);
        assert_eq!(b.center(), Point::new(2.0, 1.0));
    }

    #[test]
    fn inflate_grows_and_shrinks() {
        let b = BBox::new(Point::ZERO, Point::new(4.0, 4.0));
        let g = b.inflate(1.0);
        assert_eq!(g.min, Point::new(-1.0, -1.0));
        assert_eq!(g.max, Point::new(5.0, 5.0));
        let s = b.inflate(-1.0);
        assert_eq!(s.area(), 4.0);
    }

    #[test]
    fn point_distances() {
        let b = BBox::new(Point::ZERO, Point::new(2.0, 2.0));
        assert_eq!(b.dist_to_point(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(b.dist_to_point(Point::new(5.0, 2.0)), 3.0);
        assert!((b.dist_to_point(Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
        assert!((b.max_dist_to_point(Point::ZERO) - (8.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn corners_are_ccw() {
        let b = BBox::new(Point::ZERO, Point::new(1.0, 1.0));
        let c = b.corners();
        // shoelace area of the corner loop must be positive (CCW)
        let mut area = 0.0;
        for i in 0..4 {
            let j = (i + 1) % 4;
            area += c[i].cross(c[j]);
        }
        assert!(area > 0.0);
    }
}
