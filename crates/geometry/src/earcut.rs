//! Ear-clipping polygon triangulation.
//!
//! The paper decomposes polygons into triangles with the Earcut.hpp library
//! before rendering (§4.2); the triangles also populate the boundary index
//! (§4.3). This module is a from-scratch Rust implementation of the same
//! ear-clipping algorithm, including hole support via hole-bridging
//! (holes are connected to the outer ring with zero-width bridges and the
//! resulting simple ring is clipped).
//!
//! The key invariant — verified by property tests — is that the triangle
//! areas sum to the polygon area, and every triangle lies inside the polygon.

use crate::point::Point;
use crate::primitives::{Polygon, Ring, Triangle};

/// Triangulate a polygon (with holes) into triangles.
///
/// Degenerate inputs (fewer than 3 vertices, zero-area rings) yield an empty
/// triangle list rather than panicking.
pub fn triangulate_polygon(poly: &Polygon) -> Vec<Triangle> {
    if poly.exterior.len() < 3 {
        return Vec::new();
    }
    let ring = if poly.holes.iter().any(|h| h.len() >= 3) {
        eliminate_holes(poly)
    } else {
        ccw_points(&poly.exterior)
    };
    triangulate_simple(&ring)
}

/// Triangulate a simple (hole-free) ring given by its vertices.
pub fn triangulate_ring(ring: &Ring) -> Vec<Triangle> {
    if ring.len() < 3 {
        return Vec::new();
    }
    triangulate_simple(&ccw_points(ring))
}

fn ccw_points(ring: &Ring) -> Vec<Point> {
    let mut pts = ring.points.clone();
    if ring.signed_area() < 0.0 {
        pts.reverse();
    }
    pts
}

fn cw_points(ring: &Ring) -> Vec<Point> {
    let mut pts = ring.points.clone();
    if ring.signed_area() > 0.0 {
        pts.reverse();
    }
    pts
}

/// Merge all holes into the exterior ring via bridges, producing a single
/// simple ring (with duplicated bridge vertices) that ear clipping handles.
fn eliminate_holes(poly: &Polygon) -> Vec<Point> {
    let mut outer = ccw_points(&poly.exterior);
    // Holes ordered by their rightmost vertex, right to left: each bridge is
    // cast towards +x, so processing right-first keeps earlier bridges from
    // blocking later ones.
    let mut holes: Vec<Vec<Point>> = poly
        .holes
        .iter()
        .filter(|h| h.len() >= 3)
        .map(cw_points)
        .collect();
    holes.sort_by(|a, b| {
        let ax = a.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
        let bx = b.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
        bx.partial_cmp(&ax).unwrap_or(std::cmp::Ordering::Equal)
    });
    for hole in holes {
        merge_hole(&mut outer, &hole);
    }
    outer
}

/// Connect a hole (CW) into the outer ring (CCW) with a bridge from the
/// hole's rightmost vertex to a visible outer vertex (Eberly's method).
fn merge_hole(outer: &mut Vec<Point>, hole: &[Point]) {
    // Rightmost hole vertex M.
    let (hi, &m) = hole
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal))
        .expect("hole has vertices");

    let n = outer.len();
    // Cast a ray from M towards +x; find the outer edge it first hits.
    let mut best: Option<(f64, usize)> = None; // (intersection x, edge start index)
    for i in 0..n {
        let a = outer[i];
        let b = outer[(i + 1) % n];
        // Edge must straddle the horizontal line through M.
        if (a.y > m.y) == (b.y > m.y) {
            continue;
        }
        let x_int = a.x + (m.y - a.y) / (b.y - a.y) * (b.x - a.x);
        if x_int >= m.x - 1e-12 && best.is_none_or(|(bx, _)| x_int < bx) {
            best = Some((x_int, i));
        }
    }

    let vis = match best {
        Some((x_int, edge)) => {
            let a = outer[edge];
            let b = outer[(edge + 1) % n];
            // Candidate visible vertex P: the edge endpoint with the larger x
            // (it lies on the near side of the ray hit).
            let (mut vis, p) = if a.x > b.x {
                (edge, a)
            } else {
                ((edge + 1) % n, b)
            };
            // If any reflex outer vertex lies inside triangle (M, I, P) it may
            // occlude P; pick the occluder with the smallest angle to the ray.
            let i_pt = Point::new(x_int, m.y);
            let tri = Triangle::new(m, i_pt, p);
            let mut best_tan = f64::INFINITY;
            for (j, &q) in outer.iter().enumerate() {
                if j == vis || q == m {
                    continue;
                }
                if q.x < m.x {
                    continue;
                }
                if crate::predicates::point_in_triangle(q, &tri) {
                    let dx = q.x - m.x;
                    let tan = if dx.abs() < 1e-30 {
                        f64::INFINITY
                    } else {
                        (q.y - m.y).abs() / dx
                    };
                    if tan < best_tan || (tan == best_tan && q.x > outer[vis].x) {
                        best_tan = tan;
                        vis = j;
                    }
                }
            }
            vis
        }
        // No edge hit (degenerate outer ring): bridge to the rightmost
        // outer vertex so we still make progress.
        None => outer
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0),
    };

    // Splice: outer[0..=vis], hole[hi], hole[hi+1..], hole[..hi], hole[hi],
    // outer[vis], outer[vis+1..]. The bridge vertices are duplicated.
    let mut merged = Vec::with_capacity(outer.len() + hole.len() + 2);
    merged.extend_from_slice(&outer[..=vis]);
    for k in 0..hole.len() {
        merged.push(hole[(hi + k) % hole.len()]);
    }
    merged.push(hole[hi]);
    merged.extend_from_slice(&outer[vis..]);
    *outer = merged;
}

/// Ear-clip a simple CCW ring (possibly containing duplicated bridge
/// vertices and collinear runs).
#[allow(clippy::needless_range_loop)]
fn triangulate_simple(pts: &[Point]) -> Vec<Triangle> {
    let n = pts.len();
    if n < 3 {
        return Vec::new();
    }
    let area2 = {
        let mut a = 0.0;
        for i in 0..n {
            a += pts[i].cross(pts[(i + 1) % n]);
        }
        a
    };
    let scale = pts
        .iter()
        .map(|p| p.x.abs().max(p.y.abs()))
        .fold(1.0, f64::max);
    let eps = scale * scale * 1e-12;
    if area2.abs() <= eps {
        return Vec::new();
    }

    let mut remaining: Vec<usize> = (0..n).collect();
    let mut tris = Vec::with_capacity(n.saturating_sub(2));

    while remaining.len() > 3 {
        let m = remaining.len();
        let mut clipped = false;
        for i in 0..m {
            let ip = remaining[(i + m - 1) % m];
            let ic = remaining[i];
            let inx = remaining[(i + 1) % m];
            let (a, b, c) = (pts[ip], pts[ic], pts[inx]);
            let cross = (b - a).cross(c - b);
            if cross <= eps {
                // Reflex or degenerate corner: not an ear.
                continue;
            }
            if ear_is_empty(pts, &remaining, a, b, c) {
                tris.push(Triangle::new(a, b, c));
                remaining.remove(i);
                clipped = true;
                break;
            }
        }
        if !clipped {
            // Numerical stalemate (duplicate bridge vertices / collinear
            // runs). Drop the flattest corner without emitting a triangle:
            // it contributes (near-)zero area, so the invariant holds.
            let m = remaining.len();
            let mut best = 0;
            let mut best_abs = f64::INFINITY;
            for i in 0..m {
                let a = pts[remaining[(i + m - 1) % m]];
                let b = pts[remaining[i]];
                let c = pts[remaining[(i + 1) % m]];
                let cr = (b - a).cross(c - b).abs();
                if cr < best_abs {
                    best_abs = cr;
                    best = i;
                }
            }
            remaining.remove(best);
        }
    }
    if remaining.len() == 3 {
        let (a, b, c) = (pts[remaining[0]], pts[remaining[1]], pts[remaining[2]]);
        if (b - a).cross(c - b).abs() > eps {
            tris.push(Triangle::new(a, b, c));
        }
    }
    tris
}

/// True when no remaining vertex lies strictly inside the candidate ear.
fn ear_is_empty(pts: &[Point], remaining: &[usize], a: Point, b: Point, c: Point) -> bool {
    let tri = Triangle::new(a, b, c);
    let bb = tri.bbox();
    for &j in remaining {
        let q = pts[j];
        // Vertices coincident with an ear corner (duplicated bridge
        // vertices) never block the ear.
        if q == a || q == b || q == c {
            continue;
        }
        if !bb.contains(q) {
            continue;
        }
        if point_strictly_in_triangle(q, &tri) {
            return false;
        }
    }
    true
}

fn point_strictly_in_triangle(p: Point, t: &Triangle) -> bool {
    let d1 = (t.b - t.a).cross(p - t.a);
    let d2 = (t.c - t.b).cross(p - t.b);
    let d3 = (t.a - t.c).cross(p - t.c);
    let scale = [t.a, t.b, t.c, p]
        .iter()
        .map(|q| q.x.abs().max(q.y.abs()))
        .fold(1.0, f64::max);
    let eps = scale * scale * 1e-12;
    d1 > eps && d2 > eps && d3 > eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;
    use crate::predicates::point_in_polygon;

    fn tri_area_sum(tris: &[Triangle]) -> f64 {
        tris.iter().map(Triangle::area).sum()
    }

    #[test]
    fn triangle_passthrough() {
        let p = Polygon::new(vec![
            Point::ZERO,
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ]);
        let t = triangulate_polygon(&p);
        assert_eq!(t.len(), 1);
        assert!((tri_area_sum(&t) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn square_two_triangles() {
        let p = Polygon::rect(BBox::new(Point::ZERO, Point::new(2.0, 2.0)));
        let t = triangulate_polygon(&p);
        assert_eq!(t.len(), 2);
        assert!((tri_area_sum(&t) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cw_input_handled() {
        let p = Polygon::new(vec![
            Point::ZERO,
            Point::new(0.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 0.0),
        ]);
        let t = triangulate_polygon(&p);
        assert!((tri_area_sum(&t) - 4.0).abs() < 1e-12);
        // All triangles CCW after normalization.
        for tr in &t {
            assert!(tr.signed_area() > 0.0);
        }
    }

    #[test]
    fn concave_polygon() {
        // The "U" polygon from the predicate tests.
        let p = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 6.0),
            Point::new(0.0, 6.0),
        ]);
        let t = triangulate_polygon(&p);
        assert_eq!(t.len(), 6); // n - 2 triangles for a simple polygon
        assert!((tri_area_sum(&t) - p.area()).abs() < 1e-9);
        // Each triangle centroid must lie inside the polygon.
        for tr in &t {
            assert!(point_in_polygon(tr.centroid(), &p));
        }
    }

    #[test]
    fn polygon_with_hole() {
        let p = Polygon::with_holes(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(0.0, 10.0),
            ],
            vec![vec![
                Point::new(4.0, 4.0),
                Point::new(6.0, 4.0),
                Point::new(6.0, 6.0),
                Point::new(4.0, 6.0),
            ]],
        );
        let t = triangulate_polygon(&p);
        assert!((tri_area_sum(&t) - 96.0).abs() < 1e-9);
        for tr in &t {
            let c = tr.centroid();
            assert!(point_in_polygon(c, &p), "centroid {c:?} escaped polygon");
        }
    }

    #[test]
    fn polygon_with_two_holes() {
        let p = Polygon::with_holes(
            vec![
                Point::new(0.0, 0.0),
                Point::new(12.0, 0.0),
                Point::new(12.0, 6.0),
                Point::new(0.0, 6.0),
            ],
            vec![
                vec![
                    Point::new(2.0, 2.0),
                    Point::new(4.0, 2.0),
                    Point::new(4.0, 4.0),
                    Point::new(2.0, 4.0),
                ],
                vec![
                    Point::new(8.0, 2.0),
                    Point::new(10.0, 2.0),
                    Point::new(10.0, 4.0),
                    Point::new(8.0, 4.0),
                ],
            ],
        );
        let t = triangulate_polygon(&p);
        assert!((tri_area_sum(&t) - (72.0 - 8.0)).abs() < 1e-9);
        for tr in &t {
            assert!(point_in_polygon(tr.centroid(), &p));
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(triangulate_polygon(&Polygon::new(vec![])).is_empty());
        assert!(triangulate_polygon(&Polygon::new(vec![Point::ZERO])).is_empty());
        assert!(
            triangulate_polygon(&Polygon::new(vec![Point::ZERO, Point::new(1.0, 1.0)])).is_empty()
        );
        // Collinear "polygon" has zero area.
        let flat = Polygon::new(vec![
            Point::ZERO,
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ]);
        assert!(triangulate_polygon(&flat).is_empty());
    }

    #[test]
    fn circle_triangulation_preserves_area() {
        let c = Polygon::circle(Point::new(3.0, 3.0), 2.0, 64);
        let t = triangulate_polygon(&c);
        assert_eq!(t.len(), 62);
        assert!((tri_area_sum(&t) - c.area()).abs() < 1e-9);
    }

    #[test]
    fn star_polygon() {
        // A 5-pointed star (highly concave).
        let mut pts = Vec::new();
        for i in 0..10 {
            let r = if i % 2 == 0 { 4.0 } else { 1.5 };
            let t = std::f64::consts::PI * i as f64 / 5.0;
            pts.push(Point::new(r * t.cos(), r * t.sin()));
        }
        let p = Polygon::new(pts);
        let t = triangulate_polygon(&p);
        assert_eq!(t.len(), 8);
        assert!((tri_area_sum(&t) - p.area()).abs() < 1e-9);
        for tr in &t {
            assert!(point_in_polygon(tr.centroid(), &p));
        }
    }
}
