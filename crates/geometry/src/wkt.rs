//! Well-Known Text (WKT) parsing and printing.
//!
//! The paper measures its polygonal data sets in WKT format (Table 1). This
//! module supports the subset SPADE stores: `POINT`, `LINESTRING`, `POLYGON`
//! (with holes) and `MULTIPOLYGON`.

use crate::point::Point;
use crate::primitives::{Geometry, LineString, MultiPolygon, Polygon};
use std::fmt::Write as _;

/// A WKT parse error with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WktError(pub String);

impl std::fmt::Display for WktError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WKT parse error: {}", self.0)
    }
}

impl std::error::Error for WktError {}

/// Render a geometry as WKT.
pub fn to_wkt(g: &Geometry) -> String {
    let mut s = String::new();
    match g {
        Geometry::Point(p) => {
            write!(s, "POINT ({} {})", fmt_f(p.x), fmt_f(p.y)).unwrap();
        }
        Geometry::LineString(l) => {
            s.push_str("LINESTRING ");
            write_coord_list(&mut s, &l.points);
        }
        Geometry::Polygon(p) => {
            s.push_str("POLYGON ");
            write_polygon_body(&mut s, p);
        }
        Geometry::MultiPolygon(m) => {
            s.push_str("MULTIPOLYGON (");
            for (i, p) in m.polygons.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_polygon_body(&mut s, p);
            }
            s.push(')');
        }
    }
    s
}

fn fmt_f(v: f64) -> String {
    // Trim trailing zeros for compactness while keeping full precision.
    let s = format!("{v}");
    s
}

fn write_coord_list(s: &mut String, pts: &[Point]) {
    s.push('(');
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        write!(s, "{} {}", fmt_f(p.x), fmt_f(p.y)).unwrap();
    }
    s.push(')');
}

fn write_ring_closed(s: &mut String, pts: &[Point]) {
    s.push('(');
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        write!(s, "{} {}", fmt_f(p.x), fmt_f(p.y)).unwrap();
    }
    // WKT rings repeat the first coordinate at the end.
    if let Some(p) = pts.first() {
        write!(s, ", {} {}", fmt_f(p.x), fmt_f(p.y)).unwrap();
    }
    s.push(')');
}

fn write_polygon_body(s: &mut String, p: &Polygon) {
    s.push('(');
    write_ring_closed(s, &p.exterior.points);
    for h in &p.holes {
        s.push_str(", ");
        write_ring_closed(s, &h.points);
    }
    s.push(')');
}

/// Parse a WKT string into a geometry.
pub fn from_wkt(input: &str) -> Result<Geometry, WktError> {
    let mut p = Parser::new(input);
    let g = p.parse_geometry()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(WktError(format!("trailing input at offset {}", p.pos)));
    }
    Ok(g)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            src: s.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), WktError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(WktError(format!(
                "expected '{}' at offset {}",
                c as char, self.pos
            )))
        }
    }

    fn keyword(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).to_ascii_uppercase()
    }

    fn number(&mut self) -> Result<f64, WktError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(WktError(format!("expected number at offset {}", self.pos)));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| WktError(format!("invalid number at offset {start}")))
    }

    fn coord(&mut self) -> Result<Point, WktError> {
        let x = self.number()?;
        let y = self.number()?;
        Ok(Point::new(x, y))
    }

    fn coord_list(&mut self) -> Result<Vec<Point>, WktError> {
        self.expect(b'(')?;
        let mut out = vec![self.coord()?];
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    out.push(self.coord()?);
                }
                Some(b')') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(WktError(format!("expected ',' or ')' at {}", self.pos))),
            }
        }
    }

    fn ring_list(&mut self) -> Result<Vec<Vec<Point>>, WktError> {
        self.expect(b'(')?;
        let mut out = vec![self.coord_list()?];
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    out.push(self.coord_list()?);
                }
                Some(b')') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(WktError(format!("expected ',' or ')' at {}", self.pos))),
            }
        }
    }

    fn polygon_from_rings(rings: Vec<Vec<Point>>) -> Result<Polygon, WktError> {
        let mut it = rings.into_iter();
        let exterior = it.next().ok_or_else(|| WktError("empty polygon".into()))?;
        Ok(Polygon::with_holes(exterior, it.collect()))
    }

    fn parse_geometry(&mut self) -> Result<Geometry, WktError> {
        match self.keyword().as_str() {
            "POINT" => {
                self.expect(b'(')?;
                let p = self.coord()?;
                self.expect(b')')?;
                Ok(Geometry::Point(p))
            }
            "LINESTRING" => Ok(Geometry::LineString(LineString::new(self.coord_list()?))),
            "POLYGON" => Ok(Geometry::Polygon(Self::polygon_from_rings(
                self.ring_list()?,
            )?)),
            "MULTIPOLYGON" => {
                self.expect(b'(')?;
                let mut polys = vec![Self::polygon_from_rings(self.ring_list()?)?];
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                            polys.push(Self::polygon_from_rings(self.ring_list()?)?);
                        }
                        Some(b')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(WktError(format!("expected ',' or ')' at {}", self.pos))),
                    }
                }
                Ok(Geometry::MultiPolygon(MultiPolygon::new(polys)))
            }
            kw => Err(WktError(format!("unsupported geometry type '{kw}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_roundtrip() {
        let g = Geometry::Point(Point::new(-74.5, 40.25));
        let s = to_wkt(&g);
        assert_eq!(s, "POINT (-74.5 40.25)");
        assert_eq!(from_wkt(&s).unwrap(), g);
    }

    #[test]
    fn linestring_roundtrip() {
        let g = Geometry::LineString(LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.5),
            Point::new(2.0, 0.0),
        ]));
        let s = to_wkt(&g);
        assert_eq!(s, "LINESTRING (0 0, 1 1.5, 2 0)");
        assert_eq!(from_wkt(&s).unwrap(), g);
    }

    #[test]
    fn polygon_roundtrip_with_hole() {
        let g = Geometry::Polygon(Polygon::with_holes(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(0.0, 10.0),
            ],
            vec![vec![
                Point::new(4.0, 4.0),
                Point::new(6.0, 4.0),
                Point::new(6.0, 6.0),
                Point::new(4.0, 6.0),
            ]],
        ));
        let s = to_wkt(&g);
        let back = from_wkt(&s).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn multipolygon_roundtrip() {
        let g = Geometry::MultiPolygon(MultiPolygon::new(vec![
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 1.0),
            ]),
            Polygon::new(vec![
                Point::new(5.0, 5.0),
                Point::new(6.0, 5.0),
                Point::new(5.0, 6.0),
            ]),
        ]));
        let s = to_wkt(&g);
        assert!(s.starts_with("MULTIPOLYGON ((("));
        assert_eq!(from_wkt(&s).unwrap(), g);
    }

    #[test]
    fn parses_case_insensitive_and_whitespace() {
        let g = from_wkt("  point ( 1.0   2.0 ) ").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(1.0, 2.0)));
    }

    #[test]
    fn parses_scientific_notation() {
        let g = from_wkt("POINT (1e3 -2.5E-2)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(1000.0, -0.025)));
    }

    #[test]
    fn closed_ring_duplicate_dropped() {
        let g = from_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))").unwrap();
        match g {
            Geometry::Polygon(p) => assert_eq!(p.exterior.len(), 4),
            _ => panic!("not a polygon"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_wkt("").is_err());
        assert!(from_wkt("CIRCLE (0 0)").is_err());
        assert!(from_wkt("POINT (1)").is_err());
        assert!(from_wkt("POINT (1 2").is_err());
        assert!(from_wkt("POINT (1 2) garbage").is_err());
        assert!(from_wkt("POLYGON (())").is_err());
        assert!(from_wkt("LINESTRING (a b)").is_err());
    }

    #[test]
    fn error_display() {
        let e = from_wkt("NOPE").unwrap_err();
        assert!(e.to_string().contains("unsupported"));
    }
}
