//! Distance computations.
//!
//! Distance-based selections/joins and kNN queries (§4.2, §5.2) need the
//! minimum Euclidean distance from points to points, segments and polygons.
//! SPADE answers these *accurately* with respect to the full geometry —
//! unlike systems that approximate the distance to a line/polygon by the
//! distance to its center (the paper calls this out for GeoSpark).

use crate::point::Point;
use crate::predicates::point_in_polygon;
use crate::primitives::{LineString, Polygon, Segment};

/// Minimum distance from `p` to segment `s`.
pub fn point_segment_distance(p: Point, s: Segment) -> f64 {
    let d = s.b - s.a;
    let len_sq = d.norm_sq();
    if len_sq <= f64::EPSILON {
        return p.dist(s.a);
    }
    let t = ((p - s.a).dot(d) / len_sq).clamp(0.0, 1.0);
    p.dist(s.a + d * t)
}

/// Minimum distance between two segments (0 when they intersect).
pub fn segment_segment_distance(s1: Segment, s2: Segment) -> f64 {
    if crate::predicates::segments_intersect(s1, s2) {
        return 0.0;
    }
    point_segment_distance(s1.a, s2)
        .min(point_segment_distance(s1.b, s2))
        .min(point_segment_distance(s2.a, s1))
        .min(point_segment_distance(s2.b, s1))
}

/// Minimum distance from `p` to a polyline.
pub fn point_linestring_distance(p: Point, l: &LineString) -> f64 {
    match l.points.len() {
        0 => f64::INFINITY,
        1 => p.dist(l.points[0]),
        _ => l
            .segments()
            .map(|s| point_segment_distance(p, s))
            .fold(f64::INFINITY, f64::min),
    }
}

/// Minimum distance from `p` to a polygon (0 when inside or on the rim).
pub fn point_polygon_distance(p: Point, poly: &Polygon) -> f64 {
    if point_in_polygon(p, poly) {
        return 0.0;
    }
    poly.boundary_edges()
        .iter()
        .map(|&e| point_segment_distance(p, e))
        .fold(f64::INFINITY, f64::min)
}

/// Minimum distance between a segment and a polygon.
pub fn segment_polygon_distance(s: Segment, poly: &Polygon) -> f64 {
    if crate::predicates::segment_intersects_polygon(s, poly) {
        return 0.0;
    }
    poly.boundary_edges()
        .iter()
        .map(|&e| segment_segment_distance(s, e))
        .fold(f64::INFINITY, f64::min)
}

/// Minimum distance between two polygons.
pub fn polygon_polygon_distance(p1: &Polygon, p2: &Polygon) -> f64 {
    if crate::predicates::polygons_intersect(p1, p2) {
        return 0.0;
    }
    let e2 = p2.boundary_edges();
    p1.boundary_edges()
        .iter()
        .map(|&a| {
            e2.iter()
                .map(|&b| segment_segment_distance(a, b))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;

    fn square() -> Polygon {
        Polygon::rect(BBox::new(Point::ZERO, Point::new(4.0, 4.0)))
    }

    #[test]
    fn point_segment_perpendicular() {
        let s = Segment::new(Point::ZERO, Point::new(4.0, 0.0));
        assert!((point_segment_distance(Point::new(2.0, 3.0), s) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn point_segment_past_endpoints() {
        let s = Segment::new(Point::ZERO, Point::new(4.0, 0.0));
        assert!((point_segment_distance(Point::new(7.0, 4.0), s) - 5.0).abs() < 1e-12);
        assert!((point_segment_distance(Point::new(-3.0, 4.0), s) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn point_degenerate_segment() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert!((point_segment_distance(Point::new(4.0, 5.0), s) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn point_on_segment_is_zero() {
        let s = Segment::new(Point::ZERO, Point::new(4.0, 0.0));
        assert_eq!(point_segment_distance(Point::new(2.0, 0.0), s), 0.0);
    }

    #[test]
    fn segment_segment_cases() {
        let s1 = Segment::new(Point::ZERO, Point::new(4.0, 0.0));
        // Crossing → 0.
        let s2 = Segment::new(Point::new(2.0, -1.0), Point::new(2.0, 1.0));
        assert_eq!(segment_segment_distance(s1, s2), 0.0);
        // Parallel at height 2.
        let s3 = Segment::new(Point::new(0.0, 2.0), Point::new(4.0, 2.0));
        assert!((segment_segment_distance(s1, s3) - 2.0).abs() < 1e-12);
        // Endpoint to endpoint.
        let s4 = Segment::new(Point::new(7.0, 4.0), Point::new(9.0, 4.0));
        assert!((segment_segment_distance(s1, s4) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn point_linestring_cases() {
        let l = LineString::new(vec![
            Point::ZERO,
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
        ]);
        assert!((point_linestring_distance(Point::new(6.0, 2.0), &l) - 2.0).abs() < 1e-12);
        assert_eq!(
            point_linestring_distance(Point::ZERO, &LineString::default()),
            f64::INFINITY
        );
        let single = LineString::new(vec![Point::new(1.0, 1.0)]);
        assert!((point_linestring_distance(Point::new(4.0, 5.0), &single) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn point_polygon_cases() {
        let p = square();
        assert_eq!(point_polygon_distance(Point::new(2.0, 2.0), &p), 0.0); // inside
        assert_eq!(point_polygon_distance(Point::new(4.0, 2.0), &p), 0.0); // on rim
        assert!((point_polygon_distance(Point::new(7.0, 2.0), &p) - 3.0).abs() < 1e-12);
        assert!((point_polygon_distance(Point::new(7.0, 8.0), &p) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn segment_polygon_cases() {
        let p = square();
        let crossing = Segment::new(Point::new(-1.0, 2.0), Point::new(5.0, 2.0));
        assert_eq!(segment_polygon_distance(crossing, &p), 0.0);
        let near = Segment::new(Point::new(6.0, 0.0), Point::new(6.0, 4.0));
        assert!((segment_polygon_distance(near, &p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn polygon_polygon_cases() {
        let a = square();
        let b = Polygon::rect(BBox::new(Point::new(7.0, 0.0), Point::new(9.0, 4.0)));
        assert!((polygon_polygon_distance(&a, &b) - 3.0).abs() < 1e-12);
        let c = Polygon::rect(BBox::new(Point::new(2.0, 2.0), Point::new(9.0, 4.0)));
        assert_eq!(polygon_polygon_distance(&a, &c), 0.0);
        // Nested polygons intersect → distance 0.
        let inner = Polygon::rect(BBox::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0)));
        assert_eq!(polygon_polygon_distance(&a, &inner), 0.0);
    }
}
