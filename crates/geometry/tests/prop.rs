//! Property tests for the geometric predicates — the exactness of every
//! engine result rests on these invariants.

use proptest::prelude::*;
use spade_geometry::distance::{point_segment_distance, segment_segment_distance};
use spade_geometry::hull::convex_hull;
use spade_geometry::predicates::*;
use spade_geometry::project::{lonlat_to_mercator, mercator_to_lonlat};
use spade_geometry::{Point, Polygon, Segment, Triangle};

prop_compose! {
    fn pt()(x in -100.0f64..100.0, y in -100.0f64..100.0) -> Point {
        Point::new(x, y)
    }
}

prop_compose! {
    fn seg()(a in pt(), b in pt()) -> Segment {
        Segment::new(a, b)
    }
}

prop_compose! {
    fn tri()(a in pt(), b in pt(), c in pt()) -> Triangle {
        Triangle::new(a, b, c)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn segment_intersection_consistent_with_distance(s1 in seg(), s2 in seg()) {
        // intersect ⇒ distance 0; distance clearly positive ⇒ no intersect.
        let d = segment_segment_distance(s1, s2);
        if segments_intersect(s1, s2) {
            prop_assert!(d == 0.0, "intersecting segments at distance {d}");
        } else {
            prop_assert!(d > 0.0, "disjoint segments at distance 0");
        }
    }

    #[test]
    fn segment_intersection_is_symmetric(s1 in seg(), s2 in seg()) {
        prop_assert_eq!(segments_intersect(s1, s2), segments_intersect(s2, s1));
    }

    #[test]
    fn triangle_containment_matches_barycentric(p in pt(), t in tri()) {
        prop_assume!(t.area() > 1e-6);
        // Barycentric-coordinate oracle (winding-normalized).
        let (a, b, c) = if t.signed_area() > 0.0 {
            (t.a, t.b, t.c)
        } else {
            (t.a, t.c, t.b)
        };
        let area2 = (b - a).cross(c - a);
        let u = (b - a).cross(p - a) / area2;
        let v = (c - b).cross(p - b) / area2;
        let w = (a - c).cross(p - c) / area2;
        let inside = u >= 0.0 && v >= 0.0 && w >= 0.0;
        prop_assert_eq!(point_in_triangle(p, &t), inside);
    }

    #[test]
    fn triangle_intersection_symmetric(t1 in tri(), t2 in tri()) {
        prop_assert_eq!(triangles_intersect(&t1, &t2), triangles_intersect(&t2, &t1));
    }

    #[test]
    fn triangle_vertices_intersect_their_triangle(t in tri()) {
        prop_assume!(t.area() > 1e-9);
        for v in t.vertices() {
            prop_assert!(point_in_triangle(v, &t));
        }
        prop_assert!(point_in_triangle(t.centroid(), &t));
        prop_assert!(triangles_intersect(&t, &t));
    }

    #[test]
    fn point_segment_distance_is_metric_like(p in pt(), s in seg()) {
        let d = point_segment_distance(p, s);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= p.dist(s.a) + 1e-9);
        prop_assert!(d <= p.dist(s.b) + 1e-9);
    }

    #[test]
    fn hull_is_idempotent(pts in prop::collection::vec(pt(), 3..60)) {
        let h1 = convex_hull(&pts);
        let h2 = convex_hull(&h1);
        prop_assert_eq!(h1, h2);
    }

    #[test]
    fn mercator_roundtrip(lon in -179.0f64..179.0, lat in -80.0f64..80.0) {
        let p = Point::new(lon, lat);
        let q = mercator_to_lonlat(lonlat_to_mercator(p));
        prop_assert!(p.dist(q) < 1e-9, "{:?} -> {:?}", p, q);
    }

    #[test]
    fn polygon_intersection_symmetric_on_blobs(
        c1 in pt(), r1 in 1.0f64..20.0, n1 in 3usize..9,
        c2 in pt(), r2 in 1.0f64..20.0, n2 in 3usize..9,
    ) {
        let p1 = Polygon::circle(c1, r1, n1);
        let p2 = Polygon::circle(c2, r2, n2);
        prop_assert_eq!(polygons_intersect(&p1, &p2), polygons_intersect(&p2, &p1));
        // Distance-based cross-check.
        let d = spade_geometry::distance::polygon_polygon_distance(&p1, &p2);
        prop_assert_eq!(d == 0.0, polygons_intersect(&p1, &p2));
    }
}
