//! The engine object and shared query machinery.

use crate::config::EngineConfig;
use crate::stats::QueryStats;
use spade_canvas::canvas::CanvasLayer;
use spade_canvas::create::{self, PreparedPolygon};
use spade_geometry::{BBox, Point, Segment, Triangle};
use spade_gpu::{DeviceMemory, Pipeline, Viewport};
use std::sync::Arc;
use std::time::Instant;

/// The SPADE engine: the software pipeline, the simulated device, and the
/// configuration. One instance serves many queries; per-query statistics
/// are measured with snapshots.
pub struct Spade {
    pub config: EngineConfig,
    pub pipeline: Pipeline,
    /// Shared with the pipeline's framebuffer arena, which charges
    /// checked-out render targets against the same ledger as data cells.
    pub device: Arc<DeviceMemory>,
    /// The hot-query serving layer: rendered results keyed by
    /// `(query fingerprint, dataset version)`, served by the cached
    /// dispatchers in [`crate::query`]. Its resident bytes are charged
    /// through the arena into the device ledger.
    pub result_cache: crate::result_cache::ResultCache,
    /// Measured per-dataset statistics feeding the optimizer's adaptive
    /// decisions (and the decision/misprediction counters the server
    /// exports) — see [`crate::optimizer::stats`].
    pub observed: crate::optimizer::stats::ObservedStats,
}

impl Spade {
    pub fn new(config: EngineConfig) -> Self {
        if config.tracing {
            // One-way arming: tracing is process-global, and an untraced
            // engine must not silence a traced one sharing the process.
            crate::trace::set_enabled(true);
        }
        let pipeline = Pipeline::with_workers(config.effective_workers());
        pipeline.set_simd_kernels(config.simd_kernels);
        let device = Arc::new(
            DeviceMemory::with_bandwidth(config.device_memory, config.bandwidth)
                .paced(config.pace_transfers),
        );
        pipeline.arena().bind_ledger(Arc::clone(&device));
        pipeline.arena().set_retain_limit(config.texture_pool_bytes);
        let result_cache = crate::result_cache::ResultCache::new(
            config.result_cache_bytes,
            config.result_cache_enabled,
        );
        result_cache.bind_arena(pipeline.arena_handle());
        Spade {
            config,
            pipeline,
            device,
            result_cache,
            observed: crate::optimizer::stats::ObservedStats::new(),
        }
    }

    /// A default-configured engine.
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The query viewport over a world region: square pixels, longer axis
    /// at the configured resolution, slightly inflated so geometry exactly
    /// on the region border still rasterizes inside.
    pub fn viewport_for(&self, region: &BBox) -> Viewport {
        let pad = (region.width().max(region.height()) * 1e-6).max(1e-9);
        Viewport::square_pixels(region.inflate(pad), self.config.resolution)
    }

    /// Begin measuring a query. Opens a per-query recording frame on the
    /// calling thread ([`spade_gpu::record`]), so the measurement sees only
    /// this query's pipeline and transfer work even when other queries run
    /// concurrently against the same engine.
    pub(crate) fn begin(&self) -> Measure {
        spade_gpu::record::begin();
        Measure {
            start: Instant::now(),
            open: true,
        }
    }
}

/// Per-query measurement backed by a thread-local recording frame, so
/// overlapping queries on a shared engine never see each other's counters.
/// If a query unwinds early (an error or cancellation propagating with `?`
/// before `finish`), the `Drop` impl closes the frame so the thread's frame
/// stack stays balanced.
pub(crate) struct Measure {
    start: Instant,
    open: bool,
}

impl Measure {
    /// Close the measurement into a stats record. `disk_io` is the wall
    /// time spent in block loads, `disk_bytes` the bytes read, both
    /// tracked by the caller; device transfers come from this query's own
    /// recording frame, not the global ledger.
    pub(crate) fn finish(
        mut self,
        spade: &Spade,
        disk_io: std::time::Duration,
        disk_bytes: u64,
        polygon_time: std::time::Duration,
        cells_loaded: u64,
        result_count: u64,
    ) -> QueryStats {
        self.open = false;
        let frame = spade_gpu::record::finish();
        let dev_time = frame.transfer_time();
        let mut stats = QueryStats {
            io_time: disk_io + dev_time,
            gpu_time: std::time::Duration::from_nanos(frame.gpu.gpu_nanos),
            polygon_time,
            bytes_from_disk: disk_bytes,
            bytes_to_device: frame.transfer_bytes,
            passes: frame.gpu.draw_calls,
            cells_loaded,
            result_count,
            ..Default::default()
        };
        // Include modeled device-transfer time in the wall total: on real
        // hardware the bus transfer is wall time; in simulation it is
        // accounting, so it is added on top of the measured elapsed time —
        // unless transfers are paced, in which case the sleep already
        // occupied wall time and adding it again would double-count.
        let extra = if spade.device.is_paced() {
            std::time::Duration::ZERO
        } else {
            dev_time
        };
        stats.finish(self.start.elapsed() + extra);
        stats
    }
}

impl Drop for Measure {
    fn drop(&mut self) {
        if self.open {
            let _ = spade_gpu::record::finish();
        }
    }
}

/// A rendered query constraint: a polygon-class canvas layer and its
/// viewport. Built from polygonal constraints, rectangles, or distance
/// constraints; the select/join executors sample it as a texture.
pub struct Constraint {
    pub layer: CanvasLayer,
    pub viewport: Viewport,
    /// Total vertex count of the constraint geometry (reported for the
    /// polygon-complexity analyses in §6.2).
    pub num_vertices: usize,
}

impl Constraint {
    /// Wrap an already-rendered canvas layer (distance canvases are built
    /// by the [`spade_canvas::distance`] generators and masked through the
    /// same machinery as polygonal constraints).
    pub fn from_layer(layer: CanvasLayer, viewport: Viewport, num_vertices: usize) -> Constraint {
        Constraint {
            layer,
            viewport,
            num_vertices,
        }
    }

    /// Build a constraint canvas from prepared polygons (one rendering
    /// pass for interiors, one for boundaries, §5.2 step 1).
    pub fn from_polygons(spade: &Spade, polys: &[PreparedPolygon]) -> Constraint {
        Self::from_polygons_res(spade, polys, spade.config.resolution)
    }

    /// Like [`Constraint::from_polygons`] with an explicit resolution —
    /// index filtering runs at a coarse resolution since cell hulls only
    /// gate block loads (§5.3's filter stage tolerates coarse canvases:
    /// false positives just load one extra cell).
    pub fn from_polygons_res(
        spade: &Spade,
        polys: &[PreparedPolygon],
        resolution: u32,
    ) -> Constraint {
        let mut bbox = BBox::empty();
        let mut verts = 0;
        for p in polys {
            bbox = bbox.union(&p.bbox);
            verts += p.num_vertices();
        }
        let pad = (bbox.width().max(bbox.height()) * 1e-6).max(1e-9);
        let viewport = Viewport::square_pixels(bbox.inflate(pad), resolution);
        let layer = create::render_polygons(&spade.pipeline, viewport, polys);
        Constraint {
            layer,
            viewport,
            num_vertices: verts,
        }
    }

    /// Build a constraint from axis-parallel rectangles (the range-query
    /// fast path through the geometry shader, §4.2).
    pub fn from_rects(spade: &Spade, rects: &[(u32, BBox)]) -> Constraint {
        let mut bbox = BBox::empty();
        for (_, b) in rects {
            bbox = bbox.union(b);
        }
        let viewport = spade.viewport_for(&bbox);
        let layer = create::render_rects(&spade.pipeline, viewport, rects);
        Constraint {
            layer,
            viewport,
            num_vertices: rects.len() * 4,
        }
    }

    /// Classify-and-match a point against the constraint, appending the
    /// ids of matching constraint objects to `out` (cleared first). The
    /// out-parameter keeps the hot fragment path allocation-free.
    pub fn match_point_into(&self, p: Point, out: &mut Vec<u32>) {
        out.clear();
        let Some((x, y)) = self.viewport.world_to_pixel(p) else {
            return;
        };
        let v = self.layer.texture.get(x, y);
        match spade_canvas::canvas::classify(v) {
            spade_canvas::PixelClass::Outside => {}
            spade_canvas::PixelClass::Interior => {
                out.push(spade_canvas::canvas::pixel_id(v).expect("interior pixel id"));
            }
            spade_canvas::PixelClass::Boundary => {
                let vb = spade_canvas::canvas::pixel_bound(v).expect("boundary pixel vb");
                out.extend(self.layer.boundary.matches_point_at((x, y), vb, p));
            }
        }
    }

    /// Boolean form: does the point intersect *any* constraint object?
    /// (The selection fast path: no id list needed, no allocation.)
    pub fn match_point_any(&self, p: Point) -> bool {
        let Some((x, y)) = self.viewport.world_to_pixel(p) else {
            return false;
        };
        let v = self.layer.texture.get(x, y);
        match spade_canvas::canvas::classify(v) {
            spade_canvas::PixelClass::Outside => false,
            spade_canvas::PixelClass::Interior => true,
            spade_canvas::PixelClass::Boundary => {
                let vb = spade_canvas::canvas::pixel_bound(v).expect("boundary pixel vb");
                self.layer.boundary.test_point_at((x, y), vb, p)
            }
        }
    }

    /// Convenience allocating form of [`Constraint::match_point_into`].
    pub fn match_point(&self, p: Point) -> Vec<u32> {
        let mut out = Vec::new();
        self.match_point_into(p, &mut out);
        out
    }

    /// Match a segment fragment at a given canvas pixel.
    pub fn match_segment_at(&self, px: (u32, u32), s: Segment, out: &mut Vec<u32>) {
        self.match_prim_at(px, out, |bi, vb, out| {
            out.extend(bi.matches_segment_at(px, vb, s))
        })
    }

    /// Match a triangle fragment at a given canvas pixel.
    pub fn match_triangle_at(&self, px: (u32, u32), t: &Triangle, out: &mut Vec<u32>) {
        self.match_prim_at(px, out, |bi, vb, out| {
            out.extend(bi.matches_triangle_at(px, vb, t))
        })
    }

    fn match_prim_at(
        &self,
        px: (u32, u32),
        out: &mut Vec<u32>,
        exact: impl Fn(&spade_canvas::BoundaryIndex, u32, &mut Vec<u32>),
    ) {
        out.clear();
        let v = self.layer.texture.get(px.0, px.1);
        match spade_canvas::canvas::classify(v) {
            spade_canvas::PixelClass::Outside => {}
            // The whole pixel is covered by this constraint object, and the
            // fragment witnesses the candidate touching the pixel.
            spade_canvas::PixelClass::Interior => {
                out.push(spade_canvas::canvas::pixel_id(v).expect("interior pixel id"));
            }
            spade_canvas::PixelClass::Boundary => {
                let vb = spade_canvas::canvas::pixel_bound(v).expect("boundary pixel vb");
                exact(&self.layer.boundary, vb, out);
            }
        }
    }

    /// Device byte footprint of this constraint (texture + boundary index).
    pub fn byte_size(&self) -> u64 {
        (self.layer.texture.byte_size() + self.layer.boundary.byte_size()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_geometry::Polygon;

    fn engine() -> Spade {
        Spade::new(EngineConfig::test_small())
    }

    #[test]
    fn viewport_covers_region() {
        let s = engine();
        let vp = s.viewport_for(&BBox::new(Point::ZERO, Point::new(10.0, 5.0)));
        assert!(vp.world.contains(Point::ZERO));
        assert!(vp.world.contains(Point::new(10.0, 5.0)));
        assert_eq!(vp.width, s.config.resolution);
    }

    #[test]
    fn constraint_matches_points() {
        let s = engine();
        let poly = Polygon::rect(BBox::new(Point::new(2.0, 2.0), Point::new(8.0, 8.0)));
        let prepared = vec![PreparedPolygon::prepare(7, &poly)];
        let c = Constraint::from_polygons(&s, &prepared);
        assert_eq!(c.match_point(Point::new(5.0, 5.0)), vec![7]);
        assert_eq!(c.match_point(Point::new(2.0, 5.0)), vec![7]); // on edge
        assert!(c.match_point(Point::new(1.0, 1.0)).is_empty());
        assert!(c.match_point(Point::new(100.0, 100.0)).is_empty()); // off canvas
        assert_eq!(c.num_vertices, 4);
        assert!(c.byte_size() > 0);
    }

    #[test]
    fn rect_constraint_equivalent() {
        let s = engine();
        let bb = BBox::new(Point::new(2.0, 2.0), Point::new(8.0, 8.0));
        let c = Constraint::from_rects(&s, &[(3, bb)]);
        assert_eq!(c.match_point(Point::new(5.0, 5.0)), vec![3]);
        assert!(c.match_point(Point::new(8.7, 5.0)).is_empty());
        // Boundary-exactness right at the rim.
        assert_eq!(c.match_point(Point::new(8.0, 8.0)), vec![3]);
    }

    #[test]
    fn measurement_produces_breakdown() {
        let s = engine();
        let m = s.begin();
        // Some GPU work.
        let poly = Polygon::rect(BBox::new(Point::ZERO, Point::new(4.0, 4.0)));
        let _ = Constraint::from_polygons(&s, &[PreparedPolygon::prepare(0, &poly)]);
        let stats = m.finish(
            &s,
            std::time::Duration::from_millis(1),
            123,
            std::time::Duration::ZERO,
            0,
            42,
        );
        assert!(stats.total_time > std::time::Duration::ZERO);
        assert!(stats.passes >= 2); // interior + boundary pass
        assert_eq!(stats.bytes_from_disk, 123);
        assert_eq!(stats.result_count, 42);
        assert!(stats.io_time >= std::time::Duration::from_millis(1));
    }

    /// Overlapping queries on one shared engine must each see only their
    /// own pipeline work: per-query deltas, not global diffs.
    #[test]
    fn concurrent_measurements_do_not_double_count() {
        let s = engine();
        let poly = Polygon::rect(BBox::new(Point::ZERO, Point::new(4.0, 4.0)));

        // Reference: the work one constraint render performs, run alone.
        let m = s.begin();
        let _ = Constraint::from_polygons(&s, &[PreparedPolygon::prepare(0, &poly)]);
        let alone = m.finish(
            &s,
            std::time::Duration::ZERO,
            0,
            std::time::Duration::ZERO,
            0,
            0,
        );

        // 4 threads run the same query concurrently against the same
        // engine; every one must report exactly the solo pass count and
        // byte volume even though the global counters see 4× the work.
        let stats: Vec<crate::stats::QueryStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let m = s.begin();
                        let _ = s.device.upload(64);
                        let _ =
                            Constraint::from_polygons(&s, &[PreparedPolygon::prepare(0, &poly)]);
                        s.device.free(64);
                        m.finish(
                            &s,
                            std::time::Duration::ZERO,
                            0,
                            std::time::Duration::ZERO,
                            0,
                            0,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for st in &stats {
            assert_eq!(st.passes, alone.passes, "pipeline passes leaked");
            assert_eq!(st.bytes_to_device, 64, "transfers leaked across queries");
        }
    }

    /// A measurement abandoned by an early error (`?` before `finish`)
    /// must not leave its frame on the thread stack and corrupt the next
    /// query's attribution.
    #[test]
    fn dropped_measure_closes_its_frame() {
        let s = engine();
        {
            let _m = s.begin(); // dropped without finish, as on an error path
            s.pipeline.stats.add_draw_call();
        }
        let m = s.begin();
        let stats = m.finish(
            &s,
            std::time::Duration::ZERO,
            0,
            std::time::Duration::ZERO,
            0,
            0,
        );
        assert_eq!(stats.passes, 0, "stale frame leaked into next query");
    }
}
