//! Pipelined out-of-core cell streaming.
//!
//! The paper's out-of-core executor (§5.3) walks grid cells one at a time:
//! read + decode a block, ship it to the device, refine, repeat — so disk
//! I/O and GPU work never overlap. This module overlaps them: a bounded
//! background producer thread reads and decodes upcoming cells (through
//! the per-dataset LRU cell cache) while the caller refines the current
//! one. The channel depth is [`crate::config::EngineConfig::prefetch_depth`];
//! depth 0 degrades to the fully synchronous loop.
//!
//! Determinism: the caller supplies the complete load *sequence* up front
//! and cells are delivered strictly in that order, so query results and
//! `cells_loaded` counts are identical at every prefetch depth and worker
//! count — only the overlap accounting (`prefetch_hits`, `io_hidden`)
//! changes with timing.
//!
//! The bounded channel is `std::sync::mpsc::sync_channel` inside
//! `std::thread::scope` (the original crossbeam dependency is unavailable
//! offline; std scoped threads cover the same need).

use crate::cancel::CancelToken;
use crate::dataset::{Dataset, ReadView};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One cell delivered to the refinement stage.
pub struct FetchedCell {
    /// Index into the `sources` slice this cell belongs to.
    pub source: usize,
    /// Cell index within the source's grid.
    pub cell: usize,
    /// The decoded cell data.
    pub data: Arc<Dataset>,
    /// Encoded block size — the device-transfer charge for this cell.
    pub bytes: u64,
    /// Whether the bytes came from the LRU cache rather than disk.
    pub cache_hit: bool,
}

/// Accounting for one streamed sequence.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// Producer-side load + decode time (full, including overlapped).
    pub io_time: Duration,
    /// Time the consumer actually stalled waiting for a cell.
    pub recv_wait: Duration,
    /// `io_time − recv_wait`: I/O hidden behind refinement work.
    pub io_hidden: Duration,
    /// Bytes actually read from disk (cache hits excluded).
    pub bytes_from_disk: u64,
    /// Cells delivered to the consumer.
    pub cells: u64,
    /// Cells already decoded and waiting when the consumer asked.
    pub prefetch_hits: u64,
    /// Cells the consumer had to wait for (always the full count when
    /// prefetching is disabled).
    pub prefetch_misses: u64,
    /// Cells served from the LRU cache instead of disk.
    pub cache_hits: u64,
}

impl StreamStats {
    /// Fold this stream's accounting into a query's stats record.
    ///
    /// Every indexed query path closes its wall clock (`Measure::finish`)
    /// *before* charging the stream, so the overlap (`io_hidden`) arrives
    /// after the CPU residual was first computed — recompute it here so
    /// hidden I/O is not double-subtracted from the total.
    pub fn charge(&self, stats: &mut crate::stats::QueryStats) {
        stats.prefetch_hits += self.prefetch_hits;
        stats.prefetch_misses += self.prefetch_misses;
        stats.cache_hits += self.cache_hits;
        stats.io_hidden += self.io_hidden;
        if !stats.total_time.is_zero() {
            stats.recompute_cpu();
        }
    }
}

/// Stream `sequence` — `(source, cell)` pairs — to `consumer`, loading
/// through each source's cell cache, prefetching up to `depth` cells ahead
/// on a background I/O thread. Errors from the load path or the consumer
/// abort the stream and propagate.
pub fn stream_cells<F>(
    depth: usize,
    cache_budget: u64,
    sources: &[&ReadView<'_>],
    sequence: &[(usize, usize)],
    consumer: F,
) -> spade_storage::Result<StreamStats>
where
    F: FnMut(FetchedCell) -> spade_storage::Result<()>,
{
    stream_cells_with(
        depth,
        cache_budget,
        sources,
        sequence,
        &CancelToken::default(),
        consumer,
    )
}

/// [`stream_cells`] with a cancellation token, polled at every cell
/// boundary: the consumer side checks before refining each cell (and
/// propagates `Cancelled`), and the background producer checks before each
/// load so it stops reading ahead for a dead query.
pub fn stream_cells_with<F>(
    depth: usize,
    cache_budget: u64,
    sources: &[&ReadView<'_>],
    sequence: &[(usize, usize)],
    cancel: &CancelToken,
    mut consumer: F,
) -> spade_storage::Result<StreamStats>
where
    F: FnMut(FetchedCell) -> spade_storage::Result<()>,
{
    if sequence.is_empty() {
        return Ok(StreamStats::default());
    }
    if depth == 0 {
        // Synchronous: every load is a consumer-side stall.
        let mut stats = StreamStats::default();
        for &(src, cell) in sequence {
            cancel.check()?;
            let mut load_span = crate::trace::span("prefetch.load");
            let t = Instant::now();
            let (data, cache_hit) = sources[src].load_cell_cached(cell, cache_budget)?;
            let io = t.elapsed();
            stats.io_time += io;
            stats.recv_wait += io;
            let bytes = sources[src].cell_bytes(cell);
            load_span.attr("source", src as u64);
            load_span.attr("cell", cell as u64);
            load_span.attr("bytes", bytes);
            load_span.attr("cache_hit", cache_hit as u64);
            drop(load_span);
            if cache_hit {
                stats.cache_hits += 1;
            } else {
                stats.bytes_from_disk += bytes;
            }
            stats.prefetch_misses += 1;
            stats.cells += 1;
            consumer(FetchedCell {
                source: src,
                cell,
                data,
                bytes,
                cache_hit,
            })?;
        }
        return Ok(stats);
    }

    type Produced = (Duration, u64, u64);
    let mut stats = StreamStats::default();
    let mut outcome: spade_storage::Result<()> = Ok(());
    let (io_time, bytes_from_disk, cache_hits): Produced = std::thread::scope(|scope| {
        let (tx, rx) = mpsc::sync_channel::<spade_storage::Result<FetchedCell>>(depth);
        let producer = scope.spawn(move || {
            let mut io_time = Duration::ZERO;
            let mut bytes_from_disk = 0u64;
            let mut cache_hits = 0u64;
            for &(src, cell) in sequence {
                if cancel.is_cancelled() {
                    break; // stop reading ahead for a dead query
                }
                let mut load_span = crate::trace::span("prefetch.load");
                let t = Instant::now();
                let loaded = sources[src].load_cell_cached(cell, cache_budget);
                io_time += t.elapsed();
                load_span.attr("source", src as u64);
                load_span.attr("cell", cell as u64);
                match loaded {
                    Ok((data, cache_hit)) => {
                        let bytes = sources[src].cell_bytes(cell);
                        load_span.attr("bytes", bytes);
                        load_span.attr("cache_hit", cache_hit as u64);
                        drop(load_span);
                        if cache_hit {
                            cache_hits += 1;
                        } else {
                            bytes_from_disk += bytes;
                        }
                        let cell = FetchedCell {
                            source: src,
                            cell,
                            data,
                            bytes,
                            cache_hit,
                        };
                        if tx.send(Ok(cell)).is_err() {
                            break; // consumer bailed out
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
            (io_time, bytes_from_disk, cache_hits)
        });

        for _ in 0..sequence.len() {
            if let Err(e) = cancel.check() {
                outcome = Err(e);
                break;
            }
            // Non-blocking first: a ready cell is a prefetch hit (its I/O
            // was fully hidden behind the previous refinement).
            let msg = match rx.try_recv() {
                Ok(m) => {
                    stats.prefetch_hits += 1;
                    m
                }
                Err(mpsc::TryRecvError::Empty) => {
                    let _wait_span = crate::trace::span("prefetch.wait");
                    let t = Instant::now();
                    match rx.recv() {
                        Ok(m) => {
                            stats.recv_wait += t.elapsed();
                            stats.prefetch_misses += 1;
                            m
                        }
                        Err(_) => break, // producer gone without a message
                    }
                }
                Err(mpsc::TryRecvError::Disconnected) => break,
            };
            match msg {
                Ok(cell) => {
                    stats.cells += 1;
                    if let Err(e) = consumer(cell) {
                        outcome = Err(e);
                        break;
                    }
                }
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        drop(rx); // unblocks a producer parked on a full channel
        match producer.join() {
            Ok(v) => v,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    });
    outcome?;
    stats.io_time = io_time;
    stats.bytes_from_disk = bytes_from_disk;
    stats.cache_hits = cache_hits;
    stats.io_hidden = io_time.saturating_sub(stats.recv_wait);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetKind, IndexedDataset};
    use spade_geometry::Point;

    fn indexed(n: usize, seed: u64) -> IndexedDataset {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let k = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                Point::new((k % 100) as f64, ((k >> 8) % 100) as f64)
            })
            .collect();
        let data = crate::dataset::Dataset::from_points("p", pts);
        let grid = spade_index::GridIndex::build(None, &data.objects, 25.0).unwrap();
        IndexedDataset::new("p", DatasetKind::Points, grid)
    }

    #[test]
    fn stream_delivers_sequence_in_order_at_every_depth() {
        let d = indexed(400, 7);
        let view = d.read_view();
        let sources = [&view];
        let sequence: Vec<(usize, usize)> =
            (0..view.grid.num_cells()).map(|c| (0usize, c)).collect();
        let mut baseline: Option<Vec<(usize, usize, usize)>> = None;
        for depth in [0usize, 1, 4] {
            let mut seen = Vec::new();
            let stats = stream_cells(depth, 0, &sources, &sequence, |cell| {
                seen.push((cell.source, cell.cell, cell.data.len()));
                Ok(())
            })
            .unwrap();
            assert_eq!(stats.cells as usize, sequence.len(), "depth={depth}");
            assert_eq!(
                stats.prefetch_hits + stats.prefetch_misses,
                stats.cells,
                "depth={depth}"
            );
            match &baseline {
                None => baseline = Some(seen),
                Some(b) => assert_eq!(&seen, b, "depth={depth}"),
            }
        }
    }

    #[test]
    fn repeated_cells_hit_the_cache() {
        let d = indexed(200, 11);
        let view = d.read_view();
        let sources = [&view];
        let sequence: Vec<(usize, usize)> = vec![(0, 0), (0, 0), (0, 0)];
        let stats = stream_cells(0, 1 << 20, &sources, &sequence, |_| Ok(())).unwrap();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(
            stats.bytes_from_disk,
            view.cell_bytes(0),
            "only the first touch reads disk"
        );
    }

    #[test]
    fn consumer_error_aborts_stream() {
        let d = indexed(300, 13);
        let view = d.read_view();
        let sources = [&view];
        let sequence: Vec<(usize, usize)> =
            (0..view.grid.num_cells()).map(|c| (0usize, c)).collect();
        for depth in [0usize, 2] {
            let mut delivered = 0;
            let err = stream_cells(depth, 0, &sources, &sequence, |_| {
                delivered += 1;
                if delivered == 1 {
                    Err(spade_storage::StorageError::Io("boom".into()))
                } else {
                    Ok(())
                }
            });
            assert!(err.is_err(), "depth={depth}");
        }
    }

    #[test]
    fn cancellation_aborts_stream_at_cell_boundary() {
        let d = indexed(300, 19);
        let view = d.read_view();
        let sources = [&view];
        let sequence: Vec<(usize, usize)> =
            (0..view.grid.num_cells()).map(|c| (0usize, c)).collect();
        assert!(sequence.len() > 1);
        for depth in [0usize, 2] {
            let cancel = crate::cancel::CancelToken::new();
            let mut delivered = 0;
            let res = stream_cells_with(depth, 0, &sources, &sequence, &cancel, |_| {
                delivered += 1;
                if delivered == 1 {
                    cancel.cancel(); // cancel mid-stream, from the consumer
                }
                Ok(())
            });
            assert_eq!(
                res.unwrap_err(),
                spade_storage::StorageError::Cancelled,
                "depth={depth}"
            );
            assert_eq!(delivered, 1, "depth={depth}");
        }
    }

    #[test]
    fn empty_sequence_is_a_no_op() {
        let d = indexed(50, 17);
        let view = d.read_view();
        let stats = stream_cells(4, 0, &[&view], &[], |_| Ok(())).unwrap();
        assert_eq!(stats.cells, 0);
    }
}
