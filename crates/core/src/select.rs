//! Spatial selection queries (§5.2, Fig. 4).
//!
//! A selection finds all objects of a data set intersecting a polygonal
//! constraint. The in-memory plan is the paper's fused pipeline: render the
//! constraint canvas once (one pass + boundary pass), then draw the query
//! data in a single pass whose fragment shader performs blend + mask —
//! sampling the constraint texture, running the exact boundary test where
//! needed — and Map stores survivors into the output list, which the
//! parallel scan extracts.
//!
//! The out-of-core plan (§5.3) first runs the same selection over the grid
//! index's *bounding polygons* (each cell's convex hull) to choose cells,
//! then streams each chosen cell through the in-memory plan.

use crate::dataset::{Dataset, DatasetKind, IndexedDataset};
use crate::engine::{Constraint, Spade};
use crate::optimizer;
use crate::stats::QueryOutput;
use spade_canvas::algebra;
use spade_canvas::create::PreparedPolygon;
use spade_geometry::{LineString, Point, Polygon, Segment, Triangle};
use spade_gpu::{BlendMode, DrawCall, FnFragment, Primitive};
use std::time::{Duration, Instant};

/// Exact geometry of a candidate primitive, looked up by fragment shaders
/// for boundary tests.
pub(crate) enum CandidateGeom {
    Tri(Triangle),
    Seg(Segment),
}

/// Build the conservative rendering primitives for candidate polygons:
/// interior triangles plus boundary edges, each indexing its exact
/// geometry. `attrs = [object_id + 1, candidate_index, 0, 0]`.
pub(crate) fn polygon_candidates(
    polys: &[PreparedPolygon],
) -> (Vec<Primitive>, Vec<CandidateGeom>) {
    let mut prims = Vec::new();
    let mut geoms = Vec::new();
    for p in polys {
        for t in &p.triangles {
            let idx = geoms.len() as u32;
            geoms.push(CandidateGeom::Tri(*t));
            prims.push(Primitive::triangle(t.a, t.b, t.c, [p.id + 1, idx, 0, 0]));
        }
        for (e, _) in &p.edges {
            let idx = geoms.len() as u32;
            geoms.push(CandidateGeom::Seg(*e));
            prims.push(Primitive::line(e.a, e.b, [p.id + 1, idx, 0, 0]));
        }
    }
    (prims, geoms)
}

/// Candidate primitives for polyline data: the segments.
pub(crate) fn line_candidates(
    lines: &[(u32, &LineString)],
) -> (Vec<Primitive>, Vec<CandidateGeom>) {
    let mut prims = Vec::new();
    let mut geoms = Vec::new();
    for (id, l) in lines {
        for seg in l.segments() {
            let idx = geoms.len() as u32;
            geoms.push(CandidateGeom::Seg(seg));
            prims.push(Primitive::line(seg.a, seg.b, [*id + 1, idx, 0, 0]));
        }
    }
    (prims, geoms)
}

/// In-memory point selection: ids of points intersecting the constraint.
/// This is the fused blend+mask+map pass of Fig. 4, using the Map
/// implementation the optimizer picks (§5.4: `n_max` = number of objects).
pub fn select_points_mem(
    spade: &Spade,
    points: &[(u32, Point)],
    constraint: &Constraint,
) -> Vec<u32> {
    let prims: Vec<Primitive> = points
        .iter()
        .enumerate()
        .map(|(i, (id, p))| Primitive::point(*p, [*id + 1, i as u32, 0, 0]))
        .collect();
    let shader = FnFragment(
        |frag: &spade_gpu::Fragment, _: &spade_gpu::ShaderContext<'_>| {
            let p = points[frag.attrs[1] as usize].1;
            if constraint.match_point_any(p) {
                Some([frag.attrs[0], 0, 0, 0])
            } else {
                None
            }
        },
    );
    let call = DrawCall {
        fragment: &shader,
        ..DrawCall::simple(constraint.viewport, BlendMode::Replace, false)
    };
    let n_max = points.len();
    let result = optimizer::run_map(spade, &prims, &call, n_max);
    result.values.into_iter().map(|v| v[0] - 1).collect()
}

/// In-memory polygon selection: ids of polygons intersecting the
/// constraint (each candidate drawn conservatively; boundary pixels
/// resolved with constant-time triangle tests through the boundary index).
pub fn select_polygons_mem(
    spade: &Spade,
    polys: &[PreparedPolygon],
    constraint: &Constraint,
) -> Vec<u32> {
    let (prims, geoms) = polygon_candidates(polys);
    select_candidates(spade, &prims, &geoms, constraint)
}

/// In-memory polyline selection.
pub fn select_lines_mem(
    spade: &Spade,
    lines: &[(u32, &LineString)],
    constraint: &Constraint,
) -> Vec<u32> {
    let (prims, geoms) = line_candidates(lines);
    select_candidates(spade, &prims, &geoms, constraint)
}

fn select_candidates(
    spade: &Spade,
    prims: &[Primitive],
    geoms: &[CandidateGeom],
    constraint: &Constraint,
) -> Vec<u32> {
    // Per-chunk state: a scratch match buffer plus the set of candidates
    // already known to match — a matched candidate skips all further exact
    // tests (selection only needs existence).
    let result = algebra::map_emit_stateful(
        &spade.pipeline,
        prims,
        constraint.viewport,
        true,
        || (Vec::<u32>::new(), std::collections::HashSet::<u32>::new()),
        |(scratch, seen), frag, out| {
            if seen.contains(&frag.attrs[0]) {
                return;
            }
            let px = (frag.x, frag.y);
            match &geoms[frag.attrs[1] as usize] {
                CandidateGeom::Tri(t) => constraint.match_triangle_at(px, t, scratch),
                CandidateGeom::Seg(s) => constraint.match_segment_at(px, *s, scratch),
            }
            if !scratch.is_empty() {
                seen.insert(frag.attrs[0]);
                out.push([frag.attrs[0], 0, 0, 0]);
            }
        },
    );
    let mut ids: Vec<u32> = result.values.into_iter().map(|v| v[0] - 1).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Spatial selection over an in-memory data set with full statistics.
pub fn select(spade: &Spade, data: &Dataset, constraint_poly: &Polygon) -> QueryOutput<Vec<u32>> {
    let mut qspan = crate::trace::span("query.select");
    let measure = spade.begin();

    // Polygon processing: triangulate the constraint (boundary index
    // entries are created during canvas rendering).
    let t0 = Instant::now();
    let prepared = vec![PreparedPolygon::prepare(0, constraint_poly)];
    let polygon_time = t0.elapsed();

    let constraint = Constraint::from_polygons(spade, &prepared);
    let ids = select_mem_dispatch(spade, data, &constraint);

    let n = ids.len() as u64;
    qspan.attr("results", n);
    let stats = measure.finish(spade, Duration::ZERO, 0, polygon_time, 0, n);
    QueryOutput { result: ids, stats }
}

pub(crate) fn select_mem_dispatch(
    spade: &Spade,
    data: &Dataset,
    constraint: &Constraint,
) -> Vec<u32> {
    match data.kind {
        DatasetKind::Points => select_points_mem(spade, &data.as_points(), constraint),
        DatasetKind::Polygons => {
            let prepared = data.prepare_polygons();
            select_polygons_mem(spade, &prepared, constraint)
        }
        DatasetKind::Lines => {
            let lines: Vec<(u32, &LineString)> = data
                .objects
                .iter()
                .filter_map(|(id, g)| match g {
                    spade_geometry::Geometry::LineString(l) => Some((*id, l)),
                    _ => None,
                })
                .collect();
            select_lines_mem(spade, &lines, constraint)
        }
    }
}

/// Rectangular range selection — the fast path of §4.2: the rectangle is
/// expanded into two triangles by a geometry shader (no triangulation, no
/// per-edge boundary construction on the CPU).
pub fn select_range(
    spade: &Spade,
    data: &Dataset,
    range: spade_geometry::BBox,
) -> QueryOutput<Vec<u32>> {
    let mut qspan = crate::trace::span("query.range");
    let measure = spade.begin();
    let constraint = Constraint::from_rects(spade, &[(0, range)]);
    let ids = select_mem_dispatch(spade, data, &constraint);
    let n = ids.len() as u64;
    qspan.attr("results", n);
    let stats = measure.finish(spade, Duration::ZERO, 0, Duration::ZERO, 0, n);
    QueryOutput { result: ids, stats }
}

/// Containment selection (`ST_CONTAINS`, §7): objects lying *entirely*
/// inside the constraint polygon.
///
/// Following §7, lines and polygons are treated as collections of vertices
/// whose containment is tested through the same point machinery; since
/// all-vertices-inside does not imply containment for concave constraints,
/// candidates whose boundary could cross the constraint rim get an exact
/// edge-crossing refinement (for points, containment equals intersection).
pub fn select_contained(
    spade: &Spade,
    data: &Dataset,
    constraint_poly: &Polygon,
) -> QueryOutput<Vec<u32>> {
    let mut qspan = crate::trace::span("query.contained");
    let measure = spade.begin();
    let t0 = Instant::now();
    let prepared = vec![PreparedPolygon::prepare(0, constraint_poly)];
    let polygon_time = t0.elapsed();
    let constraint = Constraint::from_polygons(spade, &prepared);

    let ids = match data.kind {
        DatasetKind::Points => select_points_mem(spade, &data.as_points(), &constraint),
        _ => {
            // §7: test the vertex collection of each object. An object is a
            // containment candidate iff *every* vertex matches.
            let mut vertex_prims = Vec::new();
            let mut vertex_counts: std::collections::BTreeMap<u32, (usize, usize)> =
                std::collections::BTreeMap::new();
            let mut coords: Vec<Point> = Vec::new();
            for (id, g) in &data.objects {
                let e = vertex_counts.entry(*id).or_insert((0, 0));
                for p in object_vertices(g) {
                    e.0 += 1;
                    vertex_prims.push(Primitive::point(p, [*id, coords.len() as u32, 0, 0]));
                    coords.push(p);
                }
            }
            let result = algebra::map_emit(
                &spade.pipeline,
                &vertex_prims,
                constraint.viewport,
                false,
                |frag, out| {
                    if constraint.match_point_any(coords[frag.attrs[1] as usize]) {
                        out.push([frag.attrs[0], 0, 0, 0]);
                    }
                },
            );
            for v in result.values {
                vertex_counts.get_mut(&v[0]).expect("known id").1 += 1;
            }
            // Exact refinement: no object edge may cross the constraint
            // boundary, and no constraint hole may cut into the object.
            let rim = constraint_poly.boundary_edges();
            let rim_bb = constraint_poly.bbox();
            vertex_counts
                .into_iter()
                .filter(|(_, (total, inside))| *total > 0 && total == inside)
                .map(|(id, _)| id)
                .filter(|id| {
                    let g = &data
                        .objects
                        .iter()
                        .find(|(i, _)| i == id)
                        .expect("object")
                        .1;
                    !object_edges(g).iter().any(|e| {
                        e.bbox().intersects(&rim_bb)
                            && rim
                                .iter()
                                .any(|r| spade_geometry::predicates::segments_intersect(*e, *r))
                    }) && !constraint_hole_cuts(constraint_poly, g)
                })
                .collect()
        }
    };
    let n = ids.len() as u64;
    qspan.attr("results", n);
    let stats = measure.finish(spade, Duration::ZERO, 0, polygon_time, 0, n);
    QueryOutput { result: ids, stats }
}

/// Out-of-core containment selection: since every object is clustered into
/// exactly one grid cell, per-cell containment results union losslessly;
/// the filter stage is the same hull selection (an object contained in the
/// constraint certainly intersects it).
pub fn select_contained_indexed(
    spade: &Spade,
    data: &IndexedDataset,
    constraint_poly: &Polygon,
) -> spade_storage::Result<QueryOutput<Vec<u32>>> {
    select_contained_indexed_with(
        spade,
        data,
        constraint_poly,
        &crate::cancel::CancelToken::new(),
    )
}

/// [`select_contained_indexed`] with cooperative cancellation, polled at
/// every cell boundary of the refinement stream.
pub fn select_contained_indexed_with(
    spade: &Spade,
    data: &IndexedDataset,
    constraint_poly: &Polygon,
    cancel: &crate::cancel::CancelToken,
) -> spade_storage::Result<QueryOutput<Vec<u32>>> {
    select_contained_indexed_scoped(
        spade,
        data,
        constraint_poly,
        cancel,
        crate::scope::CellScope::full(),
    )
}

/// [`select_contained_indexed_with`] restricted to a cell scope: only
/// candidate cells inside the scope refine, and the staged delta merges
/// only when the scope owns it. With [`CellScope::full`] this is exactly
/// the unscoped run.
///
/// [`CellScope::full`]: crate::scope::CellScope::full
pub fn select_contained_indexed_scoped(
    spade: &Spade,
    data: &IndexedDataset,
    constraint_poly: &Polygon,
    cancel: &crate::cancel::CancelToken,
    scope: crate::scope::CellScope,
) -> spade_storage::Result<QueryOutput<Vec<u32>>> {
    let mut qspan = crate::trace::span("query.contained.indexed");
    let measure = spade.begin();
    let _stat_scope = crate::optimizer::stats::scope(data.uid());
    let mut polygon_time = Duration::ZERO;

    let view = data.read_view();
    crate::explain::note_view(&view);
    let t0 = Instant::now();
    let prepared = vec![PreparedPolygon::prepare(0, constraint_poly)];
    let hulls: Vec<PreparedPolygon> = view
        .grid
        .bounding_polygons()
        .into_iter()
        .map(|(i, h)| PreparedPolygon::prepare(i, &h))
        .collect();
    polygon_time += t0.elapsed();
    let filter = Constraint::from_polygons_res(spade, &prepared, spade.config.filter_resolution);
    let mut candidates = select_polygons_mem(spade, &hulls, &filter);
    candidates.retain(|&c| scope.contains(c));

    let sequence: Vec<(usize, usize)> = candidates.iter().map(|&c| (0, c as usize)).collect();
    let mut ids = Vec::new();
    let stream = crate::prefetch::stream_cells_with(
        spade.config.prefetch_depth,
        spade.config.cell_cache_bytes,
        &[&view],
        &sequence,
        cancel,
        |cell| {
            let _ = spade.device.upload(cell.bytes);
            spade.observed.observe_cell_load(data.uid(), cell.bytes);
            ids.extend(select_contained(spade, &cell.data, constraint_poly).result);
            spade.device.free(cell.bytes);
            Ok(())
        },
    )?;
    // Merge staged writes through the same refinement: the delta is one
    // extra in-memory "cell", so merged results match a cold rebuild.
    if scope.include_delta && view.has_delta() {
        ids.extend(select_contained(spade, &view.delta_dataset(), constraint_poly).result);
    }
    ids.sort_unstable();
    ids.dedup();
    let n = ids.len() as u64;
    qspan.attr("cells", stream.cells);
    qspan.attr("results", n);
    let mut stats = measure.finish(
        spade,
        stream.io_time,
        stream.bytes_from_disk,
        polygon_time,
        stream.cells,
        n,
    );
    stream.charge(&mut stats);
    Ok(QueryOutput { result: ids, stats })
}

fn object_vertices(g: &spade_geometry::Geometry) -> Vec<Point> {
    use spade_geometry::Geometry;
    match g {
        Geometry::Point(p) => vec![*p],
        Geometry::LineString(l) => l.points.clone(),
        Geometry::Polygon(p) => {
            let mut v = p.exterior.points.clone();
            for h in &p.holes {
                v.extend_from_slice(&h.points);
            }
            v
        }
        Geometry::MultiPolygon(m) => m
            .polygons
            .iter()
            .flat_map(|p| {
                let mut v = p.exterior.points.clone();
                for h in &p.holes {
                    v.extend_from_slice(&h.points);
                }
                v
            })
            .collect(),
    }
}

fn object_edges(g: &spade_geometry::Geometry) -> Vec<Segment> {
    use spade_geometry::Geometry;
    match g {
        Geometry::Point(_) => Vec::new(),
        Geometry::LineString(l) => l.segments().collect(),
        Geometry::Polygon(p) => p.boundary_edges(),
        Geometry::MultiPolygon(m) => m.polygons.iter().flat_map(|p| p.boundary_edges()).collect(),
    }
}

/// True when a hole of `constraint` bites into `g` (all of g's vertices can
/// be inside the exterior while a hole removes part of g's interior).
fn constraint_hole_cuts(constraint: &Polygon, g: &spade_geometry::Geometry) -> bool {
    if constraint.holes.is_empty() {
        return false;
    }
    constraint.holes.iter().any(|h| {
        let hole_poly = Polygon::new(h.points.clone());
        g.polygons()
            .iter()
            .any(|p| spade_geometry::predicates::polygons_intersect(p, &hole_poly))
            || match g {
                spade_geometry::Geometry::LineString(l) => l
                    .segments()
                    .any(|s| spade_geometry::predicates::segment_intersects_polygon(s, &hole_poly)),
                _ => false,
            }
    })
}

/// Out-of-core spatial selection (§5.3): filter the grid cells with a GPU
/// selection over their bounding polygons, then refine cell by cell. The
/// refinement loop is pipelined: upcoming cells are read and decoded on a
/// background I/O thread (through the cell cache) while the current one
/// refines on the device.
pub fn select_indexed(
    spade: &Spade,
    data: &IndexedDataset,
    constraint_poly: &Polygon,
) -> spade_storage::Result<QueryOutput<Vec<u32>>> {
    select_indexed_with(
        spade,
        data,
        constraint_poly,
        &crate::cancel::CancelToken::new(),
    )
}

/// [`select_indexed`] with cooperative cancellation, polled at every cell
/// boundary. On cancellation the constraint canvas is freed before the
/// error propagates, so the device ledger stays balanced.
pub fn select_indexed_with(
    spade: &Spade,
    data: &IndexedDataset,
    constraint_poly: &Polygon,
    cancel: &crate::cancel::CancelToken,
) -> spade_storage::Result<QueryOutput<Vec<u32>>> {
    select_indexed_scoped(
        spade,
        data,
        constraint_poly,
        cancel,
        crate::scope::CellScope::full(),
    )
}

/// [`select_indexed_with`] restricted to a cell scope: the hull filter
/// runs as usual, but only candidate cells inside the scope stream through
/// refinement, and the staged delta merges only when the scope owns it.
/// With [`CellScope::full`] this is exactly the unscoped run — the
/// scatter-gather invariant cluster executors rely on.
///
/// [`CellScope::full`]: crate::scope::CellScope::full
pub fn select_indexed_scoped(
    spade: &Spade,
    data: &IndexedDataset,
    constraint_poly: &Polygon,
    cancel: &crate::cancel::CancelToken,
    scope: crate::scope::CellScope,
) -> spade_storage::Result<QueryOutput<Vec<u32>>> {
    let mut qspan = crate::trace::span("query.select.indexed");
    let measure = spade.begin();
    let _stat_scope = crate::optimizer::stats::scope(data.uid());
    let mut polygon_time = Duration::ZERO;

    // Prepare the constraint once; the same canvas serves the filter and
    // every refinement pass (it stays resident on the device).
    let t0 = Instant::now();
    let prepared = vec![PreparedPolygon::prepare(0, constraint_poly)];
    polygon_time += t0.elapsed();
    let constraint = Constraint::from_polygons(spade, &prepared);
    let _ = spade.device.upload(constraint.byte_size());

    // Index filtering: a polygon selection over the cells' hulls, run at
    // the coarse filter resolution (a false positive only loads one extra
    // cell).
    let view = data.read_view();
    crate::explain::note_view(&view);
    let t0 = Instant::now();
    let hull_prepared: Vec<PreparedPolygon> = view
        .grid
        .bounding_polygons()
        .into_iter()
        .map(|(i, hull)| PreparedPolygon::prepare(i, &hull))
        .collect();
    polygon_time += t0.elapsed();
    let filter_constraint =
        Constraint::from_polygons_res(spade, &prepared, spade.config.filter_resolution);
    let mut candidate_cells = select_polygons_mem(spade, &hull_prepared, &filter_constraint);
    candidate_cells.retain(|&c| scope.contains(c));

    // Refinement: stream each candidate cell through the in-memory plan,
    // prefetching ahead. Cell bytes are shipped to the device per use
    // (accounted; OOM at this scale means the cell streams without
    // residing).
    let sequence: Vec<(usize, usize)> = candidate_cells.iter().map(|&c| (0, c as usize)).collect();
    let mut ids = Vec::new();
    let stream_res = crate::prefetch::stream_cells_with(
        spade.config.prefetch_depth,
        spade.config.cell_cache_bytes,
        &[&view],
        &sequence,
        cancel,
        |cell| {
            let _ = spade.device.upload(cell.bytes);
            spade.observed.observe_cell_load(data.uid(), cell.bytes);
            ids.extend(select_mem_dispatch(spade, &cell.data, &constraint));
            spade.device.free(cell.bytes);
            Ok(())
        },
    );
    // Staged writes refine against the same resident constraint canvas,
    // so the merged result is identical to a fully-compacted run.
    if stream_res.is_ok() && scope.include_delta && view.has_delta() {
        ids.extend(select_mem_dispatch(
            spade,
            &view.delta_dataset(),
            &constraint,
        ));
    }
    spade.device.free(constraint.byte_size());
    let stream = stream_res?;
    ids.sort_unstable();
    ids.dedup();

    let n = ids.len() as u64;
    qspan.attr("cells", stream.cells);
    qspan.attr("results", n);
    let mut stats = measure.finish(
        spade,
        stream.io_time,
        stream.bytes_from_disk,
        polygon_time,
        stream.cells,
        n,
    );
    stream.charge(&mut stats);
    Ok(QueryOutput { result: ids, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use spade_geometry::predicates::{point_in_polygon, polygons_intersect};
    use spade_geometry::BBox;
    use spade_index::GridIndex;

    fn engine() -> Spade {
        Spade::new(EngineConfig::test_small())
    }

    fn scatter(n: usize, extent: f64) -> Vec<Point> {
        let mut s = 42u64;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 1_000_000) as f64 / 1_000_000.0 * extent;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 1_000_000) as f64 / 1_000_000.0 * extent;
                Point::new(x, y)
            })
            .collect()
    }

    fn hexagon(cx: f64, cy: f64, r: f64) -> Polygon {
        Polygon::circle(Point::new(cx, cy), r, 6)
    }

    #[test]
    fn point_selection_matches_oracle() {
        let s = engine();
        let pts = scatter(2000, 100.0);
        let data = Dataset::from_points("pts", pts.clone());
        let poly = hexagon(50.0, 50.0, 22.0);
        let out = select(&s, &data, &poly);
        let oracle: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| point_in_polygon(**p, &poly))
            .map(|(i, _)| i as u32)
            .collect();
        let mut got = out.result.clone();
        got.sort_unstable();
        assert_eq!(got, oracle);
        assert_eq!(out.stats.result_count, oracle.len() as u64);
        assert!(out.stats.passes >= 3); // constraint (2) + data pass
    }

    #[test]
    fn point_selection_concave_constraint() {
        let s = engine();
        let pts = scatter(1500, 10.0);
        let data = Dataset::from_points("pts", pts.clone());
        // The U-shaped polygon: concavity stresses boundary handling.
        let poly = Polygon::new(vec![
            Point::new(1.0, 1.0),
            Point::new(9.0, 1.0),
            Point::new(9.0, 9.0),
            Point::new(6.5, 9.0),
            Point::new(6.5, 3.5),
            Point::new(3.5, 3.5),
            Point::new(3.5, 9.0),
            Point::new(1.0, 9.0),
        ]);
        let out = select(&s, &data, &poly);
        let oracle: std::collections::BTreeSet<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| point_in_polygon(**p, &poly))
            .map(|(i, _)| i as u32)
            .collect();
        let got: std::collections::BTreeSet<u32> = out.result.into_iter().collect();
        assert_eq!(got, oracle);
    }

    #[test]
    fn polygon_selection_matches_oracle() {
        let s = engine();
        // A field of small boxes, some inside / crossing / outside.
        let mut boxes = Vec::new();
        for i in 0..15 {
            for j in 0..15 {
                let min = Point::new(i as f64 * 7.0, j as f64 * 7.0);
                boxes.push(Polygon::rect(BBox::new(min, min + Point::new(4.0, 4.0))));
            }
        }
        let data = Dataset::from_polygons("boxes", boxes.clone());
        let constraint = hexagon(50.0, 50.0, 25.0);
        let out = select(&s, &data, &constraint);
        let oracle: Vec<u32> = boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| polygons_intersect(b, &constraint))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(out.result, oracle);
    }

    #[test]
    fn line_selection_matches_oracle() {
        let s = engine();
        let lines: Vec<LineString> = (0..50)
            .map(|i| {
                let x = i as f64 * 2.0;
                LineString::new(vec![
                    Point::new(x, 0.0),
                    Point::new(x + 1.5, 50.0),
                    Point::new(x, 100.0),
                ])
            })
            .collect();
        let data = Dataset::from_lines("lines", lines.clone());
        let constraint = hexagon(50.0, 50.0, 20.0);
        let out = select(&s, &data, &constraint);
        let oracle: Vec<u32> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                l.segments().any(|seg| {
                    spade_geometry::predicates::segment_intersects_polygon(seg, &constraint)
                })
            })
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(out.result, oracle);
    }

    #[test]
    fn empty_results() {
        let s = engine();
        let data = Dataset::from_points("pts", scatter(100, 10.0));
        // Constraint far away from the data.
        let poly = hexagon(500.0, 500.0, 5.0);
        let out = select(&s, &data, &poly);
        assert!(out.result.is_empty());
        assert_eq!(out.stats.result_count, 0);
    }

    #[test]
    fn out_of_core_selection_matches_in_memory() {
        let s = engine();
        let pts = scatter(3000, 100.0);
        let data = Dataset::from_points("pts", pts.clone());
        let grid = GridIndex::build(None, &data.objects, 20.0).unwrap();
        let indexed = IndexedDataset::new("pts", DatasetKind::Points, grid);
        let poly = hexagon(40.0, 60.0, 18.0);

        let mem = select(&s, &data, &poly);
        let ooc = select_indexed(&s, &indexed, &poly).unwrap();
        let mut a = mem.result.clone();
        a.sort_unstable();
        assert_eq!(a, ooc.result);
        // The filter must have pruned at least one of the 25 cells.
        assert!(ooc.stats.cells_loaded < indexed.grid().num_cells() as u64);
        assert!(ooc.stats.cells_loaded > 0);
        assert!(ooc.stats.bytes_from_disk > 0);
        assert!(ooc.stats.bytes_to_device > 0);
    }

    #[test]
    fn out_of_core_polygon_selection() {
        let s = engine();
        let mut boxes = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let min = Point::new(i as f64 * 8.0, j as f64 * 8.0);
                boxes.push(Polygon::rect(BBox::new(min, min + Point::new(5.0, 5.0))));
            }
        }
        let data = Dataset::from_polygons("boxes", boxes.clone());
        let grid = GridIndex::build(None, &data.objects, 30.0).unwrap();
        let indexed = IndexedDataset::new("boxes", DatasetKind::Polygons, grid);
        let constraint = hexagon(48.0, 48.0, 20.0);
        let ooc = select_indexed(&s, &indexed, &constraint).unwrap();
        let oracle: Vec<u32> = boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| polygons_intersect(b, &constraint))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(ooc.result, oracle);
    }

    #[test]
    fn containment_selection_polygons() {
        let s = engine();
        // A concave (U-shaped) constraint: the vertex test alone would
        // wrongly accept a box bridging the notch.
        let constraint = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(30.0, 0.0),
            Point::new(30.0, 30.0),
            Point::new(20.0, 30.0),
            Point::new(20.0, 10.0),
            Point::new(10.0, 10.0),
            Point::new(10.0, 30.0),
            Point::new(0.0, 30.0),
        ]);
        let boxes = vec![
            // Fully inside the left arm.
            Polygon::rect(BBox::new(Point::new(2.0, 12.0), Point::new(8.0, 28.0))),
            // Bridges the notch: all four vertices inside, middle outside.
            Polygon::rect(BBox::new(Point::new(5.0, 2.0), Point::new(25.0, 8.0))),
            // Crosses the outer rim.
            Polygon::rect(BBox::new(Point::new(25.0, 25.0), Point::new(35.0, 35.0))),
            // Fully outside.
            Polygon::rect(BBox::new(Point::new(50.0, 50.0), Point::new(60.0, 60.0))),
        ];
        // Box 1 bridges the notch but its bottom edge stays in the base
        // (y 2..8 is inside the U's base which spans y 0..10): actually
        // contained. Shift a probe so part pokes into the notch instead.
        let bridging = Polygon::rect(BBox::new(Point::new(5.0, 5.0), Point::new(25.0, 9.9)));
        let mut all = boxes.clone();
        all.push(bridging);
        let data = Dataset::from_polygons("boxes", all.clone());
        let out = select_contained(&s, &data, &constraint);
        // Oracle: contained iff all vertices inside and no edge crossing.
        let oracle: Vec<u32> = all
            .iter()
            .enumerate()
            .filter(|(_, b)| {
                b.exterior
                    .points
                    .iter()
                    .all(|&v| point_in_polygon(v, &constraint))
                    && !b.boundary_edges().iter().any(|e| {
                        constraint
                            .boundary_edges()
                            .iter()
                            .any(|r| spade_geometry::predicates::segments_intersect(*e, *r))
                    })
            })
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(out.result, oracle);
        assert!(out.result.contains(&0)); // the left-arm box
        assert!(!out.result.contains(&3)); // the outside box
    }

    #[test]
    fn containment_on_points_equals_intersection() {
        let s = engine();
        let pts = scatter(500, 50.0);
        let data = Dataset::from_points("p", pts.clone());
        let c = hexagon(25.0, 25.0, 12.0);
        let mut contained = select_contained(&s, &data, &c).result;
        contained.sort_unstable();
        let mut intersecting = select(&s, &data, &c).result;
        intersecting.sort_unstable();
        assert_eq!(contained, intersecting);
    }

    #[test]
    fn containment_with_holes() {
        let s = engine();
        let constraint = Polygon::with_holes(
            vec![
                Point::new(0.0, 0.0),
                Point::new(40.0, 0.0),
                Point::new(40.0, 40.0),
                Point::new(0.0, 40.0),
            ],
            vec![vec![
                Point::new(15.0, 15.0),
                Point::new(25.0, 15.0),
                Point::new(25.0, 25.0),
                Point::new(15.0, 25.0),
            ]],
        );
        let boxes = vec![
            // Clear of the hole: contained.
            Polygon::rect(BBox::new(Point::new(2.0, 2.0), Point::new(10.0, 10.0))),
            // Overlapping the hole: not contained.
            Polygon::rect(BBox::new(Point::new(12.0, 12.0), Point::new(18.0, 18.0))),
            // Surrounding the hole entirely: not contained either.
            Polygon::rect(BBox::new(Point::new(10.0, 10.0), Point::new(30.0, 30.0))),
        ];
        let data = Dataset::from_polygons("boxes", boxes);
        let out = select_contained(&s, &data, &constraint);
        assert_eq!(out.result, vec![0]);
    }

    #[test]
    fn out_of_core_containment_matches_in_memory() {
        let s = engine();
        let mut boxes = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let min = Point::new(i as f64 * 10.0, j as f64 * 10.0);
                boxes.push(Polygon::rect(BBox::new(min, min + Point::new(6.0, 6.0))));
            }
        }
        let data = Dataset::from_polygons("boxes", boxes);
        let constraint = hexagon(50.0, 50.0, 30.0);
        let mem = select_contained(&s, &data, &constraint);
        let grid = GridIndex::build(None, &data.objects, 35.0).unwrap();
        let indexed = IndexedDataset::new("boxes", DatasetKind::Polygons, grid);
        let ooc = select_contained_indexed(&s, &indexed, &constraint).unwrap();
        let mut mem_sorted = mem.result.clone();
        mem_sorted.sort_unstable();
        assert_eq!(ooc.result, mem_sorted);
        assert!(!ooc.result.is_empty());
    }

    #[test]
    fn containment_of_lines() {
        let s = engine();
        let c = hexagon(25.0, 25.0, 15.0);
        let lines = vec![
            LineString::new(vec![Point::new(20.0, 25.0), Point::new(30.0, 25.0)]), // inside
            LineString::new(vec![Point::new(25.0, 25.0), Point::new(60.0, 25.0)]), // exits
        ];
        let data = Dataset::from_lines("lines", lines);
        let out = select_contained(&s, &data, &c);
        assert_eq!(out.result, vec![0]);
    }

    #[test]
    fn selection_via_rect_constraint() {
        let s = engine();
        let pts = scatter(800, 50.0);
        let bb = BBox::new(Point::new(10.0, 10.0), Point::new(30.0, 25.0));
        let c = Constraint::from_rects(&s, &[(0, bb)]);
        let got = select_points_mem(&s, &Dataset::from_points("p", pts.clone()).as_points(), &c);
        let oracle: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| bb.contains(**p))
            .map(|(i, _)| i as u32)
            .collect();
        let mut got = got;
        got.sort_unstable();
        assert_eq!(got, oracle);
    }
}
