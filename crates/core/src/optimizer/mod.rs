//! The query optimizer (§5.4).
//!
//! Three decisions, exactly the ones the paper's QO makes:
//!
//! 1. **Map implementation** — 1-pass when the result-size estimate
//!    (`n_max`) fits the maximum list-canvas allocation, 2-pass otherwise;
//!    estimates follow §5.4 (selection: `|D|`; point join: `n` points per
//!    layer; polygon join: `m·n` per layer).
//! 2. **Out-of-core join strategy** — layer-index join vs. a naive loop of
//!    selects, chosen by the estimated bytes transferred to the device
//!    ("the join strategy that requires the least memory transfer is then
//!    selected").
//! 3. **Join operation order** — consecutive selects should share at least
//!    one resident grid cell, so cell loads carry over between iterations.
//!
//! On top of the paper's static estimates sits the [`stats`] layer: when a
//! dataset is warm (≥ [`stats::MIN_SAMPLES`] observed queries) and
//! `EngineConfig::adaptive_stats` is on, the Map decision uses the
//! measured result-size ratio instead of the loose `n_max` bound, and the
//! join decision uses the measured per-strategy execution cost. A wrong
//! adaptive call is never a wrong answer: an undersized 1-pass Map falls
//! back to 2-pass, and both join strategies compute the same pair set —
//! so results stay byte-identical with adaptive statistics on or off.

pub mod stats;

use crate::engine::Spade;
use spade_canvas::algebra::{self, MapResult};
use spade_gpu::{record, DrawCall, Primitive};

/// Which Map implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapImpl {
    OnePass,
    TwoPass,
}

/// Pick the Map implementation from the result-size estimate, refined by
/// the observed result ratio when the current dataset scope is warm.
pub fn choose_map_impl(spade: &Spade, n_max: usize) -> MapImpl {
    choose_map(spade, n_max).0
}

/// The Map choice plus the list-canvas capacity to allocate for it: the
/// static 1-pass uses the `n_max` bound itself, the adaptive 1-pass the
/// (smaller) observed prediction. Capacity only sizes the list canvas —
/// values are placed linearly and compacted, so the result bytes are
/// identical for any capacity that fits.
fn choose_map(spade: &Spade, n_max: usize) -> (MapImpl, usize) {
    let slots = spade.config.max_map_slots;
    if n_max <= slots {
        return (MapImpl::OnePass, n_max);
    }
    if spade.config.adaptive_stats {
        if let Some(key) = stats::current() {
            if let Some(pred) = spade.observed.map_prediction(key, n_max as u64) {
                if pred as usize <= slots {
                    // Warm stats say the real result fits a 1-pass canvas
                    // even though the static bound does not. If the
                    // prediction is wrong, the overflow fallback runs the
                    // 2-pass — a misprediction, never a wrong answer.
                    return (MapImpl::OnePass, pred as usize);
                }
            }
        }
    }
    (MapImpl::TwoPass, n_max)
}

/// Execute a Map with the chosen implementation, falling back to 2-pass if
/// a 1-pass estimate proves wrong (impossible for the paper's static upper
/// bounds, routine for adaptive predictions). The failed attempt's work is
/// recorded in its own discarded frame so the query's `QueryStats` report
/// only the passes that produced the answer; the waste is surfaced
/// separately as `wasted_passes` in the plan report.
pub fn run_map(spade: &Spade, prims: &[Primitive], call: &DrawCall<'_>, n_max: usize) -> MapResult {
    let slots = spade.config.max_map_slots as u64;
    let key = stats::current();
    let (choice, capacity) = choose_map(spade, n_max);
    match choice {
        MapImpl::OnePass => {
            record::begin();
            match algebra::map_1pass(&spade.pipeline, prims, call, capacity) {
                Ok(r) => {
                    record::finish();
                    spade
                        .observed
                        .count_decision(key, stats::Decision::MapOnePass);
                    if let Some(k) = key {
                        spade
                            .observed
                            .observe_map(k, n_max as u64, r.values.len() as u64);
                    }
                    crate::explain::note_map(
                        MapImpl::OnePass,
                        n_max as u64,
                        slots,
                        false,
                        0,
                        false,
                    );
                    r
                }
                Err(_) => {
                    // The attempt was wasted: drop its draw calls from the
                    // enclosing query frame (globals already saw them).
                    let wasted = record::discard();
                    spade
                        .observed
                        .count_decision(key, stats::Decision::MapOnePass);
                    spade
                        .observed
                        .count_misprediction(key, stats::Decision::MapOnePass);
                    let r = algebra::map_2pass(&spade.pipeline, prims, call);
                    if let Some(k) = key {
                        spade
                            .observed
                            .observe_map(k, n_max as u64, r.values.len() as u64);
                    }
                    crate::explain::note_map(
                        MapImpl::TwoPass,
                        n_max as u64,
                        slots,
                        true,
                        wasted.gpu.draw_calls,
                        false,
                    );
                    r
                }
            }
        }
        MapImpl::TwoPass => {
            let r = algebra::map_2pass(&spade.pipeline, prims, call);
            let produced = r.values.len() as u64;
            spade
                .observed
                .count_decision(key, stats::Decision::MapTwoPass);
            if let Some(k) = key {
                spade.observed.observe_map(k, n_max as u64, produced);
            }
            // Hindsight check: the 2-pass was chosen because the bound
            // exceeded the canvas, yet the result fit — a 1-pass would
            // have done it in one rendering pass.
            let overshoot = produced <= slots;
            if overshoot {
                spade
                    .observed
                    .count_misprediction(key, stats::Decision::MapTwoPass);
            }
            crate::explain::note_map(MapImpl::TwoPass, n_max as u64, slots, false, 0, overshoot);
            r
        }
    }
}

/// The two out-of-core join strategies of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Layer-index join over filtered cell pairs.
    LayerIndex,
    /// A loop of per-object selections.
    NaiveSelects,
}

/// Choose the join strategy by estimated transfer volume (§5.4 "Choose the
/// join implementation").
pub fn choose_join_strategy(layer_bytes: u64, naive_bytes: u64) -> JoinStrategy {
    if naive_bytes < layer_bytes {
        JoinStrategy::NaiveSelects
    } else {
        JoinStrategy::LayerIndex
    }
}

/// Order cell pairs so consecutive iterations share a resident cell: sort
/// lexicographically, with every odd left-group's right-cells reversed
/// (boustrophedon), so both the left cell carries over within a group and
/// the right cell carries over across group boundaries.
pub fn order_cell_pairs(pairs: &mut [(u32, u32)]) {
    pairs.sort_unstable();
    let mut i = 0;
    let mut group = 0usize;
    while i < pairs.len() {
        let left = pairs[i].0;
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == left {
            j += 1;
        }
        if group % 2 == 1 {
            pairs[i..j].reverse();
        }
        group += 1;
        i = j;
    }
}

/// Estimated bytes transferred by the layer-index strategy over pairs
/// ALREADY in execution order: a walk of the exact residency rule the
/// executor's sequence uses (a resident cell is not re-transferred), so
/// the estimate equals the bytes the walk will actually request. Call
/// [`order_cell_pairs`] once and pass the ordered slice — estimating on a
/// differently-ordered copy is exactly the estimator/executor drift this
/// function exists to prevent.
pub fn estimate_layer_bytes_ordered(
    ordered: &[(u32, u32)],
    left_bytes: &[u64],
    right_bytes: &[u64],
) -> u64 {
    let mut total = 0u64;
    let mut resident_left = None;
    let mut resident_right = None;
    for &(l, r) in ordered {
        if resident_left != Some(l) {
            total += left_bytes[l as usize];
            resident_left = Some(l);
        }
        if resident_right != Some(r) {
            total += right_bytes[r as usize];
            resident_right = Some(r);
        }
    }
    total
}

/// Convenience form of [`estimate_layer_bytes_ordered`] that orders a copy
/// of `pairs` first. For callers that will execute the pairs, prefer
/// ordering the real vector once and estimating on it directly.
pub fn estimate_layer_bytes(pairs: &[(u32, u32)], left_bytes: &[u64], right_bytes: &[u64]) -> u64 {
    let mut ordered: Vec<(u32, u32)> = pairs.to_vec();
    order_cell_pairs(&mut ordered);
    estimate_layer_bytes_ordered(&ordered, left_bytes, right_bytes)
}

/// Estimated bytes transferred by the naive strategy: for each probe
/// object, the blocks of every cell its filter matched (no sharing across
/// probes beyond consecutive duplicates).
pub fn estimate_naive_bytes(per_object_cells: &[Vec<u32>], cell_bytes: &[u64]) -> u64 {
    let mut total = 0u64;
    let mut resident = None;
    for cells in per_object_cells {
        for &c in cells {
            if resident != Some(c) {
                total += cell_bytes[c as usize];
                resident = Some(c);
            }
        }
    }
    total
}

/// Bytes of the probe-side (left) cells the naive strategy reads to
/// enumerate its probe objects: only the cells that appear in a candidate
/// pair. A left cell whose filter matched nothing contributes no probes —
/// charging the whole left grid (the old formula) overcharges the naive
/// strategy on selective joins.
pub fn estimate_probe_bytes(pairs: &[(u32, u32)], left_bytes: &[u64]) -> u64 {
    let mut matched: Vec<u32> = pairs.iter().map(|&(l, _)| l).collect();
    matched.sort_unstable();
    matched.dedup();
    matched.into_iter().map(|l| left_bytes[l as usize]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use spade_geometry::{BBox, Point};
    use spade_gpu::{BlendMode, Viewport};

    #[test]
    fn map_choice_threshold() {
        let spade = Spade::new(EngineConfig {
            max_map_slots: 100,
            ..EngineConfig::test_small()
        });
        assert_eq!(choose_map_impl(&spade, 100), MapImpl::OnePass);
        assert_eq!(choose_map_impl(&spade, 101), MapImpl::TwoPass);
    }

    #[test]
    fn map_choice_uses_warm_observations() {
        let spade = Spade::new(EngineConfig {
            max_map_slots: 100,
            ..EngineConfig::test_small()
        });
        let _scope = stats::scope(42);
        // Cold: the static bound rules.
        assert_eq!(choose_map_impl(&spade, 1000), MapImpl::TwoPass);
        // Warm with a tiny observed ratio: 1000 × (0.01 × 1.5) = 15 ≤ 100.
        for _ in 0..stats::MIN_SAMPLES {
            spade.observed.observe_map(42, 1000, 10);
        }
        assert_eq!(choose_map_impl(&spade, 1000), MapImpl::OnePass);
        // A huge bound still overwhelms the observed ratio.
        assert_eq!(choose_map_impl(&spade, 100_000), MapImpl::TwoPass);
    }

    #[test]
    fn map_choice_ignores_observations_when_disabled() {
        let spade = Spade::new(EngineConfig {
            max_map_slots: 100,
            adaptive_stats: false,
            ..EngineConfig::test_small()
        });
        let _scope = stats::scope(42);
        for _ in 0..stats::MIN_SAMPLES {
            spade.observed.observe_map(42, 1000, 10);
        }
        assert_eq!(choose_map_impl(&spade, 1000), MapImpl::TwoPass);
    }

    #[test]
    fn fallback_work_not_double_counted() {
        // An adaptive 1-pass attempt that overflows must (a) fall back to
        // a correct 2-pass, (b) keep the wasted attempt's draw calls out
        // of the query's recording frame, and (c) surface the waste and
        // the misprediction in the plan report and counters.
        let spade = Spade::new(EngineConfig {
            max_map_slots: 4,
            ..EngineConfig::test_small()
        });
        let _scope = stats::scope(99);
        // Warm: three tiny results against a 100 bound → prediction
        // ceil(100 × 0.01 × 1.5) = 2 ≤ 4 slots → adaptive 1-pass.
        for _ in 0..stats::MIN_SAMPLES {
            spade.observed.observe_map(99, 100, 1);
        }
        assert_eq!(choose_map_impl(&spade, 100), MapImpl::OnePass);
        // But this run actually produces 10 values: overflow → fallback.
        let prims: Vec<Primitive> = (0..10)
            .map(|i| Primitive::point(Point::new(i as f64 + 0.5, 0.5), [i + 1, 0, 0, 0]))
            .collect();
        let vp = Viewport::new(BBox::new(Point::ZERO, Point::new(10.0, 10.0)), 10, 10);
        let call = DrawCall::simple(vp, BlendMode::Replace, false);
        spade_gpu::record::begin();
        crate::explain::begin();
        let r = run_map(&spade, &prims, &call, 100);
        let report = crate::explain::finish();
        let frame = spade_gpu::record::finish();
        assert_eq!(r.values.len(), 10);
        assert_eq!(r.passes, 2);
        // The query frame sees exactly the 2-pass (count + materialize);
        // the failed attempt's draw call was discarded, not folded in.
        assert_eq!(frame.gpu.draw_calls, 2, "wasted pass leaked into frame");
        let m = report.map.unwrap();
        assert_eq!(m.one_pass, 0);
        assert_eq!(m.two_pass, 1);
        assert_eq!(m.fallbacks, 1);
        assert_eq!(m.wasted_passes, 1);
        let (dec, mis) = spade.observed.counters_for(&[99]);
        // Index 0 is Decision::ALL[0] = MapOnePass.
        assert_eq!(dec[0], 1, "the (wrong) decision was 1-pass");
        assert_eq!(mis[0], 1, "and it counts as a misprediction");
    }

    #[test]
    fn two_pass_overshoot_counts_misprediction() {
        let spade = Spade::new(EngineConfig {
            max_map_slots: 4,
            ..EngineConfig::test_small()
        });
        let _scope = stats::scope(7);
        // Cold stats, bound 100 > 4 slots → static 2-pass; but only 3
        // values are produced, which would have fit 1-pass: overshoot.
        let prims: Vec<Primitive> = (0..3)
            .map(|i| Primitive::point(Point::new(i as f64 + 0.5, 0.5), [i + 1, 0, 0, 0]))
            .collect();
        let vp = Viewport::new(BBox::new(Point::ZERO, Point::new(10.0, 10.0)), 10, 10);
        let call = DrawCall::simple(vp, BlendMode::Replace, false);
        crate::explain::begin();
        let r = run_map(&spade, &prims, &call, 100);
        let report = crate::explain::finish();
        assert_eq!(r.values.len(), 3);
        assert_eq!(report.map.unwrap().overshoots, 1);
        let (dec, mis) = spade.observed.counters_for(&[7]);
        // Index 1 is Decision::ALL[1] = MapTwoPass.
        assert_eq!(dec[1], 1);
        assert_eq!(mis[1], 1);
        // The rendered analyze output carries the would-have-chosen line.
        let s = report.render(Some(&crate::stats::QueryStats::default()));
        assert!(
            s.contains("would-have-chosen OnePass"),
            "missing line in:\n{s}"
        );
    }

    #[test]
    fn join_strategy_prefers_fewer_bytes() {
        assert_eq!(choose_join_strategy(100, 200), JoinStrategy::LayerIndex);
        assert_eq!(choose_join_strategy(300, 200), JoinStrategy::NaiveSelects);
        // Ties go to the layer index (fewer rendering passes).
        assert_eq!(choose_join_strategy(200, 200), JoinStrategy::LayerIndex);
    }

    #[test]
    fn cell_pair_ordering_shares_loads() {
        // A dense pair grid: the boustrophedon order shares a cell between
        // every consecutive pair.
        let mut pairs = vec![(1, 5), (0, 3), (1, 3), (0, 5), (2, 5), (2, 3)];
        order_cell_pairs(&mut pairs);
        for w in pairs.windows(2) {
            assert!(
                w[0].0 == w[1].0 || w[0].1 == w[1].1,
                "no shared cell between {:?} and {:?} in {pairs:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn cell_pair_ordering_reduces_transfer_estimate() {
        // Versus plain sorted order, the boustrophedon never transfers more.
        let pairs: Vec<(u32, u32)> = (0..4).flat_map(|l| (0..4).map(move |r| (l, r))).collect();
        let bytes = vec![10u64; 4];
        let shared = estimate_layer_bytes(&pairs, &bytes, &bytes);
        // Plain sorted order: left loads 4×10; right loads 4 per left group.
        let plain = 4 * 10 + 4 * 4 * 10;
        assert!(shared <= plain as u64);
    }

    #[test]
    fn layer_estimate_counts_residency() {
        let pairs = vec![(0, 0), (0, 1), (1, 1)];
        let left = vec![10, 20];
        let right = vec![100, 200];
        // Ordered: (0,0),(0,1),(1,1): loads 10+100, then 200, then 20.
        assert_eq!(estimate_layer_bytes(&pairs, &left, &right), 330);
    }

    #[test]
    fn ordered_estimate_matches_ordering_copy() {
        let mut pairs = vec![(3, 1), (0, 2), (3, 2), (0, 1), (1, 1)];
        let left = vec![10u64, 20, 30, 40];
        let right = vec![100u64, 200, 300];
        let via_copy = estimate_layer_bytes(&pairs, &left, &right);
        order_cell_pairs(&mut pairs);
        assert_eq!(
            estimate_layer_bytes_ordered(&pairs, &left, &right),
            via_copy
        );
    }

    #[test]
    fn naive_estimate_sums_per_object() {
        let cells = vec![vec![0, 1], vec![1, 2], vec![2]];
        let bytes = vec![5, 7, 11];
        // 5+7 (obj0) + 7 is resident? resident=1 after obj0 → obj1 loads
        // nothing for 1, then 11; obj2: 2 already resident.
        assert_eq!(estimate_naive_bytes(&cells, &bytes), 5 + 7 + 11);
    }

    #[test]
    fn probe_bytes_count_only_matched_left_cells() {
        let pairs = vec![(0, 2), (1, 2), (1, 5), (2, 5)];
        let left_bytes = vec![25u64; 20]; // 20 left cells, only 3 matched
        assert_eq!(estimate_probe_bytes(&pairs, &left_bytes), 75);
        assert_eq!(estimate_probe_bytes(&[], &left_bytes), 0);
    }

    #[test]
    fn probe_bytes_fix_flips_join_decision() {
        // Regression for the naive_est overcharge: a selective join over a
        // mostly-unmatched left grid. The old formula charged the naive
        // strategy every left cell and picked LayerIndex; charging only
        // the matched probe cells flips the decision to NaiveSelects.
        let pairs = vec![(0, 2), (1, 2), (1, 5), (2, 5)];
        let left_bytes = vec![25u64; 20];
        let mut right_bytes = vec![0u64; 6];
        right_bytes[2] = 100;
        right_bytes[5] = 100;
        let layer = estimate_layer_bytes(&pairs, &left_bytes, &right_bytes);
        // The boustrophedon walk re-loads right cell 2: (0,2),(1,5),(1,2),(2,5).
        assert_eq!(layer, 25 + 100 + 25 + 100 + 100 + 25 + 100);
        let per_object = vec![vec![2], vec![2, 5], vec![5]];
        let scan = estimate_naive_bytes(&per_object, &right_bytes);
        let fixed = scan + estimate_probe_bytes(&pairs, &left_bytes);
        let buggy = scan + left_bytes.iter().sum::<u64>();
        assert_eq!(choose_join_strategy(layer, buggy), JoinStrategy::LayerIndex);
        assert_eq!(
            choose_join_strategy(layer, fixed),
            JoinStrategy::NaiveSelects
        );
    }
}
