//! Observed per-dataset statistics feeding the optimizer.
//!
//! The paper's optimizer (§5.4) decides from *static* transfer estimates:
//! `n_max` upper bounds for the Map implementation, grid-cell byte counts
//! for the join strategy. Those bounds are safe but often loose — `n_max`
//! can exceed the real result size by orders of magnitude, and the two
//! join strategies move the same cells but burn very different amounts of
//! rendering time per byte. This module keeps what the engine *measured*
//! on previous queries against the same dataset:
//!
//! * an EWMA of the actual bytes moved per cell load,
//! * the measured result-set size as a fraction of the `n_max` bound
//!   (mean and observed peak),
//! * per join strategy, the realized transfer volume relative to the
//!   static estimate and the realized execution cost per estimated byte.
//!
//! [`crate::optimizer::choose_map_impl`] and the join decision consult
//! these when a dataset is *warm* (≥ [`MIN_SAMPLES`] observations) and
//! `EngineConfig::adaptive_stats` is on; cold datasets fall back to the
//! paper's static estimates. Observation is always on — it is a handful of
//! relaxed counter bumps and one short mutex hold per query — so the
//! decision counters exported through `spade-server::metrics` work even
//! with the adaptive knob off.
//!
//! Correctness never depends on a prediction: an adaptive 1-pass Map that
//! underestimates falls back to 2-pass, and the two join strategies
//! produce identical pair sets. Adaptive statistics change *how* a query
//! runs, never *what* it returns.

use crate::optimizer::JoinStrategy;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Observations before a statistic is trusted for decisions.
pub const MIN_SAMPLES: u64 = 3;

/// Safety margin applied to the observed peak result ratio before an
/// adaptive 1-pass Map is attempted (the fallback keeps an underestimate
/// correct; the margin just keeps fallbacks rare).
pub const MAP_MARGIN: f64 = 1.5;

/// Exponentially weighted moving average with a sample count.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ewma {
    value: f64,
    samples: u64,
}

impl Ewma {
    const ALPHA: f64 = 0.3;

    pub fn observe(&mut self, x: f64) {
        self.value = if self.samples == 0 {
            x
        } else {
            Self::ALPHA * x + (1.0 - Self::ALPHA) * self.value
        };
        self.samples += 1;
    }

    pub fn value(&self) -> f64 {
        self.value
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }

    pub fn warm(&self) -> bool {
        self.samples >= MIN_SAMPLES
    }
}

/// The four optimizer decisions the engine counts, labeled as exported
/// through `spade_optimizer_{decisions,mispredictions}_total{decision=…}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    MapOnePass,
    MapTwoPass,
    JoinLayerIndex,
    JoinNaiveSelects,
}

impl Decision {
    pub const ALL: [Decision; 4] = [
        Decision::MapOnePass,
        Decision::MapTwoPass,
        Decision::JoinLayerIndex,
        Decision::JoinNaiveSelects,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Decision::MapOnePass => "map_one_pass",
            Decision::MapTwoPass => "map_two_pass",
            Decision::JoinLayerIndex => "join_layer_index",
            Decision::JoinNaiveSelects => "join_naive_selects",
        }
    }

    fn idx(self) -> usize {
        match self {
            Decision::MapOnePass => 0,
            Decision::MapTwoPass => 1,
            Decision::JoinLayerIndex => 2,
            Decision::JoinNaiveSelects => 3,
        }
    }

    pub fn of_join(s: JoinStrategy) -> Decision {
        match s {
            JoinStrategy::LayerIndex => Decision::JoinLayerIndex,
            JoinStrategy::NaiveSelects => Decision::JoinNaiveSelects,
        }
    }
}

/// Everything observed about one statistics key (a dataset uid, or a join
/// pair key from [`join_key`]).
#[derive(Debug, Clone, Default)]
pub struct DatasetObserved {
    /// Actual bytes moved per cell load.
    pub cell_load_bytes: Ewma,
    /// Measured result count / the `n_max` upper bound, per Map run.
    pub map_ratio: Ewma,
    /// Largest result ratio ever observed (the adaptive 1-pass bound).
    pub map_peak_ratio: f64,
    /// Realized transfer volume / static estimate, per strategy.
    pub layer_bytes_ratio: Ewma,
    pub naive_bytes_ratio: Ewma,
    /// Realized execution cost (GPU + modeled bus nanos) per *estimated*
    /// byte, per strategy — how expensive a predicted byte turned out.
    pub layer_cost: Ewma,
    pub naive_cost: Ewma,
    /// Decisions and mispredictions counted under this key, indexed by
    /// [`Decision::idx`].
    pub decisions: [u64; 4],
    pub mispredictions: [u64; 4],
}

/// Per-key observed statistics plus engine-wide decision totals.
///
/// Lives on [`crate::engine::Spade`] next to the result cache; one short
/// mutex hold per observation or decision keeps the store coherent under
/// concurrent queries without touching the hot fragment path.
#[derive(Debug, Default)]
pub struct ObservedStats {
    inner: Mutex<HashMap<u64, DatasetObserved>>,
    total_decisions: [AtomicU64; 4],
    total_mispredictions: [AtomicU64; 4],
    /// Test/bench hook: pin the join strategy (0 = none, 1 = layer,
    /// 2 = naive). Observations are still recorded for the executed
    /// strategy, which is how the `optimizer_gate` bench calibrates both
    /// strategies before letting the adaptive decision run free.
    join_override: AtomicU8,
}

impl ObservedStats {
    pub fn new() -> Self {
        Self::default()
    }

    fn with(&self, key: u64, apply: impl FnOnce(&mut DatasetObserved)) {
        let mut inner = self.inner.lock().unwrap();
        apply(inner.entry(key).or_default());
    }

    /// Record one cell load's actual byte volume.
    pub fn observe_cell_load(&self, key: u64, bytes: u64) {
        self.with(key, |d| d.cell_load_bytes.observe(bytes as f64));
    }

    /// Record one Map run: the `n_max` bound it was planned with and the
    /// result count it actually produced.
    pub fn observe_map(&self, key: u64, n_max: u64, produced: u64) {
        let ratio = produced as f64 / n_max.max(1) as f64;
        self.with(key, |d| {
            d.map_ratio.observe(ratio);
            d.map_peak_ratio = d.map_peak_ratio.max(ratio);
        });
    }

    /// Predicted result size for a Map with bound `n_max`, from the warm
    /// observed peak ratio plus margin. `None` while cold — the caller
    /// falls back to the static `n_max` bound.
    pub fn map_prediction(&self, key: u64, n_max: u64) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        let d = inner.get(&key)?;
        if !d.map_ratio.warm() {
            return None;
        }
        let ratio = (d.map_peak_ratio.max(d.map_ratio.value()) * MAP_MARGIN).min(1.0);
        Some(((n_max as f64 * ratio).ceil() as u64).max(1))
    }

    /// Record one out-of-core join execution under `key` (a [`join_key`]):
    /// the strategy that ran, the static estimate it was chosen with, the
    /// bytes the residency walk actually moved, and the walk's execution
    /// cost in nanos (GPU + modeled bus).
    pub fn observe_join(
        &self,
        key: u64,
        strategy: JoinStrategy,
        est_bytes: u64,
        actual_bytes: u64,
        cost_nanos: u64,
    ) {
        let bytes_ratio = actual_bytes as f64 / est_bytes.max(1) as f64;
        let cost_per_byte = cost_nanos as f64 / est_bytes.max(1) as f64;
        self.with(key, |d| match strategy {
            JoinStrategy::LayerIndex => {
                d.layer_bytes_ratio.observe(bytes_ratio);
                d.layer_cost.observe(cost_per_byte);
            }
            JoinStrategy::NaiveSelects => {
                d.naive_bytes_ratio.observe(bytes_ratio);
                d.naive_cost.observe(cost_per_byte);
            }
        });
    }

    /// Observed cost per estimated byte for (layer, naive), available only
    /// once BOTH strategies are warm — a never-tried strategy has no
    /// measured cost, so the decision stays on the static estimates until
    /// something (a forced run, a tie-break) has exercised it.
    pub fn join_costs(&self, key: u64) -> Option<(f64, f64)> {
        let inner = self.inner.lock().unwrap();
        let d = inner.get(&key)?;
        (d.layer_cost.warm() && d.naive_cost.warm())
            .then(|| (d.layer_cost.value(), d.naive_cost.value()))
    }

    /// Count one optimizer decision (and bump the engine-wide total).
    pub fn count_decision(&self, key: Option<u64>, decision: Decision) {
        self.total_decisions[decision.idx()].fetch_add(1, Ordering::Relaxed);
        if let Some(key) = key {
            self.with(key, |d| d.decisions[decision.idx()] += 1);
        }
    }

    /// Count one misprediction of a past decision.
    pub fn count_misprediction(&self, key: Option<u64>, decision: Decision) {
        self.total_mispredictions[decision.idx()].fetch_add(1, Ordering::Relaxed);
        if let Some(key) = key {
            self.with(key, |d| d.mispredictions[decision.idx()] += 1);
        }
    }

    /// A copy of everything observed under `key`.
    pub fn snapshot(&self, key: u64) -> Option<DatasetObserved> {
        self.inner.lock().unwrap().get(&key).cloned()
    }

    /// Summed (decisions, mispredictions) over a set of keys, indexed by
    /// [`Decision::idx`] — the server aggregates a tenant's dataset uids
    /// (plus their [`join_key`]s) through this.
    pub fn counters_for(&self, keys: &[u64]) -> ([u64; 4], [u64; 4]) {
        let inner = self.inner.lock().unwrap();
        let mut dec = [0u64; 4];
        let mut mis = [0u64; 4];
        for key in keys {
            if let Some(d) = inner.get(key) {
                for i in 0..4 {
                    dec[i] += d.decisions[i];
                    mis[i] += d.mispredictions[i];
                }
            }
        }
        (dec, mis)
    }

    /// Engine-wide (decisions, mispredictions) totals, including decisions
    /// made outside any dataset scope.
    pub fn totals(&self) -> ([u64; 4], [u64; 4]) {
        (
            std::array::from_fn(|i| self.total_decisions[i].load(Ordering::Relaxed)),
            std::array::from_fn(|i| self.total_mispredictions[i].load(Ordering::Relaxed)),
        )
    }

    /// Pin (or unpin) the join strategy. A test/bench hook: forced runs
    /// still record observations, so forcing each strategy a few times is
    /// how a benchmark calibrates the adaptive decision.
    pub fn set_join_override(&self, forced: Option<JoinStrategy>) {
        let v = match forced {
            None => 0,
            Some(JoinStrategy::LayerIndex) => 1,
            Some(JoinStrategy::NaiveSelects) => 2,
        };
        self.join_override.store(v, Ordering::Relaxed);
    }

    pub fn join_override(&self) -> Option<JoinStrategy> {
        match self.join_override.load(Ordering::Relaxed) {
            1 => Some(JoinStrategy::LayerIndex),
            2 => Some(JoinStrategy::NaiveSelects),
            _ => None,
        }
    }
}

/// Statistics key of a join between two datasets: order-sensitive (the
/// left/right roles are not symmetric) and collision-resistant enough for
/// a handful of registered datasets.
pub fn join_key(left_uid: u64, right_uid: u64) -> u64 {
    let mut h = left_uid.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635;
    h ^= right_uid.wrapping_add(0x7f4a_7c15).rotate_left(29);
    h.wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

thread_local! {
    static SCOPE: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Enter a dataset-statistics scope on the current thread: until the
/// returned guard drops, Map decisions made on this thread (including
/// inside nested per-cell sub-queries) are attributed to `key`. Mirrors
/// the thread-local nesting of [`spade_gpu::record`] and
/// [`crate::explain`].
pub fn scope(key: u64) -> ScopeGuard {
    SCOPE.with(|s| s.borrow_mut().push(key));
    ScopeGuard(())
}

/// The innermost scope key, if any.
pub fn current() -> Option<u64> {
    SCOPE.with(|s| s.borrow().last().copied())
}

/// RAII guard of [`scope`]; pops its key on drop.
pub struct ScopeGuard(());

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_warms_after_min_samples() {
        let mut e = Ewma::default();
        assert!(!e.warm());
        e.observe(10.0);
        assert_eq!(e.value(), 10.0);
        e.observe(20.0);
        e.observe(20.0);
        assert!(e.warm());
        assert!(e.value() > 10.0 && e.value() < 20.0);
    }

    #[test]
    fn map_prediction_cold_then_warm() {
        let s = ObservedStats::new();
        assert_eq!(s.map_prediction(1, 1000), None);
        for _ in 0..MIN_SAMPLES {
            s.observe_map(1, 1000, 10); // ratio 0.01
        }
        let p = s.map_prediction(1, 1000).unwrap();
        // peak ratio 0.01 × margin 1.5 → 15.
        assert_eq!(p, 15);
        // A spike raises the peak immediately.
        s.observe_map(1, 1000, 600);
        assert!(s.map_prediction(1, 1000).unwrap() >= 600);
        // The prediction never exceeds the n_max bound itself.
        assert!(s.map_prediction(1, 10).unwrap() <= 10);
    }

    #[test]
    fn join_costs_require_both_strategies_warm() {
        let s = ObservedStats::new();
        let k = join_key(7, 8);
        for _ in 0..MIN_SAMPLES {
            s.observe_join(k, JoinStrategy::LayerIndex, 1000, 1000, 5_000);
        }
        assert_eq!(s.join_costs(k), None, "naive side still cold");
        for _ in 0..MIN_SAMPLES {
            s.observe_join(k, JoinStrategy::NaiveSelects, 1000, 1000, 20_000);
        }
        let (lc, nc) = s.join_costs(k).unwrap();
        assert!(lc < nc, "layer measured cheaper per byte: {lc} vs {nc}");
        let d = s.snapshot(k).unwrap();
        assert_eq!(d.layer_bytes_ratio.samples(), MIN_SAMPLES);
        assert!((d.layer_bytes_ratio.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counters_are_keyed_and_totaled() {
        let s = ObservedStats::new();
        s.count_decision(Some(1), Decision::MapOnePass);
        s.count_decision(Some(2), Decision::MapOnePass);
        s.count_decision(None, Decision::JoinLayerIndex);
        s.count_misprediction(Some(1), Decision::MapOnePass);
        let (dec, mis) = s.counters_for(&[1]);
        assert_eq!(dec[Decision::MapOnePass.idx()], 1);
        assert_eq!(mis[Decision::MapOnePass.idx()], 1);
        let (dec, _) = s.counters_for(&[1, 2]);
        assert_eq!(dec[Decision::MapOnePass.idx()], 2);
        // Unscoped decisions still reach the engine totals.
        let (tdec, tmis) = s.totals();
        assert_eq!(tdec[Decision::JoinLayerIndex.idx()], 1);
        assert_eq!(tdec[Decision::MapOnePass.idx()], 2);
        assert_eq!(tmis[Decision::MapOnePass.idx()], 1);
    }

    #[test]
    fn scope_nests_lifo() {
        assert_eq!(current(), None);
        let g1 = scope(10);
        assert_eq!(current(), Some(10));
        {
            let _g2 = scope(20);
            assert_eq!(current(), Some(20));
        }
        assert_eq!(current(), Some(10));
        drop(g1);
        assert_eq!(current(), None);
    }

    #[test]
    fn join_override_round_trips() {
        let s = ObservedStats::new();
        assert_eq!(s.join_override(), None);
        s.set_join_override(Some(JoinStrategy::NaiveSelects));
        assert_eq!(s.join_override(), Some(JoinStrategy::NaiveSelects));
        s.set_join_override(None);
        assert_eq!(s.join_override(), None);
    }
}
