//! Cell-range scoping for distributed scatter-gather execution.
//!
//! The clustered grid index assigns every object to exactly one
//! hull-bounded cell, so a query's result is the disjoint union of its
//! per-cell results (plus the staged delta, which behaves as one more
//! cell). A [`CellScope`] restricts an indexed executor to a contiguous
//! range of cell indices — the unit a cluster coordinator scatters across
//! shards — and says whether this executor also owns the delta. Running
//! the same query once per scope of a covering, disjoint set of scopes
//! (with `include_delta` set on exactly one of them) and merging yields
//! byte-identical results to a single full-scope run.

/// A half-open range `[lo, hi)` of grid-cell indices plus delta ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellScope {
    /// First cell index covered (inclusive).
    pub lo: u32,
    /// First cell index *not* covered (exclusive). Shard maps set the last
    /// shard's `hi` to `u32::MAX` so coverage stays complete even when the
    /// cell count grows under the map (compaction between statistics
    /// refreshes).
    pub hi: u32,
    /// Whether this executor also merges the dataset's staged delta
    /// writes. Exactly one scope of a covering set must own the delta.
    pub include_delta: bool,
}

impl CellScope {
    /// The scope equivalent to unscoped execution: every cell + the delta.
    pub const fn full() -> CellScope {
        CellScope {
            lo: 0,
            hi: u32::MAX,
            include_delta: true,
        }
    }

    /// Does this scope cover cell index `cell`?
    pub fn contains(&self, cell: u32) -> bool {
        self.lo <= cell && cell < self.hi
    }

    /// Is this the full (unscoped) scope?
    pub fn is_full(&self) -> bool {
        *self == Self::full()
    }
}

impl Default for CellScope {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scope_covers_everything() {
        let f = CellScope::full();
        assert!(f.is_full());
        assert!(f.contains(0));
        assert!(f.contains(u32::MAX - 1));
        assert_eq!(f, CellScope::default());
    }

    #[test]
    fn half_open_bounds() {
        let s = CellScope {
            lo: 4,
            hi: 9,
            include_delta: false,
        };
        assert!(!s.contains(3));
        assert!(s.contains(4));
        assert!(s.contains(8));
        assert!(!s.contains(9));
        assert!(!s.is_full());
    }
}
