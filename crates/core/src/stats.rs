//! Query statistics: the time breakdown of §6.2.
//!
//! The paper profiles every query into four components (Fig. 5 bottom):
//! I/O time (disk→host and host→device combined), GPU time, polygon
//! processing time (triangulation + boundary-index creation), and CPU time
//! (everything else). [`QueryStats`] carries those components plus the
//! transfer/pass counters the optimizer and the analysis sections reason
//! about.

use std::time::Duration;

/// How one query interacted with the engine's result cache
/// ([`crate::result_cache::ResultCache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheOutcome {
    /// The query did not consult the cache (cache disabled, or a path that
    /// does not go through the cached dispatchers).
    #[default]
    Bypass,
    /// The cache was probed, missed, and the query rendered cold (the
    /// result may have been admitted afterwards).
    Miss,
    /// The result was served from the cache: no cell I/O, no passes.
    Hit,
    /// A concurrent identical miss was in flight; this query waited for the
    /// leader's render instead of executing its own (singleflight).
    CoalescedHit,
}

impl CacheOutcome {
    /// Short uppercase label for plans and logs.
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Bypass => "BYPASS",
            CacheOutcome::Miss => "MISS",
            CacheOutcome::Hit => "HIT",
            CacheOutcome::CoalescedHit => "COALESCED-HIT",
        }
    }

    /// Whether the query was served without executing (hit or coalesced).
    pub fn served_from_cache(&self) -> bool {
        matches!(self, CacheOutcome::Hit | CacheOutcome::CoalescedHit)
    }
}

/// Statistics for one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Disk→host plus host→device time (the paper reports them combined).
    pub io_time: Duration,
    /// Time spent executing pipeline passes.
    pub gpu_time: Duration,
    /// Time triangulating constraint polygons and building boundary data.
    pub polygon_time: Duration,
    /// Remaining CPU time (total − io − gpu − polygon).
    pub cpu_time: Duration,
    /// Wall-clock total.
    pub total_time: Duration,
    /// Bytes read from disk blocks.
    pub bytes_from_disk: u64,
    /// Bytes shipped host→device.
    pub bytes_to_device: u64,
    /// Rendering passes executed.
    pub passes: u64,
    /// Grid cells loaded (out-of-core queries). Counts cells delivered to
    /// the refinement stage — whether the bytes came from disk or the cell
    /// cache — so the count is deterministic across prefetch depths,
    /// worker counts, and cache states.
    pub cells_loaded: u64,
    /// Result cardinality.
    pub result_count: u64,
    /// Out-of-core pipelining: cells whose data was already decoded and
    /// waiting in the prefetch channel when the refinement stage asked.
    pub prefetch_hits: u64,
    /// Out-of-core pipelining: cells the refinement stage had to wait for
    /// (or load synchronously with prefetching disabled).
    pub prefetch_misses: u64,
    /// Cells served from the host-side decoded-cell LRU cache instead of
    /// disk.
    pub cache_hits: u64,
    /// Disk/decode time that overlapped GPU refinement work — producer I/O
    /// time minus the time the consumer actually stalled waiting on it.
    pub io_hidden: Duration,
    /// Result-cache provenance of this execution.
    pub result_cache: CacheOutcome,
}

impl QueryStats {
    /// Fill `cpu_time` as the residual of `total_time`.
    pub fn finish(&mut self, total: Duration) {
        self.total_time = total;
        self.recompute_cpu();
    }

    /// Recompute the residual `cpu_time` from the current components.
    ///
    /// With pipelined prefetch, `io_hidden` of the producer's I/O time
    /// overlapped GPU refinement — that share occupied no extra wall time,
    /// so only the *visible* I/O (`io_time − io_hidden`) is subtracted.
    /// Subtracting the full `io_time` would let components sum past the
    /// total and saturate `cpu_time` to zero misleadingly. Called again by
    /// [`crate::prefetch::StreamStats::charge`], which learns the overlap
    /// only after the query's wall clock has been closed.
    pub fn recompute_cpu(&mut self) {
        let visible_io = self.io_time.saturating_sub(self.io_hidden);
        self.cpu_time = self
            .total_time
            .saturating_sub(visible_io)
            .saturating_sub(self.gpu_time)
            .saturating_sub(self.polygon_time);
    }

    /// Merge another stats record into this one (summing components).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.io_time += other.io_time;
        self.gpu_time += other.gpu_time;
        self.polygon_time += other.polygon_time;
        self.cpu_time += other.cpu_time;
        self.total_time += other.total_time;
        self.bytes_from_disk += other.bytes_from_disk;
        self.bytes_to_device += other.bytes_to_device;
        self.passes += other.passes;
        self.cells_loaded += other.cells_loaded;
        self.result_count += other.result_count;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_misses += other.prefetch_misses;
        self.cache_hits += other.cache_hits;
        self.io_hidden += other.io_hidden;
    }

    /// Fraction of the total attributed to I/O (the paper observes ≥95%
    /// for the Buildings workload, §6.2).
    pub fn io_fraction(&self) -> f64 {
        if self.total_time.is_zero() {
            0.0
        } else {
            self.io_time.as_secs_f64() / self.total_time.as_secs_f64()
        }
    }

    /// One-line breakdown for harness output. The I/O component shows the
    /// prefetch overlap explicitly: `io=` is the full producer-side I/O
    /// time, `hidden=` the share of it that overlapped GPU refinement and
    /// therefore occupied no wall time of its own.
    pub fn breakdown(&self) -> String {
        format!(
            "total={:.3}s io={:.3}s (hidden={:.3}s overlapped) gpu={:.3}s poly={:.3}s cpu={:.3}s passes={} cells={} disk={}B dev={}B prefetch={}h/{}m cache={}h",
            self.total_time.as_secs_f64(),
            self.io_time.as_secs_f64(),
            self.io_hidden.as_secs_f64(),
            self.gpu_time.as_secs_f64(),
            self.polygon_time.as_secs_f64(),
            self.cpu_time.as_secs_f64(),
            self.passes,
            self.cells_loaded,
            self.bytes_from_disk,
            self.bytes_to_device,
            self.prefetch_hits,
            self.prefetch_misses,
            self.cache_hits,
        ) + &match self.result_cache {
            CacheOutcome::Bypass => String::new(),
            outcome => format!(" result_cache={}", outcome.label()),
        }
    }
}

/// A query result: the payload plus its statistics.
#[derive(Debug, Clone)]
pub struct QueryOutput<T> {
    pub result: T,
    pub stats: QueryStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_computes_residual_cpu() {
        let mut s = QueryStats {
            io_time: Duration::from_millis(50),
            gpu_time: Duration::from_millis(30),
            polygon_time: Duration::from_millis(10),
            ..Default::default()
        };
        s.finish(Duration::from_millis(100));
        assert_eq!(s.cpu_time, Duration::from_millis(10));
        assert_eq!(s.total_time, Duration::from_millis(100));
    }

    #[test]
    fn finish_saturates() {
        let mut s = QueryStats {
            io_time: Duration::from_millis(500),
            ..Default::default()
        };
        s.finish(Duration::from_millis(100));
        assert_eq!(s.cpu_time, Duration::ZERO);
    }

    #[test]
    fn absorb_sums() {
        let mut a = QueryStats {
            passes: 2,
            bytes_from_disk: 100,
            result_count: 5,
            cache_hits: 1,
            ..Default::default()
        };
        let b = QueryStats {
            passes: 3,
            bytes_from_disk: 50,
            result_count: 7,
            cache_hits: 4,
            prefetch_hits: 2,
            prefetch_misses: 1,
            io_hidden: Duration::from_millis(5),
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.passes, 5);
        assert_eq!(a.bytes_from_disk, 150);
        assert_eq!(a.result_count, 12);
        assert_eq!(a.cache_hits, 5);
        assert_eq!(a.prefetch_hits, 2);
        assert_eq!(a.prefetch_misses, 1);
        assert_eq!(a.io_hidden, Duration::from_millis(5));
    }

    #[test]
    fn io_fraction() {
        let mut s = QueryStats {
            io_time: Duration::from_millis(75),
            ..Default::default()
        };
        s.finish(Duration::from_millis(100));
        assert!((s.io_fraction() - 0.75).abs() < 1e-9);
        assert_eq!(QueryStats::default().io_fraction(), 0.0);
    }

    #[test]
    fn breakdown_prints_components() {
        let s = QueryStats::default();
        let line = s.breakdown();
        assert!(line.contains("io=") && line.contains("gpu=") && line.contains("poly="));
        assert!(line.contains("prefetch=") && line.contains("cache="));
        assert!(line.contains("hidden="), "overlap must print explicitly");
    }

    /// Regression: with pipelined prefetch, producer I/O overlaps GPU time.
    /// io(60) + gpu(50) + poly(10) = 120ms > total(100ms), but 40ms of the
    /// I/O was hidden behind the GPU — the residual must subtract only the
    /// visible 20ms, not saturate to zero.
    #[test]
    fn overlapped_io_does_not_zero_cpu_residual() {
        let mut s = QueryStats {
            io_time: Duration::from_millis(60),
            gpu_time: Duration::from_millis(50),
            polygon_time: Duration::from_millis(10),
            io_hidden: Duration::from_millis(40),
            ..Default::default()
        };
        s.finish(Duration::from_millis(100));
        assert_eq!(s.cpu_time, Duration::from_millis(20));
    }

    /// Regression for the call ordering in every indexed query path:
    /// `Measure::finish` closes the wall clock *before*
    /// `StreamStats::charge` delivers the overlap, so the residual must be
    /// recomputed when `io_hidden` arrives.
    #[test]
    fn charge_after_finish_recomputes_residual() {
        let mut s = QueryStats {
            io_time: Duration::from_millis(60),
            gpu_time: Duration::from_millis(50),
            polygon_time: Duration::from_millis(10),
            ..Default::default()
        };
        s.finish(Duration::from_millis(100));
        assert_eq!(
            s.cpu_time,
            Duration::ZERO,
            "without overlap info: saturated"
        );
        let stream = crate::prefetch::StreamStats {
            io_hidden: Duration::from_millis(40),
            ..Default::default()
        };
        stream.charge(&mut s);
        assert_eq!(s.io_hidden, Duration::from_millis(40));
        assert_eq!(s.cpu_time, Duration::from_millis(20));
    }
}
